//! The paper's worked examples as executable tests.
#![allow(clippy::needless_range_loop)]
//!
//! Section IV illustrates the feature-space reasoning with a four-graph
//! database (Fig. 6): `G1`–`G3` share the subgraph of Fig. 7 (a 'b'-centered
//! star with arms to 'a', 'c', 'd'), `G4` shares nothing with the others.
//! Table II shows the RWR vectors of the 'a' nodes: only the features
//! `a-b`, `b-c`, `b-d` are non-zero across `G1`–`G3`, and no feature is
//! non-zero across all four graphs. We rebuild the database and verify the
//! same structure emerges from our RWR implementation.

use graphsig_features::{feature_distribution, FeatureSet, RwrConfig};
use graphsig_graph::{GraphBuilder, GraphDb, NodeId};

/// Shorthand: feature value of the edge-type (na, nb) from the 'a'-node
/// distribution.
fn edge_val(db: &GraphDb, fs: &FeatureSet, dist: &[f64], na: &str, nb: &str) -> f64 {
    let la = db.labels().node_id(na).unwrap();
    let lb = db.labels().node_id(nb).unwrap();
    let le = db.labels().edge_id("-").unwrap();
    match fs.edge_feature(la, le, lb) {
        Some(idx) => dist[idx],
        None => 0.0,
    }
}

/// Build the Fig. 6 sample database. Exact shapes are reconstructions (the
/// paper draws them; we encode the described structure): G1–G3 each contain
/// the common core b(a)(c)(d) — a 'b' node bonded to 'a', 'c' and 'd' —
/// plus per-graph extras; G4 has none of it.
fn fig6_database() -> (GraphDb, Vec<NodeId>) {
    let mut db = GraphDb::new();
    let a = db.labels_mut().intern_node("a");
    let b = db.labels_mut().intern_node("b");
    let c = db.labels_mut().intern_node("c");
    let d = db.labels_mut().intern_node("d");
    let e = db.labels_mut().intern_node("e");
    let f = db.labels_mut().intern_node("f");
    let s = db.labels_mut().intern_edge("-");
    let mut a_nodes = Vec::new();

    // G1: core + a-e arm.
    let mut g = GraphBuilder::new();
    let na = g.add_node(a);
    let nb = g.add_node(b);
    let nc = g.add_node(c);
    let nd = g.add_node(d);
    let ne = g.add_node(e);
    g.add_edge(na, nb, s);
    g.add_edge(nb, nc, s);
    g.add_edge(nb, nd, s);
    g.add_edge(na, ne, s);
    a_nodes.push(na);
    db.push(g.build());

    // G2: core + d-f arm.
    let mut g = GraphBuilder::new();
    let na = g.add_node(a);
    let nb = g.add_node(b);
    let nc = g.add_node(c);
    let nd = g.add_node(d);
    let nf = g.add_node(f);
    g.add_edge(na, nb, s);
    g.add_edge(nb, nc, s);
    g.add_edge(nb, nd, s);
    g.add_edge(nd, nf, s);
    a_nodes.push(na);
    db.push(g.build());

    // G3: core + c-e and c-f arms.
    let mut g = GraphBuilder::new();
    let na = g.add_node(a);
    let nb = g.add_node(b);
    let nc = g.add_node(c);
    let nd = g.add_node(d);
    let ne = g.add_node(e);
    let nf = g.add_node(f);
    g.add_edge(na, nb, s);
    g.add_edge(nb, nc, s);
    g.add_edge(nb, nd, s);
    g.add_edge(nc, ne, s);
    g.add_edge(nc, nf, s);
    a_nodes.push(na);
    db.push(g.build());

    // G4: entirely different: a-d, a-f, d-f triangle-ish, no 'b'.
    let mut g = GraphBuilder::new();
    let na = g.add_node(a);
    let nd = g.add_node(d);
    let nf = g.add_node(f);
    let nd2 = g.add_node(d);
    g.add_edge(na, nd, s);
    g.add_edge(na, nf, s);
    g.add_edge(nd, nf, s);
    g.add_edge(nf, nd2, s);
    a_nodes.push(na);
    db.push(g.build());

    (db, a_nodes)
}

#[test]
fn table2_common_features_point_to_the_common_subgraph() {
    let (db, a_nodes) = fig6_database();
    // Feature set: all edge types in the database (the example's setting).
    let fs = FeatureSet::for_chemical(&db, 10);
    let cfg = RwrConfig::default(); // alpha = 0.25 as in the example
    let dists: Vec<Vec<f64>> = db
        .graphs()
        .iter()
        .zip(&a_nodes)
        .map(|(g, &n)| feature_distribution(g, n, &fs, &cfg))
        .collect();

    // "Only the edge-types a-b, b-c, and b-d have non-zero values across
    // G1, G2, G3."
    for name in [("a", "b"), ("b", "c"), ("b", "d")] {
        for gi in 0..3 {
            let v = edge_val(&db, &fs, &dists[gi], name.0, name.1);
            assert!(v > 0.0, "{name:?} zero in G{}", gi + 1);
        }
    }
    // And G4 breaks every one of them.
    for name in [("a", "b"), ("b", "c"), ("b", "d")] {
        let v = edge_val(&db, &fs, &dists[3], name.0, name.1);
        assert_eq!(v, 0.0, "{name:?} unexpectedly present in G4");
    }
    // "At the same time, no feature has a non-zero value across G1-G4."
    let dim = fs.dim();
    for i in 0..dim {
        let everywhere = dists.iter().all(|d| d[i] > 0.0);
        assert!(
            !everywhere,
            "feature {} non-zero across all four graphs",
            fs.name(i)
        );
    }
}

#[test]
fn common_subgraph_of_g1_g3_is_the_fig7_core() {
    use graphsig_gspan::{GSpan, MinerConfig};
    let (db, _) = fig6_database();
    let first_three = db.subset(&[0, 1, 2]);
    let maximal = GSpan::new(MinerConfig::new(3)).mine_maximal(&first_three);
    // The unique maximal subgraph common to G1-G3 is the 4-node star of
    // Fig. 7: b bonded to a, c, d.
    assert_eq!(maximal.len(), 1);
    let core = &maximal[0];
    assert_eq!(core.graph.node_count(), 4);
    assert_eq!(core.graph.edge_count(), 3);
    let b = db.labels().node_id("b").unwrap();
    let center = core
        .graph
        .nodes()
        .find(|&n| core.graph.degree(n) == 3)
        .expect("star center exists");
    assert_eq!(core.graph.node_label(center), b);

    // Adding G4 destroys any common subgraph.
    let all = db.subset(&[0, 1, 2, 3]);
    let none = GSpan::new(MinerConfig::new(4)).mine(&all);
    assert!(none.is_empty(), "no subgraph is common to all four graphs");
}
