//! The feature-space tooling works together: diagnostics describe the
//! vector groups, CSV round-trips them, and reports explain the answers.

use graphsig_core::{compute_all_vectors, describe, group_by_label, GraphSig, GraphSigConfig};
use graphsig_datagen::aids_like;
use graphsig_features::{FeatureSet, RwrConfig};
use graphsig_fvmine::{diagnose, from_csv, to_csv, FvMineConfig, FvMiner};

#[test]
fn diagnostics_reflect_rwr_structure() {
    let data = aids_like(80, 31);
    let fs = FeatureSet::for_chemical(&data.db, 5);
    let all = compute_all_vectors(&data.db, &fs, &RwrConfig::default(), 1);
    let groups = group_by_label(&all);
    let carbon = groups.iter().max_by_key(|g| g.vectors.len()).unwrap();
    let d = diagnose(&carbon.vectors);
    assert_eq!(d.dim, fs.dim());
    assert_eq!(d.vectors, carbon.vectors.len());
    // RWR vectors are sparse: a window touches a handful of features.
    assert!(
        d.avg_nonzero < d.dim as f64 / 2.0,
        "avg nonzero {}",
        d.avg_nonzero
    );
    // At least one feature varies (entropy > 0) — otherwise nothing mines.
    assert!(d.features.iter().any(|f| f.entropy > 0.5));
    // Dense chemistry: the carbon-carbon single bond feature is common.
    assert!(d.features.iter().any(|f| f.density > 0.5));
    // Duplicates exist (symmetric neighborhoods) — support fuel for FVMine.
    assert!(d.distinct < d.vectors);
}

#[test]
fn csv_export_mines_identically() {
    let data = aids_like(40, 33);
    let fs = FeatureSet::for_chemical(&data.db, 5);
    let all = compute_all_vectors(&data.db, &fs, &RwrConfig::default(), 1);
    let groups = group_by_label(&all);
    let group = groups.iter().max_by_key(|g| g.vectors.len()).unwrap();
    let names: Vec<&str> = (0..fs.dim()).map(|i| fs.name(i)).collect();
    let text = to_csv(&group.vectors, Some(&names));
    let (back, header) = from_csv(&text).unwrap();
    assert_eq!(header.unwrap().len(), fs.dim());
    assert_eq!(back, group.vectors);
    let cfg = FvMineConfig::new((group.vectors.len() / 10).max(2), 0.1);
    let a = FvMiner::new(cfg).mine(&group.vectors);
    let b = FvMiner::new(cfg).mine(&back);
    assert_eq!(a.len(), b.len());
}

#[test]
fn reports_render_for_every_answer() {
    let data = aids_like(200, 35);
    let actives = data.active_subset();
    let fs = FeatureSet::for_chemical(&actives, 5);
    let cfg = GraphSigConfig {
        min_freq: 0.1,
        max_pvalue: 0.05,
        radius: 4,
        max_pattern_edges: 10,
        max_patterns_per_set: 3_000,
        ..Default::default()
    };
    let result = GraphSig::new(cfg).mine_with_features(&actives, &fs);
    assert!(!result.subgraphs.is_empty());
    for sg in &result.subgraphs {
        let text = describe(sg, &fs, actives.labels());
        assert!(text.contains("evidence: p-value"));
        // The evidence lines must reference real feature names.
        for line in text
            .lines()
            .filter(|l| l.trim_start().ends_with(|c: char| c.is_ascii_digit()) && l.contains(">="))
        {
            let name = line.trim().split(" >=").next().unwrap();
            assert!(
                (0..fs.dim()).any(|i| fs.name(i) == name),
                "unknown feature name {name}"
            );
        }
    }
}
