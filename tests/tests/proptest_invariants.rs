//! Property-based invariants across the workspace (proptest).
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;

use graphsig_fvmine::{ceiling_of, floor_of, is_sub_vector};
use graphsig_graph::invariant::certificate;
use graphsig_graph::{
    are_isomorphic, CompiledGraph, Graph, GraphBuilder, MatchOutcome, MatcherKind, MultiMatcher,
    SubgraphMatcher,
};
use graphsig_gspan::{is_min, is_min_unpruned, min_dfs_code, min_dfs_code_unpruned};
use graphsig_stats::{binomial_tail_upper, Binomial};

/// Strategy: a small random connected labeled graph (tree + extra edges).
fn connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..9, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            let label = next(4) as u16;
            b.add_node(label);
        }
        // Spanning tree.
        let mut edges = std::collections::HashSet::new();
        for i in 1..n as u32 {
            let parent = next(i as u64) as u32;
            b.add_edge(parent, i, next(3) as u16);
            edges.insert((parent.min(i), parent.max(i)));
        }
        // A few extra edges.
        for _ in 0..next(3) {
            let u = next(n as u64) as u32;
            let v = next(n as u64) as u32;
            if u != v && !edges.contains(&(u.min(v), u.max(v))) {
                edges.insert((u.min(v), u.max(v)));
                b.add_edge(u, v, next(3) as u16);
            }
        }
        b.build()
    })
}

/// A small random connected graph built directly from an LCG seed (for
/// tests that need several graphs per proptest case).
fn lcg_graph(seed: u64) -> Graph {
    let mut state = seed | 1;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    let n = 2 + next(7) as usize;
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        let label = next(4) as u16;
        b.add_node(label);
    }
    for i in 1..n as u32 {
        let parent = next(i as u64) as u32;
        b.add_edge(parent, i, next(3) as u16);
    }
    b.build()
}

/// Relabel a graph's node ids by a permutation derived from `seed`.
fn permuted(g: &Graph, seed: u64) -> Graph {
    let n = g.node_count();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((state >> 33) as usize) % (i + 1);
        perm.swap(i, j);
    }
    let mut b = GraphBuilder::new();
    // new id of old node i is perm[i]; add nodes in new-id order.
    let mut inv = vec![0usize; n];
    for (old, &new) in perm.iter().enumerate() {
        inv[new] = old;
    }
    for new in 0..n {
        b.add_node(g.node_label(inv[new] as u32));
    }
    for e in g.edges() {
        b.add_edge(
            perm[e.u as usize] as u32,
            perm[e.v as usize] as u32,
            e.label,
        );
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn min_code_invariant_under_permutation(g in connected_graph(), seed in any::<u64>()) {
        let p = permuted(&g, seed);
        prop_assert!(are_isomorphic(&g, &p));
        prop_assert_eq!(min_dfs_code(&g), min_dfs_code(&p));
    }

    #[test]
    fn certificate_invariant_under_permutation(g in connected_graph(), seed in any::<u64>()) {
        // Same isomorphism class (node/edge permutation) ⇒ same certificate;
        // this is the direction every certificate consumer relies on.
        let p = permuted(&g, seed);
        prop_assert_eq!(certificate(&g), certificate(&p));
    }

    #[test]
    fn certificate_separates_distinct_min_codes(ga in connected_graph(), gb in connected_graph()) {
        // Contrapositive on arbitrary pairs: equal certificates must never
        // be contradicted by a *provable* non-isomorphism witness the other
        // way round — different certificates ⇒ different canonical codes.
        if certificate(&ga) != certificate(&gb) {
            prop_assert_ne!(min_dfs_code(&ga), min_dfs_code(&gb));
            prop_assert!(!are_isomorphic(&ga, &gb));
        }
    }

    #[test]
    fn pruned_min_code_agrees_with_reference(g in connected_graph(), seed in any::<u64>()) {
        // Automorphism-orbit pruning of starting embeddings must be
        // invisible: identical canonical code, also under relabeling.
        prop_assert_eq!(min_dfs_code(&g), min_dfs_code_unpruned(&g));
        let p = permuted(&g, seed);
        prop_assert_eq!(min_dfs_code(&p), min_dfs_code_unpruned(&p));
    }

    #[test]
    fn pruned_is_min_agrees_with_reference(
        g in connected_graph(),
        labels in prop::collection::vec((0u16..3, 0u16..2), 1..7),
    ) {
        use graphsig_gspan::{DfsCode, DfsEdge};
        // The minimal code says yes in both variants.
        let code = min_dfs_code(&g);
        prop_assert!(is_min(&code) && is_min_unpruned(&code));
        // Random path codes are valid DFS codes but often rooted at the
        // wrong end (non-minimal), exercising the rejection branch; the
        // verdicts must match exactly either way.
        let mut path = DfsCode::from_initial(labels[0].0, labels[0].1, labels.get(1).map_or(0, |l| l.0));
        for (i, w) in labels.windows(2).enumerate() {
            let next_label = labels.get(i + 2).map_or(0, |l| l.0);
            path.push(DfsEdge::new(
                (i + 1) as u32,
                (i + 2) as u32,
                w[1].0,
                w[1].1,
                next_label,
            ));
        }
        prop_assert_eq!(is_min(&path), is_min_unpruned(&path));
    }

    #[test]
    fn min_code_roundtrips(g in connected_graph()) {
        let code = min_dfs_code(&g);
        prop_assert!(is_min(&code));
        let rebuilt = code.to_graph();
        prop_assert!(are_isomorphic(&g, &rebuilt));
    }

    #[test]
    fn graph_contains_itself_and_its_edges(g in connected_graph()) {
        prop_assert!(SubgraphMatcher::new(&g, &g).exists());
        for e in g.edges() {
            let mut b = GraphBuilder::new();
            let u = b.add_node(g.node_label(e.u));
            let v = b.add_node(g.node_label(e.v));
            b.add_edge(u, v, e.label);
            prop_assert!(SubgraphMatcher::new(&b.build(), &g).exists());
        }
    }

    #[test]
    fn floor_ceiling_lattice(vs in prop::collection::vec(prop::collection::vec(0u8..6, 5), 1..8)) {
        let floor = floor_of(vs.iter().map(|v| v.as_slice()));
        let ceiling = ceiling_of(vs.iter().map(|v| v.as_slice()));
        prop_assert!(is_sub_vector(&floor, &ceiling));
        for v in &vs {
            prop_assert!(is_sub_vector(&floor, v));
            prop_assert!(is_sub_vector(v, &ceiling));
        }
        // Floor is the greatest lower bound: raising any coordinate breaks it.
        for i in 0..floor.len() {
            let mut raised = floor.clone();
            raised[i] += 1;
            prop_assert!(!vs.iter().all(|v| is_sub_vector(&raised, v)));
        }
    }

    #[test]
    fn binomial_tail_is_a_probability(n in 1u64..500, p in 0.0f64..1.0, k in 0u64..500) {
        let t = binomial_tail_upper(n, p, k);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn binomial_pmf_sums_to_tail(n in 1u64..40, p in 0.01f64..0.99, k in 0u64..40) {
        prop_assume!(k <= n);
        let b = Binomial::new(n, p);
        let brute: f64 = (k..=n).map(|i| b.pmf(i)).sum();
        prop_assert!((b.tail_upper(k) - brute).abs() < 1e-9);
    }

    // ---- parser robustness: arbitrary input is Err, never a panic ----

    #[test]
    fn transaction_parser_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Total function: any byte soup yields Ok or a line-numbered Err.
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = graphsig_graph::parse_transactions(&text) {
            prop_assert!(e.line >= 1, "error line numbers are 1-based");
        }
    }

    #[test]
    fn transaction_parser_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop::collection::vec(0usize..12, 1..6), 0..40),
        seed in any::<u64>(),
    ) {
        // Structured-ish soup: lines assembled from the grammar's own
        // vocabulary reach deeper parser states than raw bytes do.
        let vocab = ["t", "v", "e", "#", "0", "1", "9999999999999999999", "-3", "C", "", " ", "\u{fffd}"];
        let mut state = seed | 1;
        let mut text = String::new();
        for line in &tokens {
            for &tok in line {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                text.push_str(vocab[(tok + (state >> 33) as usize) % vocab.len()]);
                text.push(' ');
            }
            text.push('\n');
        }
        let _ = graphsig_graph::parse_transactions(&text);
    }

    #[test]
    fn request_parser_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = graphsig_server::parse_request(&line);
    }

    #[test]
    fn request_parser_never_panics_on_token_soup(
        tokens in prop::collection::vec(0usize..64, 0..24),
        seed in any::<u64>(),
    ) {
        // Soup from the protocol's own vocabulary: real ops, real keys,
        // stray `=`, over/underflowing numbers, escape fragments.
        let vocab = [
            "mine", "freq", "load", "stats", "cancel", "ping", "shutdown",
            "id=", "id=x", "dataset=d", "radius=3", "radius=", "=", "==",
            "max_steps=18446744073709551616", "timeout_ms=-1", "min_freq=0.05",
            "path=%", "path=%2", "path=%zz", "gen=aids", "count=10", "seed=1",
            "target=x", "drain_ms=0", "bogus=1", "%0a", "#",
        ];
        let mut state = seed | 1;
        let mut line = String::new();
        for &tok in &tokens {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            line.push_str(vocab[(tok + (state >> 33) as usize) % vocab.len()]);
            line.push(' ');
        }
        let _ = graphsig_server::parse_request(&line);
    }

    #[test]
    fn protocol_escape_roundtrips(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let value = String::from_utf8_lossy(&bytes).into_owned();
        let escaped = graphsig_server::escape(&value);
        // Escaped form is single-token (no whitespace) and decodes back.
        prop_assert!(!escaped.chars().any(|c| c.is_whitespace()));
        let decoded = graphsig_server::unescape(&escaped);
        prop_assert_eq!(decoded.as_deref().ok(), Some(value.as_str()));
    }

    #[test]
    fn response_stream_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = graphsig_server::protocol::parse_response_stream(&bytes);
    }

    // ---- isomorphism engines: vf2 and fast must agree ----

    #[test]
    fn iso_backends_agree_on_random_pairs(
        pseed in any::<u64>(),
        tseed in any::<u64>(),
        steps in 0u64..400,
    ) {
        let pattern = lcg_graph(pseed);
        let target = lcg_graph(tseed);
        let mut vf2 = MultiMatcher::with_kind(&pattern, MatcherKind::Vf2);
        let mut fast = MultiMatcher::with_kind(&pattern, MatcherKind::Fast);
        // Unbudgeted existence agrees across engines, and the compiled
        // target entry point agrees with the plain one.
        let expect = vf2.exists_in(&target);
        prop_assert_eq!(fast.exists_in(&target), expect);
        let compiled = CompiledGraph::compile(&target);
        prop_assert_eq!(fast.exists_in_compiled(&compiled), expect);
        // Budgeted runs: per-engine deterministic, never overspend, and a
        // decided outcome must agree with the unbudgeted answer. (Step
        // counts are engine-specific by design, so the engines may decide
        // at different budgets — but never differently.)
        for m in [&mut vf2, &mut fast] {
            let first = m.exists_in_counted(&target, steps);
            prop_assert_eq!(m.exists_in_counted(&target, steps), first);
            let (outcome, used) = first;
            prop_assert!(used <= steps);
            match outcome {
                MatchOutcome::Matched => prop_assert!(expect),
                MatchOutcome::Unmatched => prop_assert!(!expect),
                MatchOutcome::Indeterminate => prop_assert_eq!(used, steps),
            }
        }
        // Compiled targets cost exactly what plain targets cost.
        prop_assert_eq!(
            fast.exists_in_counted_compiled(&compiled, steps),
            fast.exists_in_counted(&target, steps)
        );
    }

    #[test]
    fn iso_backends_agree_on_support_counts(seed in any::<u64>()) {
        // The quantity every miner derives from the matcher: how many of a
        // database's graphs contain the pattern.
        let pattern = lcg_graph(seed ^ 0x00C0FFEE);
        let targets: Vec<Graph> = (0..8u64)
            .map(|i| lcg_graph(seed ^ i.wrapping_mul(0x9E3779B97F4A7C15)))
            .collect();
        let count = |kind: MatcherKind| {
            let mut m = MultiMatcher::with_kind(&pattern, kind);
            targets.iter().filter(|t| m.exists_in(t)).count()
        };
        prop_assert_eq!(count(MatcherKind::Vf2), count(MatcherKind::Fast));
    }

    #[test]
    fn miners_are_certificate_oblivious(seed in any::<u64>()) {
        use graphsig_fsg::{Fsg, FsgConfig};
        use graphsig_gspan::{GSpan, MinerConfig};
        // Certificates and canonical caches are pure accelerators: mined
        // pattern lists must be byte-identical with them on or off.
        let mut db = graphsig_graph::GraphDb::new();
        for i in 0..6u64 {
            db.push(lcg_graph(seed ^ (i.wrapping_mul(0x9E3779B97F4A7C15))));
        }
        let key = |p: &graphsig_gspan::Pattern| (p.code.clone(), p.support, p.gids.clone());
        let fsg_on = Fsg::new(FsgConfig::new(2).with_max_edges(4)).mine(&db);
        let fsg_off = Fsg::new(FsgConfig::new(2).with_max_edges(4).with_certificates(false)).mine(&db);
        prop_assert_eq!(
            fsg_on.iter().map(key).collect::<Vec<_>>(),
            fsg_off.iter().map(key).collect::<Vec<_>>()
        );
        let gsp_on = GSpan::new(MinerConfig::new(2).with_max_edges(4)).mine(&db);
        let gsp_off = GSpan::new(MinerConfig::new(2).with_max_edges(4).with_canon_cache(false)).mine(&db);
        prop_assert_eq!(
            gsp_on.iter().map(key).collect::<Vec<_>>(),
            gsp_off.iter().map(key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gspan_patterns_verified_by_vf2(seed in any::<u64>()) {
        use graphsig_gspan::{GSpan, MinerConfig};
        // Tiny random database of 6 graphs derived from the seed.
        let mut db = graphsig_graph::GraphDb::new();
        for i in 0..6u64 {
            db.push(lcg_graph(seed ^ (i.wrapping_mul(0x9E3779B97F4A7C15))));
        }
        let pats = GSpan::new(MinerConfig::new(2).with_max_edges(4)).mine(&db);
        for p in &pats {
            let real = db
                .graphs()
                .iter()
                .filter(|g| SubgraphMatcher::new(&p.graph, g).exists())
                .count();
            prop_assert_eq!(real, p.support);
        }
    }
}
