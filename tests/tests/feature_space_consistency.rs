//! Feature-space consistency on real RWR output: FVMine's support sets,
//! closedness, and p-value monotonicity hold on generated molecule data,
//! not just hand-built tables.

use graphsig_core::{compute_all_vectors, group_by_label};
use graphsig_datagen::aids_like;
use graphsig_features::{FeatureSet, RwrConfig};
use graphsig_fvmine::{
    ceiling_of, floor_of, is_sub_vector, FvMineConfig, FvMiner, SignificanceModel,
};

fn carbon_group_vectors() -> Vec<Vec<u8>> {
    let data = aids_like(80, 999);
    let fs = FeatureSet::for_chemical(&data.db, 5);
    let all = compute_all_vectors(&data.db, &fs, &RwrConfig::default(), 1);
    let groups = group_by_label(&all);
    groups
        .into_iter()
        .max_by_key(|g| g.vectors.len())
        .expect("non-empty")
        .vectors
}

#[test]
fn fvmine_supports_are_exact_on_rwr_vectors() {
    let db = carbon_group_vectors();
    assert!(db.len() > 100);
    let out = FvMiner::new(FvMineConfig::new((db.len() / 20).max(2), 0.1)).mine(&db);
    for sv in &out {
        // Exact support set.
        let expect: Vec<u32> = (0..db.len() as u32)
            .filter(|&i| is_sub_vector(&sv.vector, &db[i as usize]))
            .collect();
        assert_eq!(sv.support_ids, expect);
        // Closed.
        let refloor = floor_of(sv.support_ids.iter().map(|&i| db[i as usize].as_slice()));
        assert_eq!(refloor, sv.vector);
        // p-value consistent with the model.
        let model = SignificanceModel::from_vectors(&db, 10);
        let p = model.p_value(&sv.vector, sv.support_ids.len() as u64);
        assert!((p - sv.p_value).abs() < 1e-12);
    }
}

#[test]
fn pvalue_monotonicity_on_rwr_vectors() {
    let db = carbon_group_vectors();
    let model = SignificanceModel::from_vectors(&db, 10);
    let floor = floor_of(db.iter().map(|v| v.as_slice()));
    let ceiling = ceiling_of(db.iter().map(|v| v.as_slice()));
    // Property 1: sub-vector has the larger p-value at equal support.
    for mu in [1u64, 5, 20] {
        assert!(model.p_value(&floor, mu) >= model.p_value(&ceiling, mu) - 1e-12);
    }
    // Property 2: p-value decreases with support.
    let mut prev = f64::INFINITY;
    for mu in 0..20u64 {
        let p = model.p_value(&ceiling, mu);
        assert!(p <= prev + 1e-12);
        prev = p;
    }
}

#[test]
fn rwr_bins_are_bounded_and_dense_enough() {
    let db = carbon_group_vectors();
    let dim = db[0].len();
    assert!(db.iter().all(|v| v.len() == dim));
    assert!(db.iter().all(|v| v.iter().all(|&b| b <= 10)));
    // The discretized distribution keeps roughly unit mass.
    for v in db.iter().take(50) {
        let total: i32 = v.iter().map(|&b| b as i32).sum();
        assert!((total - 10).abs() <= 4, "bin mass {total}");
    }
}

#[test]
fn tighter_pvalue_threshold_yields_subset() {
    let db = carbon_group_vectors();
    let mine = |p: f64| FvMiner::new(FvMineConfig::new((db.len() / 20).max(2), p)).mine(&db);
    let loose = mine(0.2);
    let tight = mine(0.01);
    let loose_set: std::collections::HashSet<Vec<u8>> =
        loose.iter().map(|s| s.vector.clone()).collect();
    assert!(tight.len() <= loose.len());
    for sv in &tight {
        assert!(loose_set.contains(&sv.vector), "tight output not in loose");
    }
}

#[test]
fn higher_support_threshold_yields_subset() {
    let db = carbon_group_vectors();
    let mine = |s: usize| FvMiner::new(FvMineConfig::new(s, 0.5)).mine(&db);
    let low = mine(3);
    let high = mine(10);
    let low_set: std::collections::HashSet<Vec<u8>> =
        low.iter().map(|s| s.vector.clone()).collect();
    for sv in &high {
        assert!(low_set.contains(&sv.vector));
    }
}
