//! Totality of the durable-store readers: whatever bytes land on disk —
//! pure noise, near-valid grammar soup, or surgically damaged real files —
//! decoding must return a structured [`StoreError`], never panic, and a
//! clean roundtrip must reproduce the database exactly.

use std::path::Path;

use graphsig_datagen::aids_like;
use graphsig_graph::write_transactions;
use graphsig_store::{
    decode_shard, encode_shard, open_lenient, open_strict, pack, verify, LabelLimits, Manifest,
    StoreError, MANIFEST_NAME,
};
use proptest::{collection::vec, proptest, ProptestConfig};

fn scratch(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "graphsig_proptest_store_{tag}_{}_{case}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte soup: completely arbitrary bytes fed to both readers must
    /// produce a structured error (or, vanishingly unlikely, a valid
    /// decode) — never a panic, never an abort.
    #[test]
    fn arbitrary_bytes_never_panic_the_readers(
        bytes in vec(proptest::any::<u8>(), 0..512),
    ) {
        let path = Path::new("soup.bin");
        let _ = decode_shard(&bytes, path, LabelLimits::unchecked());
        let _ = Manifest::decode(&bytes, path);
    }

    /// Grammar soup: start from *valid* encodings and splice arbitrary
    /// damage (overwrite at an arbitrary offset, then truncate). Any
    /// outcome is fine except a panic; a changed byte inside the sealed
    /// region must not decode to a different database silently.
    #[test]
    fn damaged_valid_files_never_panic(
        n in 1usize..6,
        seed in proptest::any::<u64>(),
        patch in vec(proptest::any::<u8>(), 1..16),
        offset in proptest::any::<usize>(),
        keep in proptest::any::<usize>(),
    ) {
        let db = aids_like(n, seed).db;
        let shard = encode_shard(db.graphs(), 0);
        let manifest = Manifest {
            store_version: 1,
            node_labels: db.labels().node_labels().map(|(_, s)| s.to_string()).collect(),
            edge_labels: db.labels().edge_labels().map(|(_, s)| s.to_string()).collect(),
            shards: Vec::new(),
        }
        .encode();
        let path = Path::new("damaged.bin");
        for original in [&shard, &manifest] {
            let mut bytes = original.clone();
            let at = offset % bytes.len();
            for (i, b) in patch.iter().enumerate() {
                if at + i < bytes.len() {
                    bytes[at + i] = *b;
                }
            }
            bytes.truncate(keep % (bytes.len() + 1));
            let _ = decode_shard(&bytes, path, LabelLimits::unchecked());
            let _ = Manifest::decode(&bytes, path);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Roundtrip: pack any generated database at any shard size, reopen,
    /// and the served database must be graph-for-graph identical — and a
    /// read-only verify must come back clean.
    #[test]
    fn pack_open_roundtrips_at_any_shard_size(
        n in 1usize..40,
        seed in proptest::any::<u64>(),
        shard_size in 1usize..17,
    ) {
        let db = aids_like(n, seed).db;
        let dir = scratch("roundtrip", seed ^ n as u64 ^ (shard_size as u64) << 32);
        pack(&dir, &db, shard_size).expect("pack");
        let opened = open_strict(&dir).expect("open");
        assert!(!opened.degraded());
        assert_eq!(
            write_transactions(&opened.db),
            write_transactions(&db),
            "packed roundtrip changed the database"
        );
        let report = verify(&dir).expect("verify");
        assert!(report.is_clean());
        let expected_shards = db.len().div_ceil(shard_size);
        assert_eq!(report.shards.len(), expected_shards, "shard tiling");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A store directory containing arbitrary extra junk files must still
    /// open (junk with foreign extensions ignored; `.gss`-named junk is at
    /// worst an orphan) and a strict open of a *damaged referenced shard*
    /// must fail with an error naming a real path.
    #[test]
    fn junk_in_the_store_directory_never_panics(
        n in 1usize..10,
        seed in proptest::any::<u64>(),
        junk in vec(proptest::any::<u8>(), 0..64),
    ) {
        let db = aids_like(n, seed).db;
        let dir = scratch("junk", seed ^ (n as u64) << 8);
        pack(&dir, &db, 4).expect("pack");
        std::fs::write(dir.join("leftover.gss"), &junk).expect("drop junk shard");
        std::fs::write(dir.join("notes.txt"), &junk).expect("drop junk file");
        std::fs::write(dir.join(format!("{MANIFEST_NAME}.tmp")), &junk).expect("drop torn temp");
        let opened = open_lenient(&dir).expect("junk must not block the open");
        assert_eq!(opened.db.len(), db.len(), "junk displaced real graphs");
        assert_eq!(opened.report.orphans, vec!["leftover.gss".to_string()]);
        assert_eq!(opened.report.temps_swept.len(), 1);

        // Now damage a referenced shard: strict open must fail structurally
        // and name a path inside the store.
        let victim = dir.join(&opened.shards[0].name);
        let mut bytes = std::fs::read(&victim).expect("read shard");
        let at = junk.first().copied().unwrap_or(7) as usize % bytes.len();
        bytes[at] ^= 0x20;
        std::fs::write(&victim, &bytes).expect("damage shard");
        match open_strict(&dir) {
            Ok(_) => panic!("damaged shard must not open strictly"),
            Err(e) => {
                let p = e.path();
                assert!(p.starts_with(&dir), "error path outside store: {}", p.display());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Exhaustive (non-random) single-bit sweep over a small real shard and
/// manifest: every flip must be *detected* — the checksum seals the whole
/// file, header included.
#[test]
fn every_single_bit_flip_is_detected() {
    let db = aids_like(3, 11).db;
    let shard = encode_shard(db.graphs(), 0);
    let path = Path::new("flip.bin");
    for byte in 0..shard.len() {
        for bit in 0..8 {
            let mut bytes = shard.clone();
            bytes[byte] ^= 1 << bit;
            assert!(
                decode_shard(&bytes, path, LabelLimits::unchecked()).is_err(),
                "undetected shard flip at {byte}.{bit}"
            );
        }
    }
    let manifest = Manifest {
        store_version: 3,
        node_labels: vec!["C".into(), "N".into()],
        edge_labels: vec!["s".into()],
        shards: Vec::new(),
    }
    .encode();
    for byte in 0..manifest.len() {
        for bit in 0..8 {
            let mut bytes = manifest.clone();
            bytes[byte] ^= 1 << bit;
            assert!(
                Manifest::decode(&bytes, path).is_err(),
                "undetected manifest flip at {byte}.{bit}"
            );
        }
    }
}

/// The error type keeps enough structure to dispatch on: a missing store
/// is `NoManifest`, not a stringly-typed IO failure.
#[test]
fn missing_store_is_structured() {
    let dir = Path::new("/nonexistent/graphsig/proptest/store");
    match open_strict(dir) {
        Err(StoreError::NoManifest { dir: d }) => assert_eq!(d, dir),
        other => panic!("wrong error for missing store: {other:?}"),
    }
}
