//! Full-pipeline determinism across thread counts.
//!
//! The parallel executor must be invisible in the output: for any worker
//! count, `GraphSig::mine` must return byte-identical subgraphs (codes,
//! gids, p-values) and identical run counters. This pins the index-ordered
//! merge invariant of `graphsig_core::par` end to end, for both FSM
//! backends and for the `Prepared`-reuse path.

use graphsig_core::{Budget, FsmBackend, GraphSig, GraphSigConfig, GraphSigResult};
use graphsig_datagen::aids_like;
use graphsig_fsg::{Fsg, FsgConfig};
use graphsig_gspan::{GSpan, MinerConfig, Pattern};
use proptest::{proptest, ProptestConfig};

fn cfg(threads: usize, backend: FsmBackend) -> GraphSigConfig {
    GraphSigConfig {
        min_freq: 0.1,
        max_pvalue: 0.05,
        radius: 4,
        threads,
        fsm_backend: backend,
        max_pattern_edges: 12,
        max_patterns_per_set: 5_000,
        ..Default::default()
    }
}

/// Assert two results are identical in everything the user can observe.
fn assert_identical(a: &GraphSigResult, b: &GraphSigResult, what: &str) {
    assert_eq!(a.subgraphs.len(), b.subgraphs.len(), "{what}: answer count");
    for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
        assert_eq!(x.code, y.code, "{what}: code order/content");
        assert_eq!(x.gids, y.gids, "{what}: supporting gids");
        assert_eq!(x.vector_support, y.vector_support, "{what}: support");
        assert_eq!(x.fsm_support, y.fsm_support, "{what}: fsm support");
        assert_eq!(x.group_label, y.group_label, "{what}: group label");
        assert_eq!(x.set_size, y.set_size, "{what}: set size");
        assert!(
            (x.vector_pvalue - y.vector_pvalue).abs() < 1e-15,
            "{what}: p-value"
        );
    }
    assert_eq!(a.stats.vectors, b.stats.vectors, "{what}: stats.vectors");
    assert_eq!(a.stats.groups, b.stats.groups, "{what}: stats.groups");
    assert_eq!(
        a.stats.significant_vectors, b.stats.significant_vectors,
        "{what}: stats.significant_vectors"
    );
    assert_eq!(
        a.stats.region_sets, b.stats.region_sets,
        "{what}: stats.region_sets"
    );
    assert_eq!(
        a.stats.pruned_sets, b.stats.pruned_sets,
        "{what}: stats.pruned_sets"
    );
    assert_eq!(
        a.stats.truncated_sets, b.stats.truncated_sets,
        "{what}: stats.truncated_sets"
    );
}

fn check_backend(backend: FsmBackend) {
    let data = aids_like(250, 2009);
    let db = data.active_subset();
    let baseline = GraphSig::new(cfg(1, backend)).mine(&db);
    assert!(
        !baseline.subgraphs.is_empty(),
        "workload must actually mine something for the test to mean anything"
    );
    for threads in [2, 4, 8] {
        let r = GraphSig::new(cfg(threads, backend)).mine(&db);
        assert_identical(&baseline, &r, &format!("{backend:?} threads={threads}"));
    }
}

#[test]
fn mine_is_identical_for_any_thread_count_fsg() {
    check_backend(FsmBackend::Fsg);
}

#[test]
fn mine_is_identical_for_any_thread_count_gspan() {
    check_backend(FsmBackend::GSpan);
}

/// Assert two mined pattern lists are byte-identical.
fn assert_patterns_identical(a: &[Pattern], b: &[Pattern], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: pattern count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.code, y.code, "{what}: code order/content");
        assert_eq!(x.support, y.support, "{what}: support");
        assert_eq!(x.gids, y.gids, "{what}: gids");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: on arbitrary generated databases, both baseline miners
    /// produce byte-identical pattern lists at every thread count —
    /// including with a `max_patterns` cap, the trickiest merge path.
    #[test]
    fn baseline_miners_identical_for_any_thread_count(
        n in 10usize..40,
        seed in proptest::any::<u64>(),
    ) {
        let db = aids_like(n, seed).db;
        let support = (n / 5).max(2);

        let gspan_cfg = MinerConfig::new(support)
            .with_max_edges(6)
            .with_max_patterns(500);
        let gspan_seq = GSpan::new(gspan_cfg.clone()).mine(&db);
        let fsg_cfg = FsgConfig::new(support)
            .with_max_edges(5)
            .with_max_patterns(500);
        let fsg_seq = Fsg::new(fsg_cfg.clone()).mine(&db);

        for threads in [2usize, 4, 8] {
            let g = GSpan::new(gspan_cfg.clone().with_threads(threads)).mine(&db);
            assert_patterns_identical(
                &gspan_seq,
                &g,
                &format!("gSpan n={n} seed={seed} threads={threads}"),
            );
            let f = Fsg::new(fsg_cfg.clone().with_threads(threads)).mine(&db);
            assert_patterns_identical(
                &fsg_seq,
                &f,
                &format!("FSG n={n} seed={seed} threads={threads}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: a *step-budget-truncated* run is still byte-identical at
    /// every thread count, for both baseline miners. The budget allowance
    /// is per independent work unit, so exhaustion is a property of the
    /// unit, not of the schedule.
    #[test]
    fn budget_truncated_baselines_identical_for_any_thread_count(
        n in 10usize..30,
        seed in proptest::any::<u64>(),
        max_steps in 0u64..60,
    ) {
        let db = aids_like(n, seed).db;
        let support = (n / 5).max(2);

        let gspan_cfg = MinerConfig::new(support)
            .with_max_edges(6)
            .with_max_patterns(500)
            .with_budget(Budget::unlimited().with_max_steps(max_steps));
        let gspan_seq = GSpan::new(gspan_cfg.clone()).mine_outcome(&db);
        let fsg_cfg = FsgConfig::new(support)
            .with_max_edges(5)
            .with_max_patterns(500)
            .with_budget(Budget::unlimited().with_max_steps(max_steps));
        let fsg_seq = Fsg::new(fsg_cfg.clone()).mine_outcome(&db);

        for threads in [2usize, 4, 8] {
            let g = GSpan::new(gspan_cfg.clone().with_threads(threads)).mine_outcome(&db);
            assert_eq!(
                gspan_seq.completion, g.completion,
                "gSpan n={n} seed={seed} steps={max_steps} threads={threads}: completion"
            );
            assert_patterns_identical(
                &gspan_seq.result,
                &g.result,
                &format!("gSpan n={n} seed={seed} steps={max_steps} threads={threads}"),
            );
            let f = Fsg::new(fsg_cfg.clone().with_threads(threads)).mine_outcome(&db);
            assert_eq!(
                fsg_seq.completion, f.completion,
                "FSG n={n} seed={seed} steps={max_steps} threads={threads}: completion"
            );
            assert_patterns_identical(
                &fsg_seq.result,
                &f.result,
                &format!("FSG n={n} seed={seed} steps={max_steps} threads={threads}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: the *whole pipeline*, truncated by a step budget, is
    /// byte-identical at every thread count — completion reason included.
    #[test]
    fn budget_truncated_pipeline_identical_for_any_thread_count(
        n in 10usize..25,
        seed in proptest::any::<u64>(),
        max_steps in 0u64..40,
    ) {
        let db = aids_like(n, seed).db;
        let governed = |threads: usize| {
            let c = GraphSigConfig {
                threads,
                ..cfg(threads, FsmBackend::Fsg)
            }
            .with_budget(Budget::unlimited().with_max_steps(max_steps));
            GraphSig::new(c).mine_outcome(&db)
        };
        let baseline = governed(1);
        for threads in [2usize, 4, 8] {
            let r = governed(threads);
            assert_eq!(
                baseline.completion, r.completion,
                "pipeline n={n} seed={seed} steps={max_steps} threads={threads}: completion"
            );
            assert_identical(
                &baseline.result,
                &r.result,
                &format!("pipeline n={n} seed={seed} steps={max_steps} threads={threads}"),
            );
        }
    }
}

#[test]
fn injected_panic_yields_structured_error_at_every_thread_count() {
    // A panicking task must surface as a structured `TaskPanicked` (with
    // the deterministic lowest failing index), not abort the process —
    // and the executor must stay usable afterwards.
    for threads in [1usize, 2, 4, 8] {
        let err = graphsig_core::try_par_map_range(threads, 64, |i| {
            if i == 17 || i == 40 {
                panic!("injected fault at {i}");
            }
            i * 2
        })
        .unwrap_err();
        assert_eq!(err.index, 17, "threads={threads}: first panicking index");
        assert!(
            err.message.contains("injected fault at 17"),
            "threads={threads}: payload lost: {}",
            err.message
        );
        let ok = graphsig_core::try_par_map_range(threads, 8, |i| i).unwrap();
        assert_eq!(
            ok,
            (0..8).collect::<Vec<_>>(),
            "threads={threads}: executor unusable after panic"
        );
    }
}

#[test]
fn packed_store_mines_byte_identical_to_text_at_any_thread_count() {
    // The durable store must be invisible too: mining a database loaded
    // from a packed+sharded store must render the exact bytes of mining
    // the same database loaded from text — at every thread count. This is
    // the end-to-end guarantee that the manifest's global label table
    // reproduces the text parse's interning order.
    use graphsig_graph::{parse_transactions, write_transactions};

    let db = aids_like(120, 77).db;
    let text = write_transactions(&db);
    let db_text = parse_transactions(&text).expect("text roundtrip parses");

    let dir = std::env::temp_dir().join(format!(
        "graphsig_parallel_det_store_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    graphsig_store::pack(&dir, &db_text, 16).expect("pack");
    let opened = graphsig_store::open_strict(&dir).expect("open");
    std::fs::remove_dir_all(&dir).ok();
    assert!(opened.shards.len() > 1, "test needs a sharded store");

    let baseline = GraphSig::new(cfg(1, FsmBackend::Fsg)).mine(&db_text);
    let baseline_bytes = graphsig_core::render_subgraphs(&db_text, &baseline, usize::MAX);
    assert!(
        !baseline.subgraphs.is_empty(),
        "workload must actually mine something for the test to mean anything"
    );
    for threads in [1, 2, 4, 8] {
        let r = GraphSig::new(cfg(threads, FsmBackend::Fsg)).mine(&opened.db);
        assert_identical(&baseline, &r, &format!("packed threads={threads}"));
        assert_eq!(
            graphsig_core::render_subgraphs(&opened.db, &r, usize::MAX),
            baseline_bytes,
            "packed-store mine output differs from text at threads={threads}"
        );
    }
}

#[test]
fn prepared_reuse_is_identical_across_thread_counts() {
    // The RWR pass is computed once under one thread count and the rest of
    // the pipeline re-run under others — mixing `prepare` and
    // `mine_prepared` parallelism must not change the answers either.
    let data = aids_like(250, 2009);
    let db = data.active_subset();
    let baseline = GraphSig::new(cfg(1, FsmBackend::Fsg)).mine(&db);

    let prepared = GraphSig::new(cfg(4, FsmBackend::Fsg)).prepare(&db);
    for threads in [1, 2, 8] {
        let r = GraphSig::new(cfg(threads, FsmBackend::Fsg)).mine_prepared(&db, &prepared);
        assert_identical(
            &baseline,
            &r,
            &format!("prepared(4) + mine_prepared({threads})"),
        );
    }
}
