//! Classifier integration: the full Table VI protocol on one scaled screen.

use graphsig_classify::{
    auc_from_scores, balanced_sample, stratified_folds, GraphSigClassifier, KnnConfig,
    LeapClassifier, LeapConfig, OaClassifier, OaConfig,
};
use graphsig_core::GraphSigConfig;
use graphsig_datagen::cancer_screen;

fn mining_cfg() -> GraphSigConfig {
    GraphSigConfig {
        min_freq: 0.05,
        max_pvalue: 0.1,
        threads: 2,
        ..Default::default()
    }
}

#[test]
fn graphsig_classifier_beats_chance_on_screen() {
    let data = cancer_screen("PC-3", 0.02);
    let (pos, neg) = balanced_sample(&data.active, 0.5, 3);
    assert!(pos.len() >= 5, "too few actives at this scale");
    let clf = GraphSigClassifier::train(
        &data.db.subset(&pos),
        &data.db.subset(&neg),
        KnnConfig {
            mining: mining_cfg(),
            ..Default::default()
        },
    );
    let train: std::collections::HashSet<usize> = pos.iter().chain(&neg).copied().collect();
    let scores: Vec<(f64, bool)> = (0..data.len())
        .filter(|i| !train.contains(i))
        .map(|i| (clf.score(data.db.graph(i)), data.active[i]))
        .collect();
    let auc = auc_from_scores(&scores);
    assert!(auc > 0.65, "GraphSig AUC too low: {auc}");
}

#[test]
fn leap_baseline_beats_chance_on_screen() {
    let data = cancer_screen("PC-3", 0.02);
    let (pos, neg) = balanced_sample(&data.active, 0.5, 3);
    let mut train: Vec<usize> = pos.iter().chain(&neg).copied().collect();
    train.sort_unstable();
    let labels: Vec<bool> = train.iter().map(|&i| data.active[i]).collect();
    let clf = LeapClassifier::train(
        &data.db.subset(&train),
        &labels,
        LeapConfig {
            min_freq: 0.2,
            max_edges: 6,
            top_k: 40,
            ..Default::default()
        },
    );
    let train_set: std::collections::HashSet<usize> = train.iter().copied().collect();
    let scores: Vec<(f64, bool)> = (0..data.len())
        .filter(|i| !train_set.contains(i))
        .map(|i| (clf.score(data.db.graph(i)), data.active[i]))
        .collect();
    let auc = auc_from_scores(&scores);
    assert!(auc > 0.6, "LEAP AUC too low: {auc}");
}

#[test]
fn oa_baseline_runs_on_small_sample() {
    let data = cancer_screen("PC-3", 0.01);
    let (pos, neg) = balanced_sample(&data.active, 0.5, 3);
    let mut train: Vec<usize> = pos.iter().chain(&neg).copied().collect();
    train.sort_unstable();
    let labels: Vec<bool> = train.iter().map(|&i| data.active[i]).collect();
    let clf = OaClassifier::train(&data.db.subset(&train), &labels, OaConfig::default());
    // Scores must be finite and not constant.
    let scores: Vec<f64> = (0..20.min(data.len()))
        .map(|i| clf.score(data.db.graph(i)))
        .collect();
    assert!(scores.iter().all(|s| s.is_finite()));
    let first = scores[0];
    assert!(scores.iter().any(|&s| (s - first).abs() > 1e-12));
}

#[test]
fn folds_protocol_is_consistent() {
    let data = cancer_screen("SW-620", 0.01);
    let folds = stratified_folds(&data.active, 5, 42);
    let total: usize = folds.iter().map(Vec::len).sum();
    assert_eq!(total, data.len());
    // Each fold carries some actives (stratification).
    let active_total: usize = folds
        .iter()
        .map(|f| f.iter().filter(|&&i| data.active[i]).count())
        .sum();
    assert_eq!(active_total, data.active_count());
}
