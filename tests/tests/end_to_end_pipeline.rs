//! End-to-end: generated data → GraphSig → verified significant subgraphs.

use graphsig_core::{pipeline::verify_occurrences, GraphSig, GraphSigConfig};
use graphsig_datagen::{aids_like, cancer_screen, motifs, standard_alphabet};
use graphsig_graph::iso::contains;

fn fast_cfg() -> GraphSigConfig {
    GraphSigConfig {
        min_freq: 0.1,
        max_pvalue: 0.05,
        radius: 4,
        threads: 2,
        max_pattern_edges: 12,
        max_patterns_per_set: 5_000,
        ..Default::default()
    }
}

#[test]
fn aids_actives_yield_verified_nitrogen_cores() {
    let data = aids_like(400, 2024);
    let actives = data.active_subset();
    let result = GraphSig::new(fast_cfg()).mine(&actives);
    assert!(!result.subgraphs.is_empty());
    let alphabet = standard_alphabet();
    let n = alphabet.atom("N");
    assert!(
        result
            .subgraphs
            .iter()
            .any(|sg| sg.graph.node_labels().contains(&n) && sg.graph.edge_count() >= 3),
        "no nitrogen-bearing core found"
    );
    for sg in &result.subgraphs {
        assert!(verify_occurrences(sg, &actives));
        assert!(sg.vector_pvalue <= 0.05 + 1e-12);
        assert!(sg.graph.is_connected());
    }
}

#[test]
fn melanoma_screen_recovers_phosphonium_related_structure() {
    let alphabet = standard_alphabet();
    let data = cancer_screen("UACC-257", 0.02);
    let actives = data.active_subset();
    let result = GraphSig::new(fast_cfg()).mine(&actives);
    // The phosphonium core (or a phosphorus-bearing piece of it) should be
    // among the answers: actives embed it with weight 0.8.
    let p = alphabet.atom("P");
    assert!(
        result
            .subgraphs
            .iter()
            .any(|sg| sg.graph.node_labels().contains(&p)),
        "no phosphorus-bearing structure mined from the Melanoma screen"
    );
}

#[test]
fn pipeline_is_deterministic() {
    let data = aids_like(200, 7);
    let r1 = GraphSig::new(fast_cfg()).mine(&data.active_subset());
    let r2 = GraphSig::new(fast_cfg()).mine(&data.active_subset());
    assert_eq!(r1.subgraphs.len(), r2.subgraphs.len());
    for (a, b) in r1.subgraphs.iter().zip(&r2.subgraphs) {
        assert_eq!(a.code, b.code);
        assert_eq!(a.gids, b.gids);
        assert!((a.vector_pvalue - b.vector_pvalue).abs() < 1e-12);
    }
}

#[test]
fn radius_zero_regions_mine_nothing_interesting() {
    // With radius 0 every region is a single node, so no answer subgraph
    // (patterns need at least one edge) can come out of the FSM step.
    let data = aids_like(150, 9);
    let cfg = GraphSigConfig {
        radius: 0,
        ..fast_cfg()
    };
    let result = GraphSig::new(cfg).mine(&data.active_subset());
    assert!(result.subgraphs.is_empty());
}

#[test]
fn benzene_suppressed_but_planted_cores_pass() {
    let alphabet = standard_alphabet();
    let benzene = motifs::benzene(&alphabet);
    let data = aids_like(400, 31);
    let result = GraphSig::new(fast_cfg()).mine(&data.active_subset());
    // Even mining only actives, the class-independent benzene ring should
    // not be the story: some answer must NOT be contained in benzene.
    assert!(result
        .subgraphs
        .iter()
        .any(|sg| !contains(&benzene, &sg.graph)));
}
