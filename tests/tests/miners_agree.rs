//! The two frequent-subgraph miners must produce identical pattern sets on
//! real molecule-like workloads, and the closed/maximal filters must nest.

use graphsig_datagen::aids_like;
use graphsig_fsg::{Fsg, FsgConfig};
use graphsig_graph::SubgraphMatcher;
use graphsig_gspan::{GSpan, MinerConfig, Pattern};

fn code_key(p: &Pattern) -> Vec<(u32, u32, u16, u16, u16)> {
    p.code
        .edges()
        .iter()
        .map(|e| (e.from, e.to, e.from_label, e.edge_label, e.to_label))
        .collect()
}

#[test]
fn gspan_and_fsg_mine_identical_sets() {
    let data = aids_like(60, 123);
    for freq in [0.5, 0.3, 0.2] {
        let support = ((freq * data.len() as f64).ceil() as usize).max(1);
        let mut gs = GSpan::new(MinerConfig::new(support).with_max_edges(6)).mine(&data.db);
        let mut fs = Fsg::new(FsgConfig::new(support).with_max_edges(6)).mine(&data.db);
        gs.sort_by_key(code_key);
        fs.sort_by_key(code_key);
        assert_eq!(gs.len(), fs.len(), "freq {freq}");
        for (a, b) in gs.iter().zip(&fs) {
            assert_eq!(a.code, b.code, "freq {freq}");
            assert_eq!(a.support, b.support);
            assert_eq!(a.gids, b.gids);
        }
    }
}

#[test]
fn supports_are_vf2_verified() {
    let data = aids_like(40, 321);
    let support = (0.3 * data.len() as f64).ceil() as usize;
    let patterns = GSpan::new(MinerConfig::new(support).with_max_edges(5)).mine(&data.db);
    assert!(!patterns.is_empty());
    for p in &patterns {
        let real = data
            .db
            .graphs()
            .iter()
            .filter(|g| SubgraphMatcher::new(&p.graph, g).exists())
            .count();
        assert_eq!(real, p.support, "pattern {}", p.code);
    }
}

#[test]
fn maximal_subset_of_closed_subset_of_frequent() {
    let data = aids_like(50, 55);
    let support = (0.4 * data.len() as f64).ceil() as usize;
    let miner = GSpan::new(MinerConfig::new(support).with_max_edges(6));
    let frequent = miner.mine(&data.db);
    let closed = miner.mine_closed(&data.db);
    let maximal = miner.mine_maximal(&data.db);
    assert!(maximal.len() <= closed.len());
    assert!(closed.len() <= frequent.len());
    let freq_codes: std::collections::HashSet<_> = frequent.iter().map(code_key).collect();
    let closed_codes: std::collections::HashSet<_> = closed.iter().map(code_key).collect();
    for m in &maximal {
        assert!(closed_codes.contains(&code_key(m)), "maximal not closed");
    }
    for c in &closed {
        assert!(freq_codes.contains(&code_key(c)), "closed not frequent");
    }
    // No maximal pattern is contained in another frequent pattern.
    for m in &maximal {
        for f in &frequent {
            if f.graph.edge_count() > m.graph.edge_count() {
                assert!(
                    !SubgraphMatcher::new(&m.graph, &f.graph).exists(),
                    "non-maximal pattern in maximal output"
                );
            }
        }
    }
}

#[test]
fn anti_monotonicity_of_support() {
    // Every pattern's support is <= the support of each of its sub-edges.
    let data = aids_like(40, 77);
    let support = (0.3 * data.len() as f64).ceil() as usize;
    let patterns = GSpan::new(MinerConfig::new(support).with_max_edges(5)).mine(&data.db);
    let singles: Vec<&Pattern> = patterns
        .iter()
        .filter(|p| p.graph.edge_count() == 1)
        .collect();
    for p in patterns.iter().filter(|p| p.graph.edge_count() > 1) {
        for s in &singles {
            if SubgraphMatcher::new(&s.graph, &p.graph).exists() {
                assert!(
                    p.support <= s.support,
                    "support grew: {} ⊃ {}",
                    p.code,
                    s.code
                );
            }
        }
    }
}
