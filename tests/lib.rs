//! Cross-crate integration tests for the GraphSig workspace live in
//! the `tests/` subdirectory of this package (one file per scenario).
