//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of `criterion`'s API its benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`, `Bencher::iter` /
//! `iter_batched`, and `black_box`. Instead of criterion's statistical
//! analysis, each bench runs a short warm-up followed by `sample_size`
//! timed samples and prints min/mean per-iteration times — enough to
//! track relative movement between commits, not a rigorous harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; the stub runs one setup per
/// routine call regardless, so the variants only exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            results: Vec::new(),
        }
    }

    /// Time `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.results.push(t.elapsed());
        }
    }

    /// Time `routine` on inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.results.push(t.elapsed());
        }
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        results.len()
    );
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &b.results);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b.results);
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Bundle bench functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.bench_function("probe", |b| b.iter(|| calls += 1));
        // One warm-up + sample_size timed runs.
        assert_eq!(calls, 11);
    }

    #[test]
    fn groups_honor_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("probe", |b| {
            b.iter_batched(|| 1usize, |x| calls += x, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(calls, 4);
    }
}
