//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: `SmallRng`
//! (xoshiro256++ seeded via SplitMix64, the same generator family real
//! `rand 0.8` uses on 64-bit targets), the `Rng`/`SeedableRng` traits,
//! `distributions::WeightedIndex`, and `seq::SliceRandom`. Streams are
//! deterministic for a given seed, which is all the datagen and
//! cross-validation code requires; bit-compatibility with upstream `rand`
//! is *not* guaranteed (absolute sampled values may differ, statistical
//! behaviour does not).

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (SplitMix64 expansion, as upstream).
    fn seed_from_u64(state: u64) -> Self;
}

/// Marker for types `gen_range` can produce.
pub trait SampleUniform: Sized {}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Widening-multiply mapping (Lemire, without the rejection step —
    // the bias is < 2^-64 per unit of span, irrelevant for test data).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

impl SampleUniform for f32 {}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_single(rng) as f32
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        unit_f64(self) < p
    }

    /// A value of the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small fast generator family `rand 0.8` uses for
    /// `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors.
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution of a type.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Error of [`WeightedIndex::new`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were given.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights are zero.
        AllWeightsZero,
    }

    impl core::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                Self::NoItem => write!(f, "no weights provided"),
                Self::InvalidWeight => write!(f, "negative or non-finite weight"),
                Self::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Sampling of indices proportionally to a weight per index. The
    /// weight type parameter exists for API parity with upstream; weights
    /// are accumulated as `f64` internally.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<X = f64> {
        cumulative: Vec<f64>,
        total: f64,
        _weight: core::marker::PhantomData<X>,
    }

    impl<X: Into<f64>> WeightedIndex<X> {
        /// Build from an iterator of non-negative finite weights.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator<Item = X>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w: f64 = w.into();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(Self {
                cumulative,
                total,
                _weight: core::marker::PhantomData,
            })
        }
    }

    impl<X> Distribution<usize> for WeightedIndex<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = unit_f64(rng) * self.total;
            // First index whose cumulative weight exceeds the draw.
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).unwrap())
            {
                Ok(i) => i + 1,
                Err(i) => i,
            }
            .min(self.cumulative.len() - 1)
        }
    }
}

pub mod seq {
    use super::{u64_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let equal = (0..100).all(|_| a.gen_range(0u64..1 << 60) == c.gen_range(0u64..1 << 60));
        assert!(!equal, "different seeds produced the same stream");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(9);
        let w = WeightedIndex::new([1.0f64, 0.0, 3.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 2 * counts[0], "{counts:?}");
        assert!(WeightedIndex::new(core::iter::empty::<f64>()).is_err());
        assert!(WeightedIndex::new([0.0f64, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0f64]).is_err());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
        assert!([0usize; 0].choose(&mut rng).is_none());
        assert!(v.choose(&mut rng).is_some());
    }
}
