//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of `proptest` its property tests use: the
//! `proptest!` macro, range/tuple/`prop_map` strategies,
//! `prop::collection::vec`, `prop::sample::select`, `any::<T>()`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test seed (derived from the test's name), so runs
//! are reproducible. Failing inputs are reported by `Debug` value, not
//! shrunk — acceptable for a CI gate, the upstream crate remains the
//! better tool for interactive debugging.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the input is discarded, not a failure.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (assume failure).
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }

    /// A genuine assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Cap on rejected cases before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value: core::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U: core::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (rejection sampling).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: core::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + core::fmt::Debug>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + core::fmt::Debug {
    /// The `any::<T>()` strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The strategy behind [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(core::marker::PhantomData)
    }
}

/// The full-range strategy of a type: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Vector length specification: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose elements come from `element` and whose length comes
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};
    use rand::seq::SliceRandom;

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + core::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options
                .choose(rng)
                .expect("select() needs a non-empty list")
                .clone()
        }
    }

    /// Uniform choice among the given options.
    pub fn select<T: Clone + core::fmt::Debug>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// `prop::` alias used by `use proptest::prelude::*` clients.
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

/// Everything the property tests import.
pub mod prelude {
    pub use super::{any, prop, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Derive a stable per-test seed from its module path and name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Run one property test: sample inputs, run the case, honor rejections.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{name}: too many prop_assume rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case {accepted}: {msg}");
            }
        }
    }
}

/// The `proptest!` test-definition macro (no-shrink variant).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng| {
                        $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // No `format!` here: stringified code may itself contain braces.
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn assume_discards(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_and_map(v in (1usize..5, any::<u64>()).prop_map(|(n, s)| vec![s; n])) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn collections_and_select(
            vs in prop::collection::vec(prop::collection::vec(0u8..6, 5), 1..8),
            pick in prop::sample::select(vec![1u32, 2, 3]),
        ) {
            prop_assert!((1..8).contains(&vs.len()));
            prop_assert!(vs.iter().all(|v| v.len() == 5 && v.iter().all(|&x| x < 6)));
            prop_assert_ne!(pick, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let cfg = crate::ProptestConfig::with_cases(10);
        crate::run_property("name", &cfg, |rng| {
            a.push(crate::Strategy::sample(&(0u64..1000), rng));
            Ok(())
        });
        crate::run_property("name", &cfg, |rng| {
            b.push(crate::Strategy::sample(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        crate::run_property("f", &crate::ProptestConfig::with_cases(4), |_rng| {
            Err(crate::TestCaseError::fail("boom"))
        });
    }
}
