//! The versioned manifest: the single source of truth for what a store
//! contains.
//!
//! ```text
//! manifest := magic version payload_len crc payload
//! magic    := "GSIGMANI"                  ; 8 bytes
//! version  := u32                         ; format version, currently 1
//! payload_len := u64
//! crc      := u64                         ; CRC-64/XZ of the 20 header
//!                                         ; bytes before it + the payload
//! payload  := store_version:u64
//!             node_label_count:u16 str*   ; global node label table, id order
//!             edge_label_count:u16 str*   ; global edge label table, id order
//!             shard_count:u32 shard_meta*
//! shard_meta := name:str gid_start:u64 graph_count:u32
//!               file_len:u64 shard_crc:u64
//! str      := len:u16 utf8_byte*
//! ```
//!
//! The manifest owns the *global* label table; shard payloads carry only
//! numeric ids into it. Interning the table back in id order reproduces the
//! exact `LabelTable` of the original text parse, which is what makes
//! mining over a packed store byte-identical to mining the source text.
//!
//! `store_version` is a monotonically increasing ingest counter: every
//! successful `pack`/append commits a new manifest with `store_version + 1`,
//! so observers can tell "nothing changed" from "replaced with identical
//! content". A decoded manifest is always internally consistent: shard gid
//! ranges must be contiguous ascending from 0 and label names unique, or
//! decoding fails with a structured error.

use std::path::Path;

use graphsig_graph::LabelTable;

use crate::error::StoreError;
use crate::format::{crc64_parts, put_str, put_u16, put_u32, put_u64, Cursor};
use crate::shard::LabelLimits;

/// The 8 magic bytes opening the manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"GSIGMANI";
/// Highest manifest format version this build reads and the one it writes.
pub const MANIFEST_VERSION: u32 = 1;
/// File name of the committed manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST.gsm";

/// One shard as the manifest records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// File name within the store directory (no path separators).
    pub name: String,
    /// Database gid of the shard's first graph.
    pub gid_start: u64,
    /// Graphs in the shard.
    pub graph_count: u32,
    /// Expected total file length in bytes (header + payload).
    pub file_len: u64,
    /// Expected shard checksum — the CRC stamped in the shard's own
    /// header, covering its header fields and payload.
    pub shard_crc: u64,
}

impl ShardMeta {
    /// Gid one past the last graph in this shard.
    pub fn gid_end(&self) -> u64 {
        self.gid_start + self.graph_count as u64
    }
}

/// The decoded manifest: label tables plus the shard list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Ingest counter, bumped on every committed pack/append.
    pub store_version: u64,
    /// Global node label names, in interned-id order.
    pub node_labels: Vec<String>,
    /// Global edge label names, in interned-id order.
    pub edge_labels: Vec<String>,
    /// Shards in gid order.
    pub shards: Vec<ShardMeta>,
}

impl Manifest {
    /// Total graphs across all shards.
    pub fn total_graphs(&self) -> u64 {
        self.shards.last().map_or(0, ShardMeta::gid_end)
    }

    /// Label-id ceilings for validating shard payloads.
    pub fn label_limits(&self) -> LabelLimits {
        LabelLimits {
            node: self.node_labels.len() as u16,
            edge: self.edge_labels.len() as u16,
        }
    }

    /// Rebuild the global `LabelTable`, preserving interned-id order.
    pub fn label_table(&self) -> LabelTable {
        let mut t = LabelTable::new();
        for name in &self.node_labels {
            t.intern_node(name);
        }
        for name in &self.edge_labels {
            t.intern_edge(name);
        }
        t
    }

    /// Serialize as a complete manifest file (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.store_version);
        put_u16(&mut payload, self.node_labels.len() as u16);
        for name in &self.node_labels {
            put_str(&mut payload, name);
        }
        put_u16(&mut payload, self.edge_labels.len() as u16);
        for name in &self.edge_labels {
            put_str(&mut payload, name);
        }
        put_u32(&mut payload, self.shards.len() as u32);
        for s in &self.shards {
            put_str(&mut payload, &s.name);
            put_u64(&mut payload, s.gid_start);
            put_u32(&mut payload, s.graph_count);
            put_u64(&mut payload, s.file_len);
            put_u64(&mut payload, s.shard_crc);
        }
        let mut out = Vec::with_capacity(8 + 4 + 8 + 8 + payload.len());
        out.extend_from_slice(MANIFEST_MAGIC);
        put_u32(&mut out, MANIFEST_VERSION);
        put_u64(&mut out, payload.len() as u64);
        let crc = crc64_parts(&[&out, &payload]);
        put_u64(&mut out, crc);
        out.extend_from_slice(&payload);
        out
    }

    /// Decode and validate a manifest file. Total over arbitrary bytes.
    pub fn decode(bytes: &[u8], path: &Path) -> Result<Manifest, StoreError> {
        let mut c = Cursor::new(bytes, path);
        let magic = c.take(8, "magic")?;
        if magic != MANIFEST_MAGIC {
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
                found: magic.to_vec(),
            });
        }
        let version = c.u32("format version")?;
        if version > MANIFEST_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: path.to_path_buf(),
                version,
                supported: MANIFEST_VERSION,
            });
        }
        let payload_len = c.u64("payload length")?;
        let manifest_crc = c.u64("checksum")?;
        if payload_len != c.remaining() as u64 {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                what: "payload",
                needed: payload_len as usize,
                available: c.remaining(),
            });
        }
        let payload = c.take(payload_len as usize, "payload")?;
        let actual = crc64_parts(&[&bytes[..20], payload]);
        if actual != manifest_crc {
            return Err(StoreError::ChecksumMismatch {
                path: path.to_path_buf(),
                expected: manifest_crc,
                actual,
            });
        }
        let mut p = Cursor::new(payload, path);
        let store_version = p.u64("store version")?;
        let node_labels = read_label_table(&mut p, path, "node label")?;
        let edge_labels = read_label_table(&mut p, path, "edge label")?;
        let shard_count = p.u32("shard count")? as usize;
        // Each shard record is at least 30 bytes (empty name).
        if shard_count > p.remaining() / 30 + 1 {
            return Err(StoreError::corrupt(
                path,
                format!(
                    "shard count {shard_count} cannot fit in {} remaining bytes",
                    p.remaining()
                ),
            ));
        }
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let name = p.str("shard name")?.to_string();
            if name.is_empty() || name.contains(['/', '\\']) || name == ".." {
                return Err(StoreError::corrupt(
                    path,
                    format!("shard {i}: invalid shard name {name:?}"),
                ));
            }
            let gid_start = p.u64("shard gid start")?;
            let graph_count = p.u32("shard graph count")?;
            let file_len = p.u64("shard file length")?;
            let shard_crc = p.u64("shard payload checksum")?;
            shards.push(ShardMeta {
                name,
                gid_start,
                graph_count,
                file_len,
                shard_crc,
            });
        }
        p.finish("shard list")?;
        // Gid ranges must tile [0, total) in order: any duplicate,
        // overlapping, or gapped range shows up as a start that is not the
        // previous end.
        let mut expected_start = 0u64;
        for s in &shards {
            if s.gid_start != expected_start {
                return Err(StoreError::GidRangeConflict {
                    path: path.to_path_buf(),
                    detail: format!(
                        "shard {} covers gids {}..{} but {} is next",
                        s.name,
                        s.gid_start,
                        s.gid_end(),
                        expected_start
                    ),
                });
            }
            expected_start = expected_start
                .checked_add(s.graph_count as u64)
                .ok_or_else(|| {
                    StoreError::corrupt(path, format!("shard {}: gid range overflows u64", s.name))
                })?;
        }
        let mut seen = std::collections::HashSet::new();
        for s in &shards {
            if !seen.insert(s.name.as_str()) {
                return Err(StoreError::corrupt(
                    path,
                    format!("duplicate shard name {}", s.name),
                ));
            }
        }
        Ok(Manifest {
            store_version,
            node_labels,
            edge_labels,
            shards,
        })
    }
}

fn read_label_table(
    p: &mut Cursor<'_>,
    path: &Path,
    what: &'static str,
) -> Result<Vec<String>, StoreError> {
    let count = p.u16(what)? as usize;
    let mut names = Vec::with_capacity(count.min(p.remaining() / 2 + 1));
    let mut seen = std::collections::HashSet::new();
    for _ in 0..count {
        let name = p.str(what)?;
        if !seen.insert(name) {
            return Err(StoreError::corrupt(
                path,
                format!("duplicate {what} name {name:?}"),
            ));
        }
        names.push(name.to_string());
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            store_version: 4,
            node_labels: vec!["C".into(), "O".into(), "N".into()],
            edge_labels: vec!["s".into(), "d".into()],
            shards: vec![
                ShardMeta {
                    name: "shard-00000.gss".into(),
                    gid_start: 0,
                    graph_count: 128,
                    file_len: 4096,
                    shard_crc: 0xDEAD,
                },
                ShardMeta {
                    name: "shard-00001.gss".into(),
                    gid_start: 128,
                    graph_count: 7,
                    file_len: 300,
                    shard_crc: 0xBEEF,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes, Path::new("m")).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_graphs(), 135);
    }

    #[test]
    fn label_table_preserves_id_order() {
        let t = sample().label_table();
        assert_eq!(t.node_name(0), Some("C"));
        assert_eq!(t.node_name(1), Some("O"));
        assert_eq!(t.node_name(2), Some("N"));
        assert_eq!(t.edge_name(1), Some("d"));
    }

    #[test]
    fn truncation_at_every_length_is_structured() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let e = Manifest::decode(&bytes[..len], Path::new("m"))
                .expect_err("truncated manifest must not decode");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let bytes = sample().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                let e = Manifest::decode(&bad, Path::new("m"))
                    .expect_err(&format!("undetected flip at {byte}.{bit}"));
                assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn overlapping_gid_ranges_rejected() {
        let mut m = sample();
        m.shards[1].gid_start = 100; // overlaps shard 0's 0..128
        let e = Manifest::decode(&m.encode(), Path::new("m")).unwrap_err();
        assert!(matches!(e, StoreError::GidRangeConflict { .. }), "{e}");
        m.shards[1].gid_start = 200; // gap after 128
        let e = Manifest::decode(&m.encode(), Path::new("m")).unwrap_err();
        assert!(matches!(e, StoreError::GidRangeConflict { .. }), "{e}");
    }

    #[test]
    fn duplicate_shard_names_rejected() {
        let mut m = sample();
        m.shards[1].name = m.shards[0].name.clone();
        let e = Manifest::decode(&m.encode(), Path::new("m")).unwrap_err();
        assert!(e.to_string().contains("duplicate shard name"), "{e}");
    }

    #[test]
    fn traversal_shard_names_rejected() {
        let mut m = sample();
        m.shards[0].name = "../evil.gss".into();
        let e = Manifest::decode(&m.encode(), Path::new("m")).unwrap_err();
        assert!(e.to_string().contains("invalid shard name"), "{e}");
    }

    #[test]
    fn duplicate_label_names_rejected() {
        let mut m = sample();
        m.node_labels.push("C".into());
        let e = Manifest::decode(&m.encode(), Path::new("m")).unwrap_err();
        assert!(e.to_string().contains("duplicate node label"), "{e}");
    }
}
