//! Deterministic, seeded fault injection for store I/O — plus the retry
//! policy that makes transient failures invisible to callers.
//!
//! Every filesystem touch in this crate goes through an [`Io`] handle. A
//! plain `Io::real()` executes the operation directly (retrying genuine
//! transient errors); an `Io::with_plan(FaultPlan)` additionally consults a
//! seeded plan before each operation and may:
//!
//! - fail **transiently** (`ErrorKind::Interrupted`) — recovered by the
//!   bounded exponential-backoff retry loop below, counted in [`IoStats`];
//! - fail **permanently** (`ErrorKind::Other`) — surfaces immediately as a
//!   structured [`StoreError::Io`](crate::StoreError), no retry storm;
//! - return a **short read** — the caller sees truncated bytes and must
//!   resolve them to a structured decode error (totality is exercised, not
//!   the retry path);
//! - **stall** — sleep for the plan's stall duration, then proceed.
//!
//! Decisions are drawn from a splitmix64 stream seeded by the plan, so a
//! given `(seed, operation sequence)` replays the exact same faults. The
//! chaos harness leans on this to diff faulted runs against an unfaulted
//! oracle.
//!
//! ## Retry taxonomy
//!
//! Transient = `ErrorKind::Interrupted` or `ErrorKind::WouldBlock`
//! (whether injected or genuine). Everything else is permanent. A
//! transient attempt sleeps `min(200µs · 2^attempt, 3.2ms)` plus seeded
//! jitter and retries, up to [`MAX_IO_ATTEMPTS`] total attempts; the final
//! failure is returned as-is. Permanent errors never retry.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Total attempts (first try + retries) for a transiently failing
/// operation before the error is surfaced.
pub const MAX_IO_ATTEMPTS: u32 = 5;

/// Next value of a splitmix64 stream; the generator behind every seeded
/// decision in this module.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which primitive a fault decision applies to. Mostly for diagnostics;
/// short reads only apply to `Read`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoOp {
    /// Whole-file read of a shard or manifest.
    Read,
    /// Creating a temp sibling for an atomic write.
    Create,
    /// Writing the temp sibling's bytes.
    Write,
    /// fsync of a freshly written file.
    Fsync,
    /// Atomic rename of temp into place.
    Rename,
    /// Directory listing (temp/orphan scan).
    List,
    /// Removing a stale shard or swept temp.
    Remove,
    /// `create_dir_all` for a fresh store.
    CreateDir,
    /// fsync of the directory after a rename.
    SyncDir,
}

impl IoOp {
    /// Stable lowercase name, used in injected error messages.
    pub fn name(self) -> &'static str {
        match self {
            IoOp::Read => "read",
            IoOp::Create => "create",
            IoOp::Write => "write",
            IoOp::Fsync => "fsync",
            IoOp::Rename => "rename",
            IoOp::List => "list",
            IoOp::Remove => "remove",
            IoOp::CreateDir => "create_dir",
            IoOp::SyncDir => "sync_dir",
        }
    }
}

/// A seeded schedule of injected faults. Probabilities are per-mille per
/// I/O event; `permanent_at`/`kill_after` pin faults to exact event
/// indices for targeted tests and mid-ingest kill simulation.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Chance (‰) an event fails with `ErrorKind::Interrupted`.
    pub transient_per_mille: u16,
    /// Chance (‰) a read returns fewer bytes than the file holds.
    pub short_read_per_mille: u16,
    /// Chance (‰) an event sleeps for `stall` before proceeding.
    pub stall_per_mille: u16,
    /// How long a stalled event sleeps.
    pub stall: Duration,
    /// Max *consecutive* injected transients before one is suppressed, so
    /// bounded retry always wins. Must be `< MAX_IO_ATTEMPTS`.
    pub max_transient_burst: u32,
    /// Inject exactly one permanent failure at this event index.
    pub permanent_at: Option<u64>,
    /// From this event index on, every operation fails permanently — the
    /// I/O shadow of a process killed mid-ingest.
    pub kill_after: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (until configured via the builders).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_per_mille: 0,
            short_read_per_mille: 0,
            stall_per_mille: 0,
            stall: Duration::from_micros(500),
            max_transient_burst: 2,
            permanent_at: None,
            kill_after: None,
        }
    }

    /// Set the transient-failure rate (per mille).
    pub fn transient(mut self, per_mille: u16) -> Self {
        self.transient_per_mille = per_mille;
        self
    }

    /// Set the short-read rate (per mille, reads only).
    pub fn short_reads(mut self, per_mille: u16) -> Self {
        self.short_read_per_mille = per_mille;
        self
    }

    /// Set the stall rate (per mille) and stall duration.
    pub fn stalls(mut self, per_mille: u16, stall: Duration) -> Self {
        self.stall_per_mille = per_mille;
        self.stall = stall;
        self
    }

    /// Cap consecutive injected transients (clamped below
    /// [`MAX_IO_ATTEMPTS`]).
    pub fn transient_burst(mut self, burst: u32) -> Self {
        self.max_transient_burst = burst.min(MAX_IO_ATTEMPTS - 1);
        self
    }

    /// Fail permanently at exactly this event index.
    pub fn permanent_at(mut self, event: u64) -> Self {
        self.permanent_at = Some(event);
        self
    }

    /// Fail every event at or past this index permanently (simulated
    /// kill).
    pub fn kill_after(mut self, event: u64) -> Self {
        self.kill_after = Some(event);
        self
    }
}

/// Snapshot of an [`Io`]'s counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct IoStats {
    /// I/O events that consulted the plan (or would have).
    pub events: u64,
    /// Transient attempts that were retried after backoff.
    pub retries: u64,
    /// Injected transient failures.
    pub injected_transient: u64,
    /// Injected permanent failures (including kill events).
    pub injected_permanent: u64,
    /// Injected short reads.
    pub injected_short_reads: u64,
    /// Injected stalls.
    pub injected_stalls: u64,
}

#[derive(Default)]
struct Counters {
    events: AtomicU64,
    retries: AtomicU64,
    injected_transient: AtomicU64,
    injected_permanent: AtomicU64,
    injected_short_reads: AtomicU64,
    injected_stalls: AtomicU64,
}

struct PlanState {
    plan: FaultPlan,
    rng: u64,
    burst: u32,
}

/// What the plan decided for one event.
enum Fault {
    None,
    Transient,
    Permanent(&'static str),
    /// Keep this many per-mille of the read's bytes.
    ShortRead(u64),
}

struct Inner {
    plan: Option<Mutex<PlanState>>,
    c: Counters,
    /// Jitter stream for backoff sleeps (separate from the plan stream so
    /// retries do not perturb fault decisions).
    jitter: AtomicU64,
}

/// An injectable I/O seam: every store filesystem touch runs through one
/// of these. Cloning is cheap and shares the plan and counters.
#[derive(Clone)]
pub struct Io {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Io {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Io")
            .field("faulted", &self.inner.plan.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for Io {
    fn default() -> Self {
        Io::real()
    }
}

/// True for error kinds worth retrying with backoff.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
    )
}

impl Io {
    /// An `Io` with no fault plan: operations run directly, genuine
    /// transient errors still retried.
    pub fn real() -> Self {
        Io {
            inner: Arc::new(Inner {
                plan: None,
                c: Counters::default(),
                jitter: AtomicU64::new(0x6a09_e667_f3bc_c909),
            }),
        }
    }

    /// An `Io` whose operations consult `plan` before executing.
    pub fn with_plan(plan: FaultPlan) -> Self {
        let rng = plan.seed ^ 0x5bf0_3635;
        Io {
            inner: Arc::new(Inner {
                plan: Some(Mutex::new(PlanState {
                    plan,
                    rng,
                    burst: 0,
                })),
                c: Counters::default(),
                jitter: AtomicU64::new(0x6a09_e667_f3bc_c909),
            }),
        }
    }

    /// True when a fault plan is attached.
    pub fn is_faulted(&self) -> bool {
        self.inner.plan.is_some()
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> IoStats {
        let c = &self.inner.c;
        IoStats {
            events: c.events.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            injected_transient: c.injected_transient.load(Ordering::Relaxed),
            injected_permanent: c.injected_permanent.load(Ordering::Relaxed),
            injected_short_reads: c.injected_short_reads.load(Ordering::Relaxed),
            injected_stalls: c.injected_stalls.load(Ordering::Relaxed),
        }
    }

    /// Total retries so far (convenience for delta accounting).
    pub fn retries(&self) -> u64 {
        self.inner.c.retries.load(Ordering::Relaxed)
    }

    /// Draw the plan's decision for one event.
    fn decide(&self, op: IoOp) -> Fault {
        self.inner.c.events.fetch_add(1, Ordering::Relaxed);
        let Some(plan) = &self.inner.plan else {
            return Fault::None;
        };
        let mut st = plan.lock().unwrap_or_else(|p| p.into_inner());
        // Event index: events counter was just incremented, so this event
        // is (events - 1). Read it back for the pinned-index checks.
        let idx = self.inner.c.events.load(Ordering::Relaxed) - 1;
        if st.plan.kill_after.is_some_and(|k| idx >= k) {
            self.inner
                .c
                .injected_permanent
                .fetch_add(1, Ordering::Relaxed);
            return Fault::Permanent("injected kill: store I/O aborted mid-ingest");
        }
        if st.plan.permanent_at == Some(idx) {
            self.inner
                .c
                .injected_permanent
                .fetch_add(1, Ordering::Relaxed);
            return Fault::Permanent("injected permanent fault");
        }
        // One combined draw, partitioned by cumulative per-mille bands.
        let r = (splitmix64(&mut st.rng) % 1000) as u16;
        let stall_band = st.plan.stall_per_mille;
        let transient_band = stall_band.saturating_add(st.plan.transient_per_mille);
        let short_band = transient_band.saturating_add(st.plan.short_read_per_mille);
        if r < stall_band {
            self.inner.c.injected_stalls.fetch_add(1, Ordering::Relaxed);
            let stall = st.plan.stall;
            drop(st);
            std::thread::sleep(stall);
            return Fault::None;
        }
        if r < transient_band {
            if st.burst < st.plan.max_transient_burst {
                st.burst += 1;
                self.inner
                    .c
                    .injected_transient
                    .fetch_add(1, Ordering::Relaxed);
                return Fault::Transient;
            }
            // Burst cap hit: let this one through so retry always wins.
            st.burst = 0;
            return Fault::None;
        }
        st.burst = 0;
        if op == IoOp::Read && r < short_band {
            self.inner
                .c
                .injected_short_reads
                .fetch_add(1, Ordering::Relaxed);
            // Keep 0..90% of the bytes, drawn from the same stream.
            let keep = splitmix64(&mut st.rng) % 900;
            return Fault::ShortRead(keep);
        }
        Fault::None
    }

    /// Sleep the bounded exponential backoff for retry `attempt` (0-based),
    /// with seeded jitter.
    fn backoff(&self, attempt: u32) {
        let base_us = (200u64 << attempt.min(4)).min(3200);
        let mut j = self.inner.jitter.load(Ordering::Relaxed);
        let jitter_us = splitmix64(&mut j) % 200;
        self.inner.jitter.store(j, Ordering::Relaxed);
        std::thread::sleep(Duration::from_micros(base_us + jitter_us));
    }

    /// Run `f` under the plan with bounded retry. `shorten` post-processes
    /// a successful result when the plan ordered a short read (identity
    /// for non-read operations).
    fn run<T>(
        &self,
        op: IoOp,
        mut f: impl FnMut() -> io::Result<T>,
        shorten: impl Fn(T, u64) -> T,
    ) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            let injected = match self.decide(op) {
                Fault::None => None,
                Fault::Transient => Some(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected transient fault ({})", op.name()),
                )),
                Fault::Permanent(msg) => {
                    return Err(io::Error::other(format!("{msg} ({})", op.name())))
                }
                Fault::ShortRead(keep) => {
                    return f().map(|v| shorten(v, keep));
                }
            };
            let err = match injected {
                Some(e) => e,
                None => match f() {
                    Ok(v) => return Ok(v),
                    Err(e) => e,
                },
            };
            if !is_transient(&err) || attempt + 1 >= MAX_IO_ATTEMPTS {
                return Err(err);
            }
            self.backoff(attempt);
            self.inner.c.retries.fetch_add(1, Ordering::Relaxed);
            attempt += 1;
        }
    }

    fn keep(v: Vec<u8>, per_mille: u64) -> Vec<u8> {
        let mut v = v;
        let keep = (v.len() as u64 * per_mille / 1000) as usize;
        v.truncate(keep);
        v
    }

    /// Whole-file read; short-read faults truncate the returned bytes.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.run(IoOp::Read, || fs::read(path), Self::keep)
    }

    /// Create (truncate) a file for writing.
    pub fn create(&self, path: &Path) -> io::Result<fs::File> {
        self.run(IoOp::Create, || fs::File::create(path), |f, _| f)
    }

    /// Write all bytes to an open file.
    pub fn write_all(&self, f: &mut fs::File, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.run(IoOp::Write, || f.write_all(bytes), |v, _| v)
    }

    /// fsync an open file.
    pub fn sync(&self, f: &fs::File) -> io::Result<()> {
        self.run(IoOp::Fsync, || f.sync_all(), |v, _| v)
    }

    /// Atomic rename.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.run(IoOp::Rename, || fs::rename(from, to), |v, _| v)
    }

    /// Open + fsync a directory (persisting a rename).
    pub fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.run(
            IoOp::SyncDir,
            || fs::File::open(dir).and_then(|d| d.sync_all()),
            |v, _| v,
        )
    }

    /// List a directory's file names (non-UTF-8 names skipped).
    pub fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.run(
            IoOp::List,
            || {
                let mut names = Vec::new();
                for entry in fs::read_dir(dir)? {
                    if let Ok(name) = entry?.file_name().into_string() {
                        names.push(name);
                    }
                }
                Ok(names)
            },
            |v, _| v,
        )
    }

    /// Remove a file.
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.run(IoOp::Remove, || fs::remove_file(path), |v, _| v)
    }

    /// Recursively create a directory.
    pub fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.run(IoOp::CreateDir, || fs::create_dir_all(dir), |v, _| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_io_roundtrips_and_counts_events() {
        let dir = std::env::temp_dir().join(format!("graphsig-faults-real-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let io = Io::real();
        io.create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        let mut f = io.create(&p).unwrap();
        io.write_all(&mut f, b"hello").unwrap();
        io.sync(&f).unwrap();
        drop(f);
        assert_eq!(io.read(&p).unwrap(), b"hello");
        let st = io.stats();
        assert!(st.events >= 5);
        assert_eq!(st.injected_transient, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn saturated_transients_are_recovered_by_bounded_backoff() {
        let dir = std::env::temp_dir().join(format!("graphsig-faults-tr-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        fs::write(&p, b"payload").unwrap();
        // 100% transient rate with burst 2: every op eats 2 injected
        // failures, then succeeds on the third attempt.
        let io = Io::with_plan(FaultPlan::new(7).transient(1000).transient_burst(2));
        assert_eq!(io.read(&p).unwrap(), b"payload");
        let st = io.stats();
        assert_eq!(st.injected_transient, 2);
        assert_eq!(st.retries, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_fault_fails_fast_with_bounded_attempts() {
        let dir = std::env::temp_dir().join(format!("graphsig-faults-pm-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        fs::write(&p, b"payload").unwrap();
        let io = Io::with_plan(FaultPlan::new(7).permanent_at(0));
        let e = io.read(&p).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::Other);
        let st = io.stats();
        assert_eq!(st.events, 1, "no retry storm on permanent faults");
        assert_eq!(st.retries, 0);
        // The plan only pinned event 0: the next read succeeds.
        assert_eq!(io.read(&p).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_read_truncates_deterministically() {
        let dir = std::env::temp_dir().join(format!("graphsig-faults-sr-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        fs::write(&p, vec![0xabu8; 1000]).unwrap();
        let a = Io::with_plan(FaultPlan::new(42).short_reads(1000));
        let b = Io::with_plan(FaultPlan::new(42).short_reads(1000));
        let ra = a.read(&p).unwrap();
        let rb = b.read(&p).unwrap();
        assert!(ra.len() < 1000, "short read must truncate");
        assert_eq!(ra, rb, "same seed, same truncation");
        assert_eq!(a.stats().injected_short_reads, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_after_fails_everything_from_that_event_on() {
        let dir = std::env::temp_dir().join(format!("graphsig-faults-kill-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        fs::write(&p, b"payload").unwrap();
        let io = Io::with_plan(FaultPlan::new(1).kill_after(2));
        assert!(io.read(&p).is_ok());
        assert!(io.read(&p).is_ok());
        assert!(io.read(&p).is_err());
        assert!(io.read(&p).is_err(), "killed Io stays dead");
        let _ = fs::remove_dir_all(&dir);
    }
}
