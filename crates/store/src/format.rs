//! Low-level binary encoding: little-endian scalar I/O over byte slices
//! and the CRC-64 checksum sealing every payload.
//!
//! The readers operate on a [`Cursor`] that tracks its position and the
//! file it came from so every failure becomes a precise
//! [`StoreError::Truncated`] — no slicing panics anywhere in the crate.

use std::path::Path;

use crate::error::StoreError;

/// CRC-64/XZ (ECMA-182 polynomial, reflected, init/xorout all-ones) —
/// the same parameters `xz` uses, strong enough to catch multi-bit rot
/// within a shard payload.
pub fn crc64(bytes: &[u8]) -> u64 {
    crc64_parts(&[bytes])
}

/// [`crc64`] over the concatenation of `parts` without materializing it —
/// used to seal a header prefix together with its payload.
pub fn crc64_parts(parts: &[&[u8]]) -> u64 {
    const TABLE: [u64; 256] = crc64_table();
    let mut crc = !0u64;
    for part in parts {
        for &b in *part {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u64) & 0xff) as usize];
        }
    }
    !crc
}

const fn crc64_table() -> [u64; 256] {
    // Reflected form of the ECMA-182 polynomial 0x42F0E1EBA9EA3693.
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Append a `u16` little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed (`u16`) byte string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "label name too long");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over a byte slice. Every read names the field
/// it was after, so truncation errors say exactly where the file ran out.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    /// Read from `bytes`, attributing errors to `path`.
    pub fn new(bytes: &'a [u8], path: &'a Path) -> Self {
        Cursor {
            bytes,
            pos: 0,
            path,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn truncated(&self, what: &'static str, needed: usize) -> StoreError {
        StoreError::Truncated {
            path: self.path.to_path_buf(),
            what,
            needed,
            available: self.remaining(),
        }
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(self.truncated(what, n));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, StoreError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, StoreError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `u16`-length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, StoreError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map_err(|_| StoreError::corrupt(self.path, format!("{what} is not valid UTF-8")))
    }

    /// Require that every byte has been consumed (trailing garbage is
    /// corruption, not padding).
    pub fn finish(&self, what: &'static str) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::corrupt(
                self.path,
                format!("{} trailing bytes after {what}", self.remaining()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_known_vectors() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
        assert_ne!(crc64(b"a"), crc64(b"b"));
    }

    #[test]
    fn crc64_catches_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc64(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc64(&flipped), clean, "missed flip at {byte}.{bit}");
            }
        }
    }

    #[test]
    fn cursor_reads_back_writes() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_1234);
        put_u64(&mut buf, 42);
        put_str(&mut buf, "carbon");
        let path = Path::new("x");
        let mut c = Cursor::new(&buf, path);
        assert_eq!(c.u16("a").unwrap(), 0xBEEF);
        assert_eq!(c.u32("b").unwrap(), 0xDEAD_1234);
        assert_eq!(c.u64("c").unwrap(), 42);
        assert_eq!(c.str("d").unwrap(), "carbon");
        assert!(c.finish("record").is_ok());
    }

    #[test]
    fn cursor_truncation_is_structured() {
        let path = Path::new("short.bin");
        let mut c = Cursor::new(&[1, 2, 3], path);
        let e = c.u32("graph count").unwrap_err();
        match e {
            StoreError::Truncated {
                what,
                needed,
                available,
                ..
            } => {
                assert_eq!(what, "graph count");
                assert_eq!(needed, 4);
                assert_eq!(available, 3);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn cursor_rejects_trailing_garbage() {
        let path = Path::new("x");
        let c = Cursor::new(&[0, 0], path);
        assert!(matches!(
            c.finish("header").unwrap_err(),
            StoreError::Corrupt { .. }
        ));
    }
}
