//! The shard file: a fixed-size run of graphs, independently verifiable.
//!
//! ```text
//! shard    := magic version graph_count gid_start payload_len crc payload
//! magic    := "GSIGSHRD"                      ; 8 bytes
//! version  := u32                             ; format version, currently 1
//! graph_count := u32                          ; graphs in the payload
//! gid_start   := u64                          ; database gid of the first graph
//! payload_len := u64                          ; bytes of payload that follow
//! crc      := u64                             ; CRC-64/XZ of the 32 header
//!                                             ; bytes before it + the payload
//! payload  := graph*
//! graph    := node_count:u32 edge_count:u32 node_label:u16* edge*
//! edge     := u:u32 v:u32 label:u16
//! ```
//!
//! All integers little-endian. Labels are numeric ids into the store
//! manifest's label table (shards never carry strings). The decoder is
//! total: truncation, impossible lengths, dangling endpoints, self-loops,
//! duplicate edges, and label ids past the declared table all come back as
//! structured [`StoreError`]s.

use std::path::Path;

use graphsig_graph::{Graph, GraphBuilder};

use crate::error::StoreError;
use crate::format::{crc64_parts, put_u16, put_u32, put_u64, Cursor};

/// The 8 magic bytes opening every shard file.
pub const SHARD_MAGIC: &[u8; 8] = b"GSIGSHRD";
/// Highest shard format version this build reads and the one it writes.
pub const SHARD_VERSION: u32 = 1;
/// Fixed header size: magic + version + graph_count + gid_start +
/// payload_len + payload_crc.
pub const SHARD_HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8;

/// Label-id ceilings from the manifest's table; decoding rejects ids at or
/// past them. Use [`LabelLimits::unchecked`] when no manifest is in play
/// (fuzzing, standalone inspection).
#[derive(Debug, Clone, Copy)]
pub struct LabelLimits {
    /// Number of node labels in the table (valid ids are `0..node`).
    pub node: u16,
    /// Number of edge labels in the table (valid ids are `0..edge`).
    pub edge: u16,
}

impl LabelLimits {
    /// Accept any label id (structure-only validation).
    pub fn unchecked() -> Self {
        LabelLimits {
            node: u16::MAX,
            edge: u16::MAX,
        }
    }
}

/// A decoded shard: header fields plus the validated graphs.
#[derive(Debug)]
pub struct DecodedShard {
    /// Database gid of the first graph in this shard.
    pub gid_start: u64,
    /// The graphs, shard-local order.
    pub graphs: Vec<Graph>,
}

/// Encode `graphs` as a complete shard file (header + payload).
pub fn encode_shard(graphs: &[Graph], gid_start: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    for g in graphs {
        put_u32(&mut payload, g.node_count() as u32);
        put_u32(&mut payload, g.edge_count() as u32);
        for &l in g.node_labels() {
            put_u16(&mut payload, l);
        }
        for e in g.edges() {
            put_u32(&mut payload, e.u);
            put_u32(&mut payload, e.v);
            put_u16(&mut payload, e.label);
        }
    }
    let mut out = Vec::with_capacity(SHARD_HEADER_LEN + payload.len());
    out.extend_from_slice(SHARD_MAGIC);
    put_u32(&mut out, SHARD_VERSION);
    put_u32(&mut out, graphs.len() as u32);
    put_u64(&mut out, gid_start);
    put_u64(&mut out, payload.len() as u64);
    // Seal the header fields together with the payload so a flip anywhere
    // in the file (a version downgrade, a moved gid range) is caught.
    let crc = crc64_parts(&[&out, &payload]);
    put_u64(&mut out, crc);
    out.extend_from_slice(&payload);
    out
}

/// Decode and fully validate one shard file. Total over arbitrary bytes.
pub fn decode_shard(
    bytes: &[u8],
    path: &Path,
    limits: LabelLimits,
) -> Result<DecodedShard, StoreError> {
    let mut c = Cursor::new(bytes, path);
    let magic = c.take(8, "magic")?;
    if magic != SHARD_MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
            found: magic.to_vec(),
        });
    }
    let version = c.u32("format version")?;
    if version > SHARD_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
            supported: SHARD_VERSION,
        });
    }
    let graph_count = c.u32("graph count")? as usize;
    let gid_start = c.u64("gid start")?;
    let payload_len = c.u64("payload length")?;
    let shard_crc = c.u64("checksum")?;
    if payload_len != c.remaining() as u64 {
        // Too short is a torn write; too long is an impossible length —
        // either way the declared payload does not match the file.
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            what: "payload",
            needed: payload_len as usize,
            available: c.remaining(),
        });
    }
    let payload = c.take(payload_len as usize, "payload")?;
    let actual = crc64_parts(&[&bytes[..SHARD_HEADER_LEN - 8], payload]);
    if actual != shard_crc {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected: shard_crc,
            actual,
        });
    }
    // Each graph record is at least 8 bytes; a count promising more is an
    // impossible length caught before any allocation.
    if graph_count > payload.len() / 8 + 1 {
        return Err(StoreError::corrupt(
            path,
            format!(
                "graph count {graph_count} cannot fit in {} payload bytes",
                payload.len()
            ),
        ));
    }
    let mut p = Cursor::new(payload, path);
    let mut graphs = Vec::with_capacity(graph_count);
    for gi in 0..graph_count {
        graphs.push(decode_graph(&mut p, path, limits, gi)?);
    }
    p.finish("graphs")?;
    Ok(DecodedShard { gid_start, graphs })
}

fn decode_graph(
    p: &mut Cursor<'_>,
    path: &Path,
    limits: LabelLimits,
    gi: usize,
) -> Result<Graph, StoreError> {
    let node_count = p.u32("node count")? as usize;
    let edge_count = p.u32("edge count")? as usize;
    // Reject impossible lengths before allocating or reading.
    if node_count * 2 > p.remaining() {
        return Err(StoreError::corrupt(
            path,
            format!(
                "graph {gi}: node count {node_count} cannot fit in {} remaining bytes",
                p.remaining()
            ),
        ));
    }
    if edge_count * 10 > p.remaining().saturating_sub(node_count * 2) {
        return Err(StoreError::corrupt(
            path,
            format!(
                "graph {gi}: edge count {edge_count} cannot fit in {} remaining bytes",
                p.remaining()
            ),
        ));
    }
    let mut b = GraphBuilder::with_capacity(node_count, edge_count);
    for n in 0..node_count {
        let l = p.u16("node label")?;
        if l >= limits.node {
            return Err(StoreError::corrupt(
                path,
                format!(
                    "graph {gi} node {n}: label {l} past table of {}",
                    limits.node
                ),
            ));
        }
        b.add_node(l);
    }
    let mut seen = std::collections::HashSet::with_capacity(edge_count);
    for ei in 0..edge_count {
        let u = p.u32("edge endpoint")?;
        let v = p.u32("edge endpoint")?;
        let l = p.u16("edge label")?;
        if (u as usize) >= node_count || (v as usize) >= node_count {
            return Err(StoreError::corrupt(
                path,
                format!("graph {gi} edge {ei}: endpoint out of range ({u}, {v})"),
            ));
        }
        if u == v {
            return Err(StoreError::corrupt(
                path,
                format!("graph {gi} edge {ei}: self-loop on node {u}"),
            ));
        }
        if !seen.insert((u.min(v), u.max(v))) {
            return Err(StoreError::corrupt(
                path,
                format!("graph {gi} edge {ei}: duplicate edge ({u}, {v})"),
            ));
        }
        if l >= limits.edge {
            return Err(StoreError::corrupt(
                path,
                format!(
                    "graph {gi} edge {ei}: label {l} past table of {}",
                    limits.edge
                ),
            ));
        }
        b.add_edge(u, v, l);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_graph::parse_transactions;

    fn sample_graphs() -> Vec<Graph> {
        parse_transactions(
            "t # 0\nv 0 C\nv 1 O\ne 0 1 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 N\ne 0 1 s\ne 1 2 d\n",
        )
        .unwrap()
        .graphs()
        .to_vec()
    }

    #[test]
    fn roundtrip() {
        let graphs = sample_graphs();
        let bytes = encode_shard(&graphs, 7);
        let d = decode_shard(&bytes, Path::new("s"), LabelLimits { node: 3, edge: 2 }).unwrap();
        assert_eq!(d.gid_start, 7);
        assert_eq!(d.graphs, graphs);
    }

    #[test]
    fn empty_shard_roundtrips() {
        let bytes = encode_shard(&[], 0);
        assert_eq!(bytes.len(), SHARD_HEADER_LEN);
        let d = decode_shard(&bytes, Path::new("s"), LabelLimits::unchecked()).unwrap();
        assert!(d.graphs.is_empty());
    }

    #[test]
    fn truncation_at_every_length_is_structured() {
        let bytes = encode_shard(&sample_graphs(), 0);
        for len in 0..bytes.len() {
            let e = decode_shard(&bytes[..len], Path::new("s"), LabelLimits::unchecked())
                .expect_err("truncated shard must not decode");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let bytes = encode_shard(&sample_graphs(), 3);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                // The checksum covers header and payload alike, so every
                // flip — including version downgrades and gid moves — is
                // one structured error.
                let e = decode_shard(&bad, Path::new("s"), LabelLimits::unchecked())
                    .expect_err(&format!("undetected flip at {byte}.{bit}"));
                assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn label_limits_are_enforced() {
        let bytes = encode_shard(&sample_graphs(), 0);
        let e = decode_shard(&bytes, Path::new("s"), LabelLimits { node: 1, edge: 2 }).unwrap_err();
        assert!(matches!(e, StoreError::Corrupt { .. }), "{e}");
        assert!(e.to_string().contains("past table"), "{e}");
    }

    #[test]
    fn bad_magic_and_future_version() {
        let mut bytes = encode_shard(&[], 0);
        bytes[0] = b'X';
        assert!(matches!(
            decode_shard(&bytes, Path::new("s"), LabelLimits::unchecked()).unwrap_err(),
            StoreError::BadMagic { .. }
        ));
        let mut bytes = encode_shard(&[], 0);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_shard(&bytes, Path::new("s"), LabelLimits::unchecked()).unwrap_err(),
            StoreError::UnsupportedVersion { version: 99, .. }
        ));
    }
}
