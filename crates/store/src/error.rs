//! Structured store errors.
//!
//! The readers in this crate are *total*: any byte sequence fed to a shard
//! or manifest decoder, and any on-disk state found by the openers, resolves
//! to exactly one [`StoreError`] or a valid value — never a panic. Every
//! variant names the file it arose from where one exists, so a failed
//! `graphsig verify` can point at the damaged shard.

use std::fmt;
use std::path::PathBuf;

/// Why a store (or one of its files) could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure (open/read/write/rename/fsync).
    Io {
        /// File or directory involved.
        path: PathBuf,
        /// What was being attempted.
        action: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// Offending file.
        path: PathBuf,
        /// First bytes actually found (up to 8).
        found: Vec<u8>,
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Offending file.
        path: PathBuf,
        /// Version stamped in the file.
        version: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The file ends before a fixed-size field or the declared payload.
    Truncated {
        /// Offending file.
        path: PathBuf,
        /// Which field or region was cut short.
        what: &'static str,
        /// Bytes needed to finish reading it.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload checksum does not match the header (bit rot, torn
    /// write, or tampering).
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
        /// Checksum the header (or manifest) promised.
        expected: u64,
        /// Checksum of the bytes actually on disk.
        actual: u64,
    },
    /// The payload decoded but describes an impossible value: an
    /// out-of-range edge endpoint, a self-loop, a duplicate edge, a length
    /// that cannot fit the remaining bytes, a label id past the table.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// Human-readable description of the impossibility.
        detail: String,
    },
    /// A shard's metadata disagrees with the manifest that lists it
    /// (graph count, gid range, length, or checksum).
    ManifestMismatch {
        /// Offending shard file.
        path: PathBuf,
        /// Which field disagrees and how.
        detail: String,
    },
    /// The manifest lists shards whose gid ranges are not contiguous
    /// ascending coverage (duplicate or overlapping ranges).
    GidRangeConflict {
        /// Manifest file.
        path: PathBuf,
        /// Which ranges collide.
        detail: String,
    },
    /// The directory has no manifest — not a store (or never committed).
    NoManifest {
        /// Directory that was opened.
        dir: PathBuf,
    },
}

impl StoreError {
    /// The file (or directory) the error is about, if any.
    pub fn path(&self) -> &std::path::Path {
        match self {
            StoreError::Io { path, .. }
            | StoreError::BadMagic { path, .. }
            | StoreError::UnsupportedVersion { path, .. }
            | StoreError::Truncated { path, .. }
            | StoreError::ChecksumMismatch { path, .. }
            | StoreError::Corrupt { path, .. }
            | StoreError::ManifestMismatch { path, .. }
            | StoreError::GidRangeConflict { path, .. } => path,
            StoreError::NoManifest { dir } => dir,
        }
    }

    pub(crate) fn io(
        path: impl Into<PathBuf>,
        action: &'static str,
        source: std::io::Error,
    ) -> Self {
        StoreError::Io {
            path: path.into(),
            action,
            source,
        }
    }

    pub(crate) fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                path,
                action,
                source,
            } => write!(f, "{}: cannot {action}: {source}", path.display()),
            StoreError::BadMagic { path, found } => {
                write!(f, "{}: bad magic {found:02x?}", path.display())
            }
            StoreError::UnsupportedVersion {
                path,
                version,
                supported,
            } => write!(
                f,
                "{}: format version {version} is newer than supported {supported}",
                path.display()
            ),
            StoreError::Truncated {
                path,
                what,
                needed,
                available,
            } => write!(
                f,
                "{}: truncated at {what} (need {needed} bytes, have {available})",
                path.display()
            ),
            StoreError::ChecksumMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{}: checksum mismatch (expected {expected:016x}, got {actual:016x})",
                path.display()
            ),
            StoreError::Corrupt { path, detail } => {
                write!(f, "{}: corrupt payload: {detail}", path.display())
            }
            StoreError::ManifestMismatch { path, detail } => {
                write!(f, "{}: disagrees with manifest: {detail}", path.display())
            }
            StoreError::GidRangeConflict { path, detail } => {
                write!(f, "{}: gid range conflict: {detail}", path.display())
            }
            StoreError::NoManifest { dir } => {
                write!(f, "{}: no manifest (not a graphsig store)", dir.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
