//! Store-level operations: durable ingestion and total, recovering opens.
//!
//! A store is a directory of `shard-NNNNN.gss` files plus `MANIFEST.gsm`.
//! Ingestion writes every file to a `.tmp` sibling, fsyncs it, atomically
//! renames it into place, and only then replaces the manifest the same way
//! (shards first, manifest last). A crash at any point leaves the previous
//! manifest intact: half-written temps are swept on the next open, and
//! shards that were renamed into place but never committed show up as
//! orphans, reported and harmlessly renamed-over by the next ingest.
//!
//! Opening comes in two strengths. [`open_strict`] fails on the first
//! damaged shard. [`open_lenient`] quarantines damaged shards — renames
//! them aside with a `.quarantined` suffix, records the reason in the
//! [`StoreReport`] — and returns the surviving graphs so a server can keep
//! answering queries in an explicitly degraded state. [`verify`] is the
//! read-only version of the same sweep: it touches nothing and reports the
//! status of every shard.

use std::fs;
use std::path::Path;

use graphsig_graph::GraphDb;

use crate::error::StoreError;
use crate::faults::Io;
use crate::manifest::{Manifest, ShardMeta, MANIFEST_NAME};
use crate::shard::{decode_shard, encode_shard, SHARD_HEADER_LEN};

/// Suffix for in-flight files; anything wearing it on open is a torn write.
pub const TMP_SUFFIX: &str = ".tmp";
/// Suffix quarantined shards are renamed to by [`open_lenient`].
pub const QUARANTINE_SUFFIX: &str = ".quarantined";
/// Extension of shard files.
pub const SHARD_EXT: &str = "gss";
/// Default graphs per shard for pack/append.
pub const DEFAULT_SHARD_SIZE: usize = 1024;

/// What an open or ingest found beyond the happy path.
#[derive(Debug, Default)]
pub struct StoreReport {
    /// Shards that failed validation and were moved aside (lenient open
    /// only; strict open fails instead).
    pub quarantined: Vec<QuarantinedShard>,
    /// `.tmp` leftovers from torn writes, deleted on open.
    pub temps_swept: Vec<String>,
    /// `.gss` files present but not referenced by the manifest — the
    /// footprint of a crash between shard rename and manifest commit.
    pub orphans: Vec<String>,
    /// Transient I/O failures recovered by backoff during this open.
    pub retries: u64,
}

impl StoreReport {
    /// True when nothing abnormal was found.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.temps_swept.is_empty() && self.orphans.is_empty()
    }
}

/// One shard moved aside by a lenient open, with why.
#[derive(Debug)]
pub struct QuarantinedShard {
    /// Shard file name as the manifest listed it.
    pub name: String,
    /// The validation failure.
    pub error: StoreError,
}

/// A shard surviving in an opened store, with its slice of the loaded db.
#[derive(Debug, Clone)]
pub struct LoadedShard {
    /// Shard file name.
    pub name: String,
    /// First graph index *within the returned db* (after quarantine these
    /// are renumbered contiguously; the manifest keeps the durable gids).
    pub db_start: usize,
    /// Graphs contributed by this shard.
    pub graph_count: usize,
    /// On-disk size in bytes.
    pub file_len: u64,
}

/// A store loaded into memory: the graphs, how they map back to shards,
/// and everything abnormal the open encountered.
#[derive(Debug)]
pub struct OpenedStore {
    /// Surviving graphs in shard order, labels from the manifest's global
    /// table.
    pub db: GraphDb,
    /// The committed manifest (including shards that were quarantined).
    pub manifest: Manifest,
    /// Surviving shards in order, with their db index ranges.
    pub shards: Vec<LoadedShard>,
    /// Temps swept, orphans seen, shards quarantined.
    pub report: StoreReport,
}

impl OpenedStore {
    /// True when at least one manifest shard did not survive the open.
    pub fn degraded(&self) -> bool {
        !self.report.quarantined.is_empty()
    }

    /// Bytes on disk across the manifest and surviving shards.
    pub fn disk_bytes(&self) -> u64 {
        let manifest_len = self.manifest.encode().len() as u64;
        manifest_len + self.shards.iter().map(|s| s.file_len).sum::<u64>()
    }
}

/// Summary of a committed pack or append.
#[derive(Debug)]
pub struct PackSummary {
    /// Store version the commit produced.
    pub store_version: u64,
    /// Shards written by this call (not the store total).
    pub shards_written: usize,
    /// Graphs in the store after the commit.
    pub total_graphs: u64,
    /// Bytes written by this call (shards + manifest).
    pub bytes_written: u64,
    /// Transient I/O failures recovered by backoff during this call.
    pub retries: u64,
}

/// Per-shard outcome of a read-only [`verify`].
#[derive(Debug)]
pub struct ShardStatus {
    /// Shard file name.
    pub name: String,
    /// Graph count the manifest promises.
    pub graph_count: u32,
    /// `None` when the shard checks out; the failure otherwise.
    pub error: Option<StoreError>,
}

/// Result of a read-only [`verify`] sweep.
#[derive(Debug)]
pub struct VerifyReport {
    /// Store version from the manifest.
    pub store_version: u64,
    /// Every manifest shard with its status, in gid order.
    pub shards: Vec<ShardStatus>,
    /// Unreferenced `.gss` files (left untouched).
    pub orphans: Vec<String>,
    /// `.tmp` leftovers (left untouched — verify is read-only).
    pub temps: Vec<String>,
    /// Bytes on disk across manifest and referenced shards that exist.
    pub disk_bytes: u64,
}

impl VerifyReport {
    /// True when every shard validated.
    pub fn is_clean(&self) -> bool {
        self.shards.iter().all(|s| s.error.is_none())
    }

    /// The failures, in shard order.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &StoreError)> {
        self.shards
            .iter()
            .filter_map(|s| s.error.as_ref().map(|e| (s.name.as_str(), e)))
    }
}

fn shard_name(index: usize) -> String {
    format!("shard-{index:05}.{SHARD_EXT}")
}

fn read_file(io: &Io, path: &Path) -> Result<Vec<u8>, StoreError> {
    io.read(path).map_err(|e| StoreError::io(path, "read", e))
}

/// Write `bytes` durably at `dir/name`: temp sibling, fsync, atomic rename,
/// directory fsync. Readers never observe a partial file under the final
/// name. Every step runs through the `Io` seam, so a fault plan can fail
/// any of create/write/fsync/rename/dir-fsync individually.
fn write_atomic(io: &Io, dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!("{name}{TMP_SUFFIX}"));
    let mut f = io
        .create(&tmp_path)
        .map_err(|e| StoreError::io(&tmp_path, "create", e))?;
    io.write_all(&mut f, bytes)
        .map_err(|e| StoreError::io(&tmp_path, "write", e))?;
    io.sync(&f)
        .map_err(|e| StoreError::io(&tmp_path, "fsync", e))?;
    drop(f);
    io.rename(&tmp_path, &final_path)
        .map_err(|e| StoreError::io(&final_path, "rename into", e))?;
    // Persist the rename itself. Directory fsync is a unix-ism; treat a
    // failure to open the dir handle as fatal but a failed sync as fatal
    // too — durability is the whole point of this path.
    io.sync_dir(dir)
        .map_err(|e| StoreError::io(dir, "fsync directory", e))?;
    Ok(())
}

/// Read just the committed manifest (no shard I/O).
pub fn read_manifest(dir: &Path) -> Result<Manifest, StoreError> {
    read_manifest_with(dir, &Io::real())
}

/// [`read_manifest`] through an explicit I/O seam.
pub fn read_manifest_with(dir: &Path, io: &Io) -> Result<Manifest, StoreError> {
    let path = dir.join(MANIFEST_NAME);
    let bytes = match io.read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::NoManifest {
                dir: dir.to_path_buf(),
            })
        }
        Err(e) => return Err(StoreError::io(&path, "read", e)),
    };
    Manifest::decode(&bytes, &path)
}

/// Scan the directory for temps and unreferenced shard files.
fn scan_dir(
    io: &Io,
    dir: &Path,
    manifest: &Manifest,
) -> Result<(Vec<String>, Vec<String>), StoreError> {
    let referenced: std::collections::HashSet<&str> =
        manifest.shards.iter().map(|s| s.name.as_str()).collect();
    let mut temps = Vec::new();
    let mut orphans = Vec::new();
    let names = io.list(dir).map_err(|e| StoreError::io(dir, "list", e))?;
    for name in names {
        if name.ends_with(TMP_SUFFIX) {
            temps.push(name);
        } else if name.ends_with(&format!(".{SHARD_EXT}")) && !referenced.contains(name.as_str()) {
            orphans.push(name);
        }
    }
    temps.sort();
    orphans.sort();
    Ok((temps, orphans))
}

/// Validate one shard's bytes against its manifest entry and decode it.
fn check_shard(
    io: &Io,
    dir: &Path,
    manifest: &Manifest,
    meta: &ShardMeta,
) -> Result<Vec<graphsig_graph::Graph>, StoreError> {
    let path = dir.join(&meta.name);
    let bytes = read_file(io, &path)?;
    if bytes.len() as u64 != meta.file_len {
        return Err(StoreError::ManifestMismatch {
            path,
            detail: format!(
                "file is {} bytes, manifest says {}",
                bytes.len(),
                meta.file_len
            ),
        });
    }
    // Cross-check the header's payload checksum against the manifest copy
    // before decoding: this catches a *valid* shard file swapped in from
    // elsewhere, which internal validation alone cannot.
    if bytes.len() >= SHARD_HEADER_LEN {
        let crc = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        if crc != meta.shard_crc {
            return Err(StoreError::ManifestMismatch {
                path,
                detail: format!(
                    "payload checksum {:016x} does not match manifest {:016x}",
                    crc, meta.shard_crc
                ),
            });
        }
    }
    let decoded = decode_shard(&bytes, &path, manifest.label_limits())?;
    if decoded.gid_start != meta.gid_start {
        return Err(StoreError::ManifestMismatch {
            path,
            detail: format!(
                "gid start {} does not match manifest {}",
                decoded.gid_start, meta.gid_start
            ),
        });
    }
    if decoded.graphs.len() != meta.graph_count as usize {
        return Err(StoreError::ManifestMismatch {
            path,
            detail: format!(
                "{} graphs on disk, manifest says {}",
                decoded.graphs.len(),
                meta.graph_count
            ),
        });
    }
    Ok(decoded.graphs)
}

fn sweep_temps(io: &Io, dir: &Path, temps: &[String]) {
    for name in temps {
        // Best effort: a temp that cannot be removed is re-reported next
        // open rather than failing this one.
        let _ = io.remove_file(&dir.join(name));
    }
}

fn open_inner(io: &Io, dir: &Path, lenient: bool) -> Result<OpenedStore, StoreError> {
    let retries_before = io.retries();
    let manifest = read_manifest_with(dir, io)?;
    let (temps, orphans) = scan_dir(io, dir, &manifest)?;
    sweep_temps(io, dir, &temps);
    let mut report = StoreReport {
        quarantined: Vec::new(),
        temps_swept: temps,
        orphans,
        retries: 0,
    };
    let mut db = GraphDb::from_parts(Vec::new(), manifest.label_table());
    let mut shards = Vec::new();
    for meta in &manifest.shards {
        match check_shard(io, dir, &manifest, meta) {
            Ok(graphs) => {
                let db_start = db.len();
                for g in graphs {
                    db.push(g);
                }
                shards.push(LoadedShard {
                    name: meta.name.clone(),
                    db_start,
                    graph_count: meta.graph_count as usize,
                    file_len: meta.file_len,
                });
            }
            Err(error) if lenient => {
                // Move the damaged file aside so the next ingest cannot
                // trip over it; keep serving the survivors.
                let from = dir.join(&meta.name);
                let to = dir.join(format!("{}{QUARANTINE_SUFFIX}", meta.name));
                if from.exists() {
                    let _ = io.rename(&from, &to);
                }
                report.quarantined.push(QuarantinedShard {
                    name: meta.name.clone(),
                    error,
                });
            }
            Err(error) => return Err(error),
        }
    }
    report.retries = io.retries().saturating_sub(retries_before);
    Ok(OpenedStore {
        db,
        manifest,
        shards,
        report,
    })
}

/// Open a store, failing on the first damaged shard.
pub fn open_strict(dir: &Path) -> Result<OpenedStore, StoreError> {
    open_inner(&Io::real(), dir, false)
}

/// [`open_strict`] through an explicit I/O seam.
pub fn open_strict_with(dir: &Path, io: &Io) -> Result<OpenedStore, StoreError> {
    open_inner(io, dir, false)
}

/// Open a store, quarantining damaged shards and serving the rest. Only
/// manifest-level damage (or I/O on the directory itself) is fatal.
pub fn open_lenient(dir: &Path) -> Result<OpenedStore, StoreError> {
    open_inner(&Io::real(), dir, true)
}

/// [`open_lenient`] through an explicit I/O seam.
pub fn open_lenient_with(dir: &Path, io: &Io) -> Result<OpenedStore, StoreError> {
    open_inner(io, dir, true)
}

/// Read-only integrity sweep: every shard checked against the manifest,
/// nothing modified. Fails only if the manifest itself is unreadable.
pub fn verify(dir: &Path) -> Result<VerifyReport, StoreError> {
    verify_with(dir, &Io::real())
}

/// [`verify`] through an explicit I/O seam.
pub fn verify_with(dir: &Path, io: &Io) -> Result<VerifyReport, StoreError> {
    let manifest = read_manifest_with(dir, io)?;
    let (temps, orphans) = scan_dir(io, dir, &manifest)?;
    let manifest_len = fs::metadata(dir.join(MANIFEST_NAME))
        .map(|m| m.len())
        .unwrap_or(0);
    let mut disk_bytes = manifest_len;
    let mut shards = Vec::with_capacity(manifest.shards.len());
    for meta in &manifest.shards {
        if let Ok(m) = fs::metadata(dir.join(&meta.name)) {
            disk_bytes += m.len();
        }
        shards.push(ShardStatus {
            name: meta.name.clone(),
            graph_count: meta.graph_count,
            error: check_shard(io, dir, &manifest, meta).err(),
        });
    }
    Ok(VerifyReport {
        store_version: manifest.store_version,
        shards,
        orphans,
        temps,
        disk_bytes,
    })
}

fn label_names(db: &GraphDb) -> (Vec<String>, Vec<String>) {
    let t = db.labels();
    let nodes = t.node_labels().map(|(_, name)| name.to_string()).collect();
    let edges = t.edge_labels().map(|(_, name)| name.to_string()).collect();
    (nodes, edges)
}

/// Require that `base`'s label table is a prefix of `db`'s — the invariant
/// that lets appended shards keep using the store's numeric label ids.
fn check_label_prefix(dir: &Path, base: &Manifest, db: &GraphDb) -> Result<(), StoreError> {
    let (nodes, edges) = label_names(db);
    let prefix_ok =
        |old: &[String], new: &[String]| new.len() >= old.len() && new[..old.len()] == *old;
    if !prefix_ok(&base.node_labels, &nodes) || !prefix_ok(&base.edge_labels, &edges) {
        return Err(StoreError::ManifestMismatch {
            path: dir.join(MANIFEST_NAME),
            detail: "append database's label table does not extend the store's".to_string(),
        });
    }
    Ok(())
}

fn write_shards(
    io: &Io,
    dir: &Path,
    db: &GraphDb,
    from: usize,
    gid_base: u64,
    shard_index_base: usize,
    shard_size: usize,
) -> Result<(Vec<ShardMeta>, u64), StoreError> {
    let shard_size = shard_size.max(1);
    let mut metas = Vec::new();
    let mut bytes_written = 0u64;
    let graphs = &db.graphs()[from..];
    for (i, chunk) in graphs.chunks(shard_size).enumerate() {
        let gid_start = gid_base + (i * shard_size) as u64;
        let bytes = encode_shard(chunk, gid_start);
        let shard_crc = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        let name = shard_name(shard_index_base + i);
        write_atomic(io, dir, &name, &bytes)?;
        bytes_written += bytes.len() as u64;
        metas.push(ShardMeta {
            name,
            gid_start,
            graph_count: chunk.len() as u32,
            file_len: bytes.len() as u64,
            shard_crc,
        });
    }
    Ok((metas, bytes_written))
}

/// Pack `db` into `dir` as a fresh store, replacing whatever was there.
/// Shards land first (temp + fsync + rename each), the manifest last, so a
/// crash anywhere leaves the previous committed state readable. Old shard
/// files no longer referenced are removed after the commit.
pub fn pack(dir: &Path, db: &GraphDb, shard_size: usize) -> Result<PackSummary, StoreError> {
    pack_with(dir, db, shard_size, &Io::real())
}

/// [`pack`] through an explicit I/O seam.
pub fn pack_with(
    dir: &Path,
    db: &GraphDb,
    shard_size: usize,
    io: &Io,
) -> Result<PackSummary, StoreError> {
    let retries_before = io.retries();
    io.create_dir_all(dir)
        .map_err(|e| StoreError::io(dir, "create", e))?;
    let old = match read_manifest_with(dir, io) {
        Ok(m) => Some(m),
        Err(StoreError::NoManifest { .. }) => None,
        // A torn or corrupt manifest should not block re-packing the
        // directory: start the version counter over.
        Err(_) => None,
    };
    let store_version = old.as_ref().map_or(1, |m| m.store_version + 1);
    let (shards, mut bytes_written) = write_shards(io, dir, db, 0, 0, 0, shard_size)?;
    let (node_labels, edge_labels) = label_names(db);
    let manifest = Manifest {
        store_version,
        node_labels,
        edge_labels,
        shards,
    };
    let encoded = manifest.encode();
    write_atomic(io, dir, MANIFEST_NAME, &encoded)?;
    bytes_written += encoded.len() as u64;
    if let Some(old) = old {
        let keep: std::collections::HashSet<&str> =
            manifest.shards.iter().map(|s| s.name.as_str()).collect();
        for s in &old.shards {
            if !keep.contains(s.name.as_str()) {
                let _ = io.remove_file(&dir.join(&s.name));
            }
        }
    }
    Ok(PackSummary {
        store_version,
        shards_written: manifest.shards.len(),
        total_graphs: manifest.total_graphs(),
        bytes_written,
        retries: io.retries().saturating_sub(retries_before),
    })
}

/// Append the graphs of `db` from index `from` onward to an existing
/// store. `db` must contain the store's graphs count at `from`
/// (`from == manifest.total_graphs()`) and its label table must extend the
/// store's. New shards are written durably, then the manifest is replaced
/// with `store_version + 1`; existing shards are untouched, so readers of
/// the old manifest stay consistent throughout.
pub fn append(
    dir: &Path,
    db: &GraphDb,
    from: usize,
    shard_size: usize,
) -> Result<PackSummary, StoreError> {
    append_with(dir, db, from, shard_size, &Io::real())
}

/// [`append`] through an explicit I/O seam.
pub fn append_with(
    dir: &Path,
    db: &GraphDb,
    from: usize,
    shard_size: usize,
    io: &Io,
) -> Result<PackSummary, StoreError> {
    let retries_before = io.retries();
    let base = read_manifest_with(dir, io)?;
    if from as u64 != base.total_graphs() {
        return Err(StoreError::ManifestMismatch {
            path: dir.join(MANIFEST_NAME),
            detail: format!(
                "append starts at graph {from} but the store holds {}",
                base.total_graphs()
            ),
        });
    }
    if from > db.len() {
        return Err(StoreError::ManifestMismatch {
            path: dir.join(MANIFEST_NAME),
            detail: format!(
                "append starts at graph {from} but the database holds {}",
                db.len()
            ),
        });
    }
    check_label_prefix(dir, &base, db)?;
    let (new_shards, mut bytes_written) = write_shards(
        io,
        dir,
        db,
        from,
        base.total_graphs(),
        base.shards.len(),
        shard_size,
    )?;
    let shards_written = new_shards.len();
    let (node_labels, edge_labels) = label_names(db);
    let mut shards = base.shards;
    shards.extend(new_shards);
    let manifest = Manifest {
        store_version: base.store_version + 1,
        node_labels,
        edge_labels,
        shards,
    };
    let encoded = manifest.encode();
    write_atomic(io, dir, MANIFEST_NAME, &encoded)?;
    bytes_written += encoded.len() as u64;
    Ok(PackSummary {
        store_version: manifest.store_version,
        shards_written,
        total_graphs: manifest.total_graphs(),
        bytes_written,
        retries: io.retries().saturating_sub(retries_before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_graph::{parse_transactions, write_transactions};
    use std::path::PathBuf;

    fn sample_db() -> GraphDb {
        parse_transactions(
            "t # 0\nv 0 C\nv 1 O\ne 0 1 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 N\ne 0 1 s\ne 1 2 d\n\
             t # 2\nv 0 O\nv 1 O\ne 0 1 d\n\
             t # 3\nv 0 N\n",
        )
        .unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("graphsig-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn pack_then_open_roundtrips_exactly() {
        let db = sample_db();
        let dir = tmpdir("roundtrip");
        let summary = pack(&dir, &db, 2).unwrap();
        assert_eq!(summary.store_version, 1);
        assert_eq!(summary.shards_written, 2);
        assert_eq!(summary.total_graphs, 4);
        let opened = open_strict(&dir).unwrap();
        assert!(opened.report.is_clean());
        assert!(!opened.degraded());
        assert_eq!(write_transactions(&opened.db), write_transactions(&db));
        assert_eq!(opened.shards.len(), 2);
        assert_eq!(opened.shards[1].db_start, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_is_clean_on_fresh_store_and_names_damaged_shard() {
        let db = sample_db();
        let dir = tmpdir("verify");
        pack(&dir, &db, 2).unwrap();
        let report = verify(&dir).unwrap();
        assert!(report.is_clean());
        assert!(report.disk_bytes > 0);
        // Flip one payload bit in the second shard.
        let victim = dir.join("shard-00001.gss");
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&victim, &bytes).unwrap();
        let report = verify(&dir).unwrap();
        assert!(!report.is_clean());
        let fails: Vec<_> = report.failures().collect();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].0, "shard-00001.gss");
        // verify is read-only: strict open still fails the same way after.
        assert!(open_strict(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lenient_open_quarantines_and_serves_survivors() {
        let db = sample_db();
        let dir = tmpdir("quarantine");
        pack(&dir, &db, 2).unwrap();
        let victim = dir.join("shard-00000.gss");
        let mut bytes = fs::read(&victim).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&victim, &bytes).unwrap();
        let opened = open_lenient(&dir).unwrap();
        assert!(opened.degraded());
        assert_eq!(opened.report.quarantined.len(), 1);
        assert_eq!(opened.report.quarantined[0].name, "shard-00000.gss");
        // Survivors are graphs 2..4, renumbered from 0.
        assert_eq!(opened.db.len(), 2);
        assert_eq!(opened.shards.len(), 1);
        assert_eq!(opened.shards[0].db_start, 0);
        // The damaged file was moved aside.
        assert!(!victim.exists());
        assert!(dir.join("shard-00000.gss.quarantined").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_write_recovers_to_previous_commit() {
        let db = sample_db();
        let dir = tmpdir("torn-manifest");
        pack(&dir, &db, 2).unwrap();
        // Simulate a crash mid-manifest-replace: a half-written temp next
        // to the committed manifest.
        fs::write(dir.join("MANIFEST.gsm.tmp"), b"GSIGMANI\x01half").unwrap();
        let opened = open_strict(&dir).unwrap();
        assert_eq!(opened.manifest.store_version, 1);
        assert_eq!(opened.db.len(), 4);
        assert_eq!(opened.report.temps_swept, vec!["MANIFEST.gsm.tmp"]);
        assert!(!dir.join("MANIFEST.gsm.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_between_shard_rename_and_manifest_commit_reports_orphan() {
        let db = sample_db();
        let dir = tmpdir("orphan");
        pack(&dir, &db, 4).unwrap(); // one shard committed
                                     // Simulate: an append wrote and renamed shard-00001.gss, then died
                                     // before replacing the manifest.
        fs::write(dir.join("shard-00001.gss"), encode_shard(&[], 4)).unwrap();
        let opened = open_strict(&dir).unwrap();
        assert_eq!(opened.db.len(), 4, "orphan must not leak into the db");
        assert_eq!(opened.report.orphans, vec!["shard-00001.gss"]);
        // A retried append renames over the orphan and commits cleanly.
        let mut bigger = sample_db();
        bigger.absorb(&sample_db());
        let summary = append(&dir, &bigger, 4, 4).unwrap();
        assert_eq!(summary.store_version, 2);
        let opened = open_strict(&dir).unwrap();
        assert!(opened.report.is_clean());
        assert_eq!(opened.db.len(), 8);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_equals_one_shot_pack() {
        let part1 = sample_db();
        let mut full = sample_db();
        full.absorb(&sample_db());
        let dir_a = tmpdir("append-a");
        let dir_b = tmpdir("append-b");
        pack(&dir_a, &part1, 3).unwrap();
        append(&dir_a, &full, part1.len(), 3).unwrap();
        pack(&dir_b, &full, 3).unwrap();
        let a = open_strict(&dir_a).unwrap();
        let b = open_strict(&dir_b).unwrap();
        assert_eq!(write_transactions(&a.db), write_transactions(&b.db));
        assert_eq!(a.manifest.total_graphs(), 8);
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn append_rejects_wrong_base_count_and_foreign_labels() {
        let db = sample_db();
        let dir = tmpdir("append-bad");
        pack(&dir, &db, 2).unwrap();
        let e = append(&dir, &db, 2, 2).unwrap_err();
        assert!(matches!(e, StoreError::ManifestMismatch { .. }), "{e}");
        // A db whose labels were interned in a different order cannot append.
        let mut foreign = parse_transactions(
            "t # 0\nv 0 N\nv 1 C\ne 0 1 d\n\
             t # 1\nv 0 C\n",
        )
        .unwrap();
        for _ in foreign.len()..db.len() {
            foreign.push(graphsig_graph::GraphBuilder::new().build());
        }
        let e = append(&dir, &foreign, db.len(), 2).unwrap_err();
        assert!(e.to_string().contains("label table"), "{e}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repack_replaces_and_cleans_stale_shards() {
        let db = sample_db();
        let dir = tmpdir("repack");
        pack(&dir, &db, 1).unwrap(); // 4 shards
        assert!(dir.join("shard-00003.gss").exists());
        let summary = pack(&dir, &db, 4).unwrap(); // 1 shard
        assert_eq!(summary.store_version, 2);
        assert!(!dir.join("shard-00003.gss").exists(), "stale shard removed");
        let opened = open_strict(&dir).unwrap();
        assert!(opened.report.is_clean());
        assert_eq!(opened.db.len(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_structured() {
        let dir = tmpdir("no-manifest");
        assert!(matches!(
            open_strict(&dir).unwrap_err(),
            StoreError::NoManifest { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn saturated_transient_faults_still_pack_and_open_with_retries_reported() {
        use crate::faults::FaultPlan;
        let db = sample_db();
        let dir = tmpdir("faults-transient");
        // Every I/O event fails transiently twice before succeeding: the
        // pack and the open must both complete purely via backoff.
        let io = Io::with_plan(FaultPlan::new(99).transient(1000).transient_burst(2));
        let summary = pack_with(&dir, &db, 2, &io).unwrap();
        assert!(summary.retries > 0, "pack must report recovered retries");
        let opened = open_strict_with(&dir, &io).unwrap();
        assert!(opened.report.retries > 0, "open must report retries");
        assert_eq!(write_transactions(&opened.db), write_transactions(&db));
        // Unfaulted reopen sees an ordinary clean store.
        let clean = open_strict(&dir).unwrap();
        assert!(clean.report.is_clean());
        assert_eq!(clean.report.retries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_fault_during_pack_surfaces_structured_io_error() {
        use crate::faults::FaultPlan;
        let db = sample_db();
        let dir = tmpdir("faults-permanent");
        let io = Io::with_plan(FaultPlan::new(3).permanent_at(2));
        let e = pack_with(&dir, &db, 2, &io).unwrap_err();
        assert!(matches!(e, StoreError::Io { .. }), "{e}");
        assert!(e.to_string().contains("injected permanent fault"), "{e}");
        assert_eq!(io.stats().retries, 0, "permanent faults must not retry");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_mid_append_recovers_to_previous_commit() {
        use crate::faults::FaultPlan;
        let part1 = sample_db();
        let mut full = sample_db();
        full.absorb(&sample_db());
        let dir = tmpdir("faults-kill");
        pack(&dir, &part1, 2).unwrap();
        let before = read_manifest(&dir).unwrap();
        // Kill store I/O a few events into the append, at every possible
        // offset: whatever the offset, reopening with real I/O must land on
        // either the old commit or (if the manifest made it) the new one.
        for kill_at in 0..14 {
            let io = Io::with_plan(FaultPlan::new(5).kill_after(kill_at));
            let res = append_with(&dir, &full, part1.len(), 2, &io);
            let opened = open_lenient(&dir).unwrap();
            match res {
                // Append died: the committed state must still be v1 intact.
                Err(_) => {
                    assert_eq!(opened.manifest.store_version, before.store_version);
                    assert_eq!(
                        write_transactions(&opened.db),
                        write_transactions(&part1),
                        "kill at event {kill_at} corrupted the committed store"
                    );
                }
                // Append survived (kill landed after the commit, on cleanup).
                Ok(s) => {
                    assert_eq!(opened.manifest.store_version, s.store_version);
                    assert_eq!(write_transactions(&opened.db), write_transactions(&full));
                    // Reset for the next iteration.
                    let _ = fs::remove_dir_all(&dir);
                    fs::create_dir_all(&dir).unwrap();
                    pack(&dir, &part1, 2).unwrap();
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_read_faults_resolve_to_structured_errors_not_panics() {
        use crate::faults::FaultPlan;
        let db = sample_db();
        let dir = tmpdir("faults-short");
        pack(&dir, &db, 2).unwrap();
        // Hammer opens with frequent short reads: every outcome must be a
        // structured error or a valid (possibly degraded) open.
        for seed in 0..20u64 {
            let io = Io::with_plan(FaultPlan::new(seed).short_reads(600));
            match open_lenient_with(&dir, &io) {
                Ok(opened) => assert!(opened.db.len() <= db.len()),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
        // The store itself was never modified beyond quarantine renames;
        // restore any quarantined shards and verify cleanliness is checked
        // by other tests — here just ensure no temps were fabricated.
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn swapped_valid_shard_is_caught_by_manifest_crosscheck() {
        let db = sample_db();
        let dir = tmpdir("swap");
        pack(&dir, &db, 2).unwrap();
        // Replace shard 1 with a different but internally valid shard of
        // the same gid_start and graph count.
        let fake = encode_shard(&db.graphs()[0..2], 2);
        fs::write(dir.join("shard-00001.gss"), &fake).unwrap();
        let e = open_strict(&dir).unwrap_err();
        assert!(matches!(e, StoreError::ManifestMismatch { .. }), "{e}");
        let _ = fs::remove_dir_all(&dir);
    }
}
