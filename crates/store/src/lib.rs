//! Durable sharded on-disk store for GraphSig transaction databases.
//!
//! A store is a directory holding fixed-size binary shards
//! (`shard-NNNNN.gss`, each with a checksummed payload of graphs) and a
//! versioned manifest (`MANIFEST.gsm`) that carries the global label table
//! and lists every shard with its gid range, length, and checksum.
//!
//! The crate makes three promises:
//!
//! 1. **Crash-safe ingestion.** [`pack`] and [`append`] write every file to
//!    a temp sibling, fsync, and atomically rename — shards first, manifest
//!    last. A crash at any instant recovers to the last committed manifest;
//!    torn temps are swept and orphaned shards reported on the next open.
//! 2. **Total readers.** Arbitrary bytes fed to [`decode_shard`] or
//!    [`Manifest::decode`], and arbitrary directory states fed to the
//!    openers, produce exactly one structured [`StoreError`] or a valid
//!    value. No code path panics on untrusted input.
//! 3. **Degraded-mode serving.** [`open_lenient`] quarantines damaged
//!    shards (renamed aside, reasons recorded in [`StoreReport`]) and
//!    returns the surviving graphs, so a resident server keeps answering
//!    queries while an operator restores the rest.
//!
//! Because the manifest preserves the label table in interned-id order,
//! mining over an opened store is byte-identical to mining the original
//! text input. See DESIGN.md §5f for the full format grammar and protocol.

mod error;
pub mod faults;
mod format;
mod manifest;
mod shard;
mod store;

pub use error::StoreError;
pub use faults::{FaultPlan, Io, IoStats, MAX_IO_ATTEMPTS};
pub use format::crc64;
pub use manifest::{Manifest, ShardMeta, MANIFEST_MAGIC, MANIFEST_NAME, MANIFEST_VERSION};
pub use shard::{
    decode_shard, encode_shard, DecodedShard, LabelLimits, SHARD_HEADER_LEN, SHARD_MAGIC,
    SHARD_VERSION,
};
pub use store::{
    append, append_with, open_lenient, open_lenient_with, open_strict, open_strict_with, pack,
    pack_with, read_manifest, read_manifest_with, verify, verify_with, LoadedShard, OpenedStore,
    PackSummary, QuarantinedShard, ShardStatus, StoreReport, VerifyReport, DEFAULT_SHARD_SIZE,
    QUARANTINE_SUFFIX, SHARD_EXT, TMP_SUFFIX,
};
