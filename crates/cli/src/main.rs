//! `graphsig` — command-line significant-subgraph mining.
//!
//! ```text
//! graphsig mine <transactions.txt> [--max-pvalue 0.1] [--min-freq 0.001]
//!               [--radius 8] [--fsm-freq 0.8] [--threads N] [--top N]
//! graphsig stats <transactions.txt>
//! graphsig generate aids  <n> [--seed S]        # emit a synthetic dataset
//! graphsig generate screen <NAME> <scale>       # one of the Table V screens
//! graphsig pack <file> <dir> [--shard-size N] [--append]
//! graphsig verify <dir> [--lenient]
//! ```
//!
//! Input files use the classic gSpan transaction format
//! (`t # id` / `v id label` / `e u v label`). `mine` prints each
//! significant subgraph as a transaction block preceded by a comment line
//! with its statistics, so the output is itself parseable.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use graphsig_classify::{GraphSigClassifier, KnnConfig};
use graphsig_core::{Budget, GraphSig, GraphSigConfig};
use graphsig_graph::{parse_transactions, parse_transactions_into, write_transactions, GraphDb};
use graphsig_server::{Server, ServerConfig, TransportConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("mine") => cmd_mine(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("pack") => cmd_pack(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("graphsig: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "graphsig — mine statistically significant subgraphs (Ranu & Singh, ICDE 2009)\n\
         \n\
         USAGE:\n\
         \x20 graphsig mine <file> [--max-pvalue P] [--min-freq F] [--radius R]\n\
         \x20                      [--fsm-freq F] [--threads N] [--top N] [--backend fsg|gspan]\n\
         \x20                      [--matcher vf2|fast] [--timeout-ms MS] [--max-steps N]\n\
         \x20                      (--matcher picks the isomorphism engine; fast — compiled\n\
         \x20                       bitset targets — is the default, vf2 the reference)\n\
         \x20                      (--threads 0 = auto: one worker per core; the default)\n\
         \x20                      (--timeout-ms / --max-steps bound the run; a truncated\n\
         \x20                       run exits 0 and reports its completion on stderr)\n\
         \x20 graphsig stats <file>\n\
         \x20 graphsig classify <pos.txt> <neg.txt> <query.txt> [--k K] [--min-freq F]\n\
         \x20                      [--matcher vf2|fast] [--timeout-ms MS] [--max-steps N]\n\
         \x20 graphsig generate aids <n> [--seed S]\n\
         \x20 graphsig generate screen <NAME> <scale> (names: MCF-7 MOLT-4 NCI-H23 OVCAR-8\n\
         \x20                      P388 PC-3 SF-295 SN12C SW-620 UACC-257 Yeast)\n\
         \x20 graphsig serve [--tcp ADDR] [--workers N] [--queue N] [--default-timeout-ms MS]\n\
         \x20                      [--max-timeout-ms MS] [--max-steps-ceiling N]\n\
         \x20                      [--drain-ms MS] [--max-conns N] [--max-write-buf BYTES]\n\
         \x20                      [--auth-token TOKEN] [--max-resident-bytes BYTES]\n\
         \x20                      [--idle-timeout-ms MS] [--handshake-timeout-ms MS]\n\
         \x20                      [--log] [--allow-inject] [--smoke] [--chaos]\n\
         \x20                      (keeps datasets resident; line protocol on stdio, or TCP\n\
         \x20                       with --tcp — one event loop serves every connection, so\n\
         \x20                       identical concurrent mines coalesce into one run;\n\
         \x20                       --max-conns caps accepted connections, --max-write-buf\n\
         \x20                       bounds per-client response buffering before disconnect;\n\
         \x20                       --auth-token requires `auth token=...` first on TCP;\n\
         \x20                       --max-resident-bytes rejects loads past the memory\n\
         \x20                       ceiling with code=resource_exhausted after LRU-evicting\n\
         \x20                       cold caches; --idle/--handshake-timeout-ms reap silent\n\
         \x20                       connections while in-flight requests proceed; --log\n\
         \x20                       emits one line per completed request on stderr;\n\
         \x20                       --smoke runs the fault-injection self-test, --chaos the\n\
         \x20                       seeded chaos soak)\n\
         \x20 graphsig pack <file> <dir> [--shard-size N] [--append]\n\
         \x20                      (write a checksummed sharded binary store; --append adds\n\
         \x20                       the file's graphs to an existing store atomically)\n\
         \x20 graphsig verify <dir> [--lenient]\n\
         \x20                      (read-only integrity sweep; exits nonzero naming every\n\
         \x20                       damaged shard; --lenient instead quarantines damaged\n\
         \x20                       shards and reports what still serves)\n\
         \n\
         Files use the gSpan transaction format: t / v / e lines."
    );
}

/// Pull `--flag value` pairs out of an argument list; returns remaining
/// positional arguments.
fn take_flags(
    args: &[String],
    flags: &mut [(&str, &mut Option<String>)],
) -> Result<Vec<String>, String> {
    let mut positional = Vec::new();
    let mut i = 0;
    'outer: while i < args.len() {
        for (name, slot) in flags.iter_mut() {
            if args[i] == *name {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{name} needs a value"))?;
                **slot = Some(v.clone());
                i += 2;
                continue 'outer;
            }
        }
        if args[i].starts_with("--") {
            return Err(format!("unknown flag {}", args[i]));
        }
        positional.push(args[i].clone());
        i += 1;
    }
    Ok(positional)
}

fn parse_or<T: std::str::FromStr>(v: &Option<String>, default: T, what: &str) -> Result<T, String> {
    match v {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad value for {what}: {s}")),
    }
}

fn parse_opt<T: std::str::FromStr>(v: &Option<String>, what: &str) -> Result<Option<T>, String> {
    v.as_ref()
        .map(|s| s.parse().map_err(|_| format!("bad value for {what}: {s}")))
        .transpose()
}

/// Assemble the run [`Budget`] from `--timeout-ms` / `--max-steps`, if
/// either was given.
fn parse_budget(
    timeout_ms: &Option<String>,
    max_steps: &Option<String>,
) -> Result<Option<Budget>, String> {
    let timeout: Option<u64> = parse_opt(timeout_ms, "--timeout-ms")?;
    let steps: Option<u64> = parse_opt(max_steps, "--max-steps")?;
    if timeout.is_none() && steps.is_none() {
        return Ok(None);
    }
    let mut budget = Budget::unlimited();
    if let Some(ms) = timeout {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = steps {
        budget = budget.with_max_steps(n);
    }
    Ok(Some(budget))
}

fn load_db(path: &str) -> Result<GraphDb, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_transactions(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let (mut max_pvalue, mut min_freq, mut radius, mut fsm_freq) = (None, None, None, None);
    let (mut threads, mut top, mut backend, mut matcher) = (None, None, None, None);
    let (mut timeout_ms, mut max_steps) = (None, None);
    let positional = take_flags(
        args,
        &mut [
            ("--max-pvalue", &mut max_pvalue),
            ("--min-freq", &mut min_freq),
            ("--radius", &mut radius),
            ("--fsm-freq", &mut fsm_freq),
            ("--threads", &mut threads),
            ("--top", &mut top),
            ("--backend", &mut backend),
            ("--matcher", &mut matcher),
            ("--timeout-ms", &mut timeout_ms),
            ("--max-steps", &mut max_steps),
        ],
    )?;
    let [path] = positional.as_slice() else {
        return Err("mine needs exactly one input file".into());
    };
    // Validate every flag before touching the filesystem, so a bad flag
    // is reported as such even when the input file is also bad.
    let defaults = GraphSigConfig::default();
    let cfg = GraphSigConfig {
        max_pvalue: parse_or(&max_pvalue, defaults.max_pvalue, "--max-pvalue")?,
        min_freq: parse_or(&min_freq, defaults.min_freq, "--min-freq")?,
        radius: parse_or(&radius, defaults.radius, "--radius")?,
        fsm_freq: parse_or(&fsm_freq, defaults.fsm_freq, "--fsm-freq")?,
        // 0 = auto (one worker per available core), n = exactly n workers.
        threads: parse_or(&threads, defaults.threads, "--threads")?,
        fsm_backend: match backend.as_deref() {
            None | Some("fsg") => graphsig_core::FsmBackend::Fsg,
            Some("gspan") => graphsig_core::FsmBackend::GSpan,
            Some(other) => return Err(format!("unknown backend {other}")),
        },
        matcher: parse_or(&matcher, defaults.matcher, "--matcher")?,
        budget: parse_budget(&timeout_ms, &max_steps)?,
        ..defaults
    };
    let top: usize = parse_or(&top, usize::MAX, "--top")?;
    let db = load_db(path)?;

    let outcome = GraphSig::new(cfg).mine_outcome(&db);
    // Truncation is graceful, not an error: the partial answer below is
    // well-formed, the completion line says what cut the run short, and
    // the process still exits 0. Only hard failures exit nonzero.
    eprintln!("# completion: {}", outcome.completion);
    let result = outcome.result;
    eprintln!(
        "# {} graphs, {} vectors, {} significant vectors, {} region sets \
         ({} pruned, {} truncated), {} significant subgraphs",
        db.len(),
        result.stats.vectors,
        result.stats.significant_vectors,
        result.stats.region_sets,
        result.stats.pruned_sets,
        result.stats.truncated_sets,
        result.subgraphs.len()
    );
    let (r, f, m) = result.profile.percentages();
    eprintln!("# profile: RWR {r:.0}% | feature analysis {f:.0}% | FSM {m:.0}%");

    // Shared with `graphsig serve`: server mine payloads are rendered by
    // the same function, so they stay byte-identical to this output.
    print!("{}", graphsig_core::render_subgraphs(&db, &result, top));
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    // Boolean flags first; take_flags only understands `--flag value`.
    let (mut smoke, mut allow_inject, mut chaos, mut log) = (false, false, false, false);
    let rest: Vec<String> = args
        .iter()
        .filter(|a| match a.as_str() {
            "--smoke" => {
                smoke = true;
                false
            }
            "--allow-inject" => {
                allow_inject = true;
                false
            }
            "--chaos" => {
                chaos = true;
                false
            }
            "--log" => {
                log = true;
                false
            }
            _ => true,
        })
        .cloned()
        .collect();
    let (mut tcp, mut workers, mut queue) = (None, None, None);
    let (mut default_timeout_ms, mut max_timeout_ms, mut max_steps_ceiling) = (None, None, None);
    let (mut drain_ms, mut max_conns, mut max_write_buf) = (None, None, None);
    let (mut auth_token, mut max_resident_bytes) = (None, None);
    let (mut idle_timeout_ms, mut handshake_timeout_ms) = (None, None);
    let positional = take_flags(
        &rest,
        &mut [
            ("--tcp", &mut tcp),
            ("--workers", &mut workers),
            ("--queue", &mut queue),
            ("--default-timeout-ms", &mut default_timeout_ms),
            ("--max-timeout-ms", &mut max_timeout_ms),
            ("--max-steps-ceiling", &mut max_steps_ceiling),
            ("--drain-ms", &mut drain_ms),
            ("--max-conns", &mut max_conns),
            ("--max-write-buf", &mut max_write_buf),
            ("--auth-token", &mut auth_token),
            ("--max-resident-bytes", &mut max_resident_bytes),
            ("--idle-timeout-ms", &mut idle_timeout_ms),
            ("--handshake-timeout-ms", &mut handshake_timeout_ms),
        ],
    )?;
    if !positional.is_empty() {
        return Err(format!(
            "serve takes no positional arguments: {positional:?}"
        ));
    }
    if smoke {
        graphsig_server::smoke::run()?;
        eprintln!("serve --smoke: all checks passed");
        return Ok(());
    }
    if chaos {
        let report = graphsig_server::chaos::run(&graphsig_server::chaos::ChaosConfig::default())?;
        eprintln!(
            "serve --chaos: {} schedules, {} requests, {} injected fault events, \
             {} retries — every invariant held",
            report.schedules.len(),
            report.total_requests,
            report.total_fault_events,
            report.total_retries,
        );
        return Ok(());
    }
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        workers: parse_or(&workers, defaults.workers, "--workers")?,
        queue_capacity: parse_or(&queue, defaults.queue_capacity, "--queue")?,
        default_timeout_ms: parse_opt(&default_timeout_ms, "--default-timeout-ms")?,
        max_timeout_ms: parse_opt(&max_timeout_ms, "--max-timeout-ms")?,
        max_steps_ceiling: parse_opt(&max_steps_ceiling, "--max-steps-ceiling")?,
        drain_ms: parse_or(&drain_ms, defaults.drain_ms, "--drain-ms")?,
        allow_inject,
        max_resident_bytes: parse_opt(&max_resident_bytes, "--max-resident-bytes")?,
        auth_token,
        log,
        ..defaults
    };
    let transport_defaults = TransportConfig::default();
    let transport = TransportConfig {
        max_connections: parse_or(
            &max_conns,
            transport_defaults.max_connections,
            "--max-conns",
        )?,
        max_write_buf: parse_or(
            &max_write_buf,
            transport_defaults.max_write_buf,
            "--max-write-buf",
        )?,
        idle_timeout_ms: parse_opt(&idle_timeout_ms, "--idle-timeout-ms")?,
        handshake_timeout_ms: parse_opt(&handshake_timeout_ms, "--handshake-timeout-ms")?,
        ..transport_defaults
    };
    match tcp {
        Some(addr) => serve_tcp(&addr, cfg, transport),
        None => {
            // stdio transport: requests on stdin, responses on stdout,
            // diagnostics on stderr. EOF without a `shutdown` request
            // still drains in-flight work before exiting.
            let server = Server::new(cfg);
            let out = graphsig_server::shared_writer(std::io::stdout());
            server.serve_connection(std::io::stdin().lock(), Arc::clone(&out));
            if !server.is_terminated() {
                server.shutdown_now();
            }
            server.join();
            Ok(())
        }
    }
}

/// TCP transport: one event-driven readiness loop multiplexes every
/// connection against the shared server (no thread per connection — idle
/// clients cost a file descriptor, not a stack). See
/// `graphsig_server::transport` for the state machine and the
/// per-connection backpressure policy.
fn serve_tcp(addr: &str, cfg: ServerConfig, transport: TransportConfig) -> Result<(), String> {
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());
    eprintln!("graphsig serve: listening on {local}");
    let server = Server::new(cfg);
    graphsig_server::transport::serve(listener, &server, transport)
        .map_err(|e| format!("transport on {local} failed: {e}"))?;
    server.join();
    Ok(())
}

/// `graphsig pack <file> <dir>` — ingest a transaction file into the
/// durable sharded store. Crash-safe by construction: shards land via
/// write-to-temp + fsync + rename, and the manifest commits last, so an
/// interrupted pack leaves the previous store version intact.
fn cmd_pack(args: &[String]) -> Result<(), String> {
    let mut append = false;
    let rest: Vec<String> = args
        .iter()
        .filter(|a| {
            if a.as_str() == "--append" {
                append = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    let mut shard_size = None;
    let positional = take_flags(&rest, &mut [("--shard-size", &mut shard_size)])?;
    let [input, dir] = positional.as_slice() else {
        return Err("pack needs <input.txt> <store-dir>".into());
    };
    let shard_size: usize = parse_or(
        &shard_size,
        graphsig_store::DEFAULT_SHARD_SIZE,
        "--shard-size",
    )?;
    if shard_size == 0 {
        return Err("--shard-size must be at least 1".into());
    }
    let dir = std::path::Path::new(dir);
    let started = std::time::Instant::now();
    let summary = if append {
        // Append extends the existing store: its label table seeds the
        // parse so old graphs and label ids are untouched, and only the
        // new tail is written out as fresh shards.
        let opened = graphsig_store::open_strict(dir).map_err(|e| e.to_string())?;
        let mut db = opened.db;
        let from = db.len();
        let text =
            std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
        parse_transactions_into(&mut db, &text).map_err(|e| format!("{input}: {e}"))?;
        graphsig_store::append(dir, &db, from, shard_size).map_err(|e| e.to_string())?
    } else {
        let db = load_db(input)?;
        graphsig_store::pack(dir, &db, shard_size).map_err(|e| e.to_string())?
    };
    eprintln!(
        "packed {} new shard(s), {} bytes written; store now holds {} graphs at version {} ({} ms)",
        summary.shards_written,
        summary.bytes_written,
        summary.total_graphs,
        summary.store_version,
        started.elapsed().as_millis()
    );
    Ok(())
}

/// `graphsig verify <dir>` — read-only integrity sweep over a packed
/// store. Exits nonzero naming every damaged shard. With `--lenient` it
/// instead opens the store the way the server would: damaged shards are
/// quarantined (moved aside) and the report says what still serves.
fn cmd_verify(args: &[String]) -> Result<(), String> {
    let mut lenient = false;
    let positional: Vec<&String> = args
        .iter()
        .filter(|a| {
            if a.as_str() == "--lenient" {
                lenient = true;
                false
            } else {
                true
            }
        })
        .collect();
    let [dir] = positional.as_slice() else {
        return Err("verify needs exactly one store directory".into());
    };
    let dir = std::path::Path::new(dir.as_str());
    // Distinguish "no store here" from "store here, but damaged": a
    // missing or storeless directory gets one clear line instead of a
    // shard-by-shard corruption report for a store that never existed.
    if !dir.exists() {
        return Err(format!(
            "not a graphsig store: {} does not exist (no MANIFEST.gsm manifest)",
            dir.display()
        ));
    }
    if !dir.join(graphsig_store::MANIFEST_NAME).is_file() {
        return Err(format!(
            "not a graphsig store: no MANIFEST.gsm manifest in {}",
            dir.display()
        ));
    }
    let started = std::time::Instant::now();
    if lenient {
        let opened = graphsig_store::open_lenient(dir).map_err(|e| e.to_string())?;
        let total = opened.manifest.shards.len();
        let survivors = opened.shards.len();
        println!("store version:   {}", opened.manifest.store_version);
        println!("shards serving:  {survivors}/{total}");
        println!("graphs serving:  {}", opened.db.len());
        println!("disk bytes:      {}", opened.disk_bytes());
        for q in &opened.report.quarantined {
            eprintln!("quarantined {}: {}", q.name, q.error);
        }
        for orphan in &opened.report.orphans {
            eprintln!("orphan shard (unreferenced): {orphan}");
        }
        eprintln!("verified (lenient) in {} ms", started.elapsed().as_millis());
        if opened.degraded() {
            eprintln!("store is DEGRADED: serving {survivors}/{total} shards");
        }
        return Ok(());
    }
    let report = graphsig_store::verify(dir).map_err(|e| e.to_string())?;
    println!("store version:   {}", report.store_version);
    println!("shards:          {}", report.shards.len());
    println!(
        "graphs promised: {}",
        report
            .shards
            .iter()
            .map(|s| s.graph_count as u64)
            .sum::<u64>()
    );
    println!("disk bytes:      {}", report.disk_bytes);
    for orphan in &report.orphans {
        eprintln!("orphan shard (unreferenced): {orphan}");
    }
    for temp in &report.temps {
        eprintln!("torn temp file: {temp}");
    }
    eprintln!("verified in {} ms", started.elapsed().as_millis());
    let failures: Vec<String> = report
        .failures()
        .map(|(name, e)| format!("{name}: {e}"))
        .collect();
    if failures.is_empty() {
        Ok(())
    } else {
        // One line per damaged shard, then a nonzero exit that names the
        // first offender so scripts get the culprit even from the summary.
        for f in &failures {
            eprintln!("FAILED {f}");
        }
        Err(format!(
            "verify failed: {} of {} shard(s) damaged (first: {})",
            failures.len(),
            report.shards.len(),
            report
                .shards
                .iter()
                .find(|s| s.error.is_some())
                .map(|s| s.name.as_str())
                .unwrap_or("?")
        ))
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("stats needs exactly one input file".into());
    };
    let db = load_db(path)?;
    let s = db.stats();
    println!("graphs:               {}", s.graph_count);
    println!("total nodes:          {}", s.total_nodes);
    println!("total edges:          {}", s.total_edges);
    println!("avg nodes per graph:  {:.2}", s.avg_nodes);
    println!("avg edges per graph:  {:.2}", s.avg_edges);
    println!("distinct node labels: {}", s.distinct_node_labels);
    println!("distinct edge labels: {}", s.distinct_edge_labels);
    let rings: usize = db.graphs().iter().map(graphsig_graph::cycle_rank).sum();
    let max_diameter = db
        .graphs()
        .iter()
        .filter_map(graphsig_graph::diameter)
        .max()
        .unwrap_or(0);
    println!("total rings:          {rings}");
    println!("max graph diameter:   {max_diameter}");
    println!("\natom coverage (Fig. 4 curve):");
    for (rank, (label, count, cum)) in db.atom_coverage_curve().into_iter().enumerate() {
        println!(
            "  {:>2}. {:<4} {:>8}  {:>6.2}%",
            rank + 1,
            db.labels().node_name(label).unwrap_or("?"),
            count,
            cum * 100.0
        );
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (mut seed, mut split) = (None, None);
    let positional = take_flags(args, &mut [("--seed", &mut seed), ("--split", &mut split)])?;
    let seed: u64 = parse_or(&seed, 42, "--seed")?;
    let data = match positional.as_slice() {
        [kind, n] if kind == "aids" => {
            let n: usize = n.parse().map_err(|_| "bad molecule count".to_string())?;
            graphsig_datagen::aids_like(n, seed)
        }
        [kind, name, scale] if kind == "screen" => {
            let scale: f64 = scale.parse().map_err(|_| "bad scale".to_string())?;
            graphsig_datagen::cancer_screen(name, scale)
        }
        _ => return Err("generate needs: aids <n> | screen <NAME> <scale>".into()),
    };
    eprintln!("# {} molecules, {} active", data.len(), data.active_count());
    match split {
        // --split PREFIX writes PREFIX.pos.txt / PREFIX.neg.txt for the
        // classify workflow; stdout still carries the full database.
        Some(prefix) => {
            let (pos, neg) = data.to_transactions_split();
            let (pp, np) = (format!("{prefix}.pos.txt"), format!("{prefix}.neg.txt"));
            std::fs::write(&pp, pos).map_err(|e| format!("cannot write {pp}: {e}"))?;
            std::fs::write(&np, neg).map_err(|e| format!("cannot write {np}: {e}"))?;
            eprintln!("# wrote {pp} and {np}");
        }
        None => print!("{}", write_transactions(&data.db)),
    }
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let (mut k, mut min_freq, mut max_pvalue, mut threads) = (None, None, None, None);
    let (mut matcher, mut timeout_ms, mut max_steps) = (None, None, None);
    let positional = take_flags(
        args,
        &mut [
            ("--k", &mut k),
            ("--min-freq", &mut min_freq),
            ("--max-pvalue", &mut max_pvalue),
            ("--threads", &mut threads),
            ("--matcher", &mut matcher),
            ("--timeout-ms", &mut timeout_ms),
            ("--max-steps", &mut max_steps),
        ],
    )?;
    let [pos_path, neg_path, query_path] = positional.as_slice() else {
        return Err("classify needs <positive.txt> <negative.txt> <query.txt>".into());
    };
    let pos = load_db(pos_path)?;
    let neg = load_db(neg_path)?;
    let query = load_db(query_path)?;
    let defaults = GraphSigConfig::default();
    let cfg = KnnConfig {
        k: parse_or(&k, 9, "--k")?,
        mining: GraphSigConfig {
            min_freq: parse_or(&min_freq, 0.05, "--min-freq")?,
            max_pvalue: parse_or(&max_pvalue, defaults.max_pvalue, "--max-pvalue")?,
            threads: parse_or(&threads, defaults.threads, "--threads")?,
            matcher: parse_or(&matcher, defaults.matcher, "--matcher")?,
            budget: parse_budget(&timeout_ms, &max_steps)?,
            ..defaults
        },
        ..Default::default()
    };
    let clf = GraphSigClassifier::train(&pos, &neg, cfg);
    let (np, nn) = clf.model_sizes();
    eprintln!(
        "# trained on {} positive / {} negative graphs; {np}/{nn} significant vectors",
        pos.len(),
        neg.len()
    );
    println!("graph_id\tscore\tclass");
    for (i, g) in query.graphs().iter().enumerate() {
        let score = clf.score(g);
        println!(
            "{i}\t{score:.6}\t{}",
            if score > 0.0 { "positive" } else { "negative" }
        );
    }
    Ok(())
}

// The tests below deliberately avoid `unwrap`/`expect`: the CLI's whole
// contract is that bad input becomes a structured `Err`, so the tests use
// the same error paths they verify (`?` on `Result<(), String>`).
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_flags_extracts_pairs_and_positionals() -> Result<(), String> {
        let args: Vec<String> = ["a.txt", "--k", "5", "b.txt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut k = None;
        let pos = take_flags(&args, &mut [("--k", &mut k)])?;
        assert_eq!(pos, vec!["a.txt".to_string(), "b.txt".to_string()]);
        assert_eq!(k.as_deref(), Some("5"));
        Ok(())
    }

    #[test]
    fn take_flags_rejects_unknown_and_dangling() {
        let args: Vec<String> = vec!["--bogus".into()];
        assert!(take_flags(&args, &mut []).is_err());
        let args: Vec<String> = vec!["--k".into()];
        let mut k = None;
        assert!(take_flags(&args, &mut [("--k", &mut k)]).is_err());
    }

    #[test]
    fn parse_or_defaults_and_errors() -> Result<(), String> {
        assert_eq!(parse_or::<usize>(&None, 7, "x")?, 7);
        assert_eq!(parse_or::<usize>(&Some("3".into()), 7, "x")?, 3);
        assert!(parse_or::<usize>(&Some("zzz".into()), 7, "x").is_err());
        Ok(())
    }

    #[test]
    fn matcher_flag_parses_both_engines() -> Result<(), String> {
        use graphsig_graph::MatcherKind;
        let d = GraphSigConfig::default().matcher;
        assert_eq!(parse_or::<MatcherKind>(&None, d, "--matcher")?, d);
        assert_eq!(
            parse_or::<MatcherKind>(&Some("vf2".into()), d, "--matcher")?,
            MatcherKind::Vf2
        );
        assert_eq!(
            parse_or::<MatcherKind>(&Some("fast".into()), d, "--matcher")?,
            MatcherKind::Fast
        );
        assert!(parse_or::<MatcherKind>(&Some("magic".into()), d, "--matcher").is_err());
        Ok(())
    }

    #[test]
    fn parse_budget_builds_from_flags() -> Result<(), String> {
        assert!(parse_budget(&None, &None)?.is_none());
        let b = parse_budget(&Some("250".into()), &None)?
            .ok_or("a timeout flag must build a budget")?;
        assert!(b.deadline().is_some());
        assert_eq!(b.max_steps(), None);
        let b =
            parse_budget(&None, &Some("42".into()))?.ok_or("a step flag must build a budget")?;
        assert_eq!(b.max_steps(), Some(42));
        assert!(b.deadline().is_none());
        assert!(parse_budget(&Some("soon".into()), &None).is_err());
        assert!(parse_budget(&None, &Some("-1".into())).is_err());
        Ok(())
    }

    #[test]
    fn load_db_reports_line_numbered_parse_errors() -> Result<(), String> {
        // A malformed `e` line on line 4 must surface as a structured
        // error naming the file and the 1-based line — never a panic.
        let path = std::env::temp_dir().join("graphsig_cli_bad_input.txt");
        std::fs::write(&path, "t # 0\nv 0 C\nv 1 C\ne 0 5 s\n")
            .map_err(|e| format!("cannot stage temp file: {e}"))?;
        let shown = path.to_str().ok_or("temp path is not UTF-8")?;
        let err = match load_db(shown) {
            Ok(_) => Err("malformed input must not parse".to_string()),
            Err(e) => Ok(e),
        };
        std::fs::remove_file(&path).ok();
        let err = err?;
        assert!(err.contains("line 4"), "missing line number: {err}");
        assert!(
            err.contains("graphsig_cli_bad_input.txt"),
            "missing path: {err}"
        );
        Ok(())
    }

    #[test]
    fn load_db_reports_missing_file() -> Result<(), String> {
        let err = match load_db("/nonexistent/graphsig/input.txt") {
            Ok(_) => return Err("missing file must not load".to_string()),
            Err(e) => e,
        };
        assert!(err.contains("cannot read"), "{err}");
        Ok(())
    }

    /// Fresh per-test store directory under the system temp dir.
    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("graphsig_cli_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn pack_then_verify_roundtrips() -> Result<(), String> {
        let dir = store_dir("pack_ok");
        let input =
            std::env::temp_dir().join(format!("graphsig_cli_pack_{}.txt", std::process::id()));
        std::fs::write(&input, "t # 0\nv 0 C\nv 1 N\ne 0 1 s\nt # 1\nv 0 O\n")
            .map_err(|e| format!("cannot stage input: {e}"))?;
        let args: Vec<String> = vec![
            input.display().to_string(),
            dir.display().to_string(),
            "--shard-size".into(),
            "1".into(),
        ];
        cmd_pack(&args)?;
        let verify_args: Vec<String> = vec![dir.display().to_string()];
        let clean = cmd_verify(&verify_args);
        let lenient_args: Vec<String> = vec![dir.display().to_string(), "--lenient".into()];
        let lenient = cmd_verify(&lenient_args);
        std::fs::remove_file(&input).ok();
        std::fs::remove_dir_all(&dir).ok();
        clean?;
        lenient
    }

    #[test]
    fn pack_rejects_zero_shard_size_and_bad_arity() {
        let args: Vec<String> = vec![
            "a.txt".into(),
            "d".into(),
            "--shard-size".into(),
            "0".into(),
        ];
        assert!(cmd_pack(&args).is_err());
        let args: Vec<String> = vec!["only-one.txt".into()];
        assert!(cmd_pack(&args).is_err());
    }

    #[test]
    fn verify_names_the_damaged_shard_and_fails() -> Result<(), String> {
        let dir = store_dir("verify_bad");
        let input =
            std::env::temp_dir().join(format!("graphsig_cli_vbad_{}.txt", std::process::id()));
        std::fs::write(&input, "t # 0\nv 0 C\nv 1 N\ne 0 1 s\nt # 1\nv 0 O\n")
            .map_err(|e| format!("cannot stage input: {e}"))?;
        let args: Vec<String> = vec![
            input.display().to_string(),
            dir.display().to_string(),
            "--shard-size".into(),
            "1".into(),
        ];
        let packed = cmd_pack(&args);
        std::fs::remove_file(&input).ok();
        packed?;
        // Flip one payload byte in the second shard; verify must exit
        // nonzero and the error must name that shard, not the clean one.
        let shard = dir.join("shard-00001.gss");
        let mut bytes =
            std::fs::read(&shard).map_err(|e| format!("cannot read staged shard: {e}"))?;
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&shard, &bytes).map_err(|e| format!("cannot corrupt shard: {e}"))?;
        let verify_args: Vec<String> = vec![dir.display().to_string()];
        let err = match cmd_verify(&verify_args) {
            Ok(()) => Err("corrupted store must not verify".to_string()),
            Err(e) => Ok(e),
        };
        std::fs::remove_dir_all(&dir).ok();
        let err = err?;
        assert!(err.contains("shard-00001.gss"), "culprit unnamed: {err}");
        assert!(err.contains("1 of 2"), "wrong tally: {err}");
        Ok(())
    }

    #[test]
    fn verify_on_missing_store_is_structured() {
        let args: Vec<String> = vec!["/nonexistent/graphsig/store".into()];
        let err = match cmd_verify(&args) {
            Ok(()) => "".to_string(),
            Err(e) => e,
        };
        assert!(
            err.contains("no manifest") || err.contains("MANIFEST"),
            "{err}"
        );
    }

    #[test]
    fn serve_rejects_bad_flags() {
        let args: Vec<String> = vec!["--workers".into(), "lots".into()];
        assert!(cmd_serve(&args).is_err());
        let args: Vec<String> = vec!["leftover".into()];
        assert!(cmd_serve(&args).is_err());
    }
}
