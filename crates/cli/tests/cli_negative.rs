//! Negative-path tests of the `graphsig` binary: every class of bad
//! input must exit nonzero with a diagnostic that names the flag or the
//! offending line — never a panic, never a silent success.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_graphsig"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("graphsig-neg-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp input");
    path
}

#[test]
fn mine_missing_input_file() {
    let (_, err, ok) = run(&["mine", "/nonexistent/graphsig/db.txt"]);
    assert!(!ok);
    assert!(err.contains("cannot read"), "{err}");
    assert!(err.contains("/nonexistent/graphsig/db.txt"), "{err}");
}

#[test]
fn mine_malformed_flag_values_name_the_flag() {
    for (flag, bad) in [
        ("--radius", "banana"),
        ("--min-freq", "not-a-number"),
        ("--max-pvalue", ""),
        ("--threads", "-2"),
        ("--timeout-ms", "soon"),
        ("--max-steps", "1.5"),
    ] {
        let (_, err, ok) = run(&["mine", "whatever.txt", flag, bad]);
        assert!(!ok, "{flag}={bad} must fail");
        assert!(err.contains(flag), "diagnostic must name {flag}: {err}");
    }
}

#[test]
fn mine_dangling_flag_and_unknown_flag() {
    let (_, err, ok) = run(&["mine", "whatever.txt", "--radius"]);
    assert!(!ok);
    assert!(err.contains("--radius needs a value"), "{err}");
    let (_, err, ok) = run(&["mine", "whatever.txt", "--frobnicate", "3"]);
    assert!(!ok);
    assert!(err.contains("unknown flag --frobnicate"), "{err}");
}

#[test]
fn truncated_database_reports_line_number() {
    // An `e` line referencing a vertex the truncated file never declared.
    let path = temp_file(
        "trunc.txt",
        "t # 0\nv 0 C\nv 1 C\ne 0 1 s\nt # 1\nv 0 C\ne 0 3 s\n",
    );
    let (_, err, ok) = run(&["mine", path.to_str().expect("utf-8 path")]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(err.contains("line 7"), "must name the bad line: {err}");
}

#[test]
fn garbage_database_reports_line_number() {
    let path = temp_file("garbage.txt", "t # 0\nv 0 C\nnot a record\n");
    let (_, err, ok) = run(&["stats", path.to_str().expect("utf-8 path")]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(err.contains("line 3"), "must name the bad line: {err}");
}

#[test]
fn mine_rejects_multiple_inputs_and_bad_backend() {
    let (_, err, ok) = run(&["mine", "a.txt", "b.txt"]);
    assert!(!ok);
    assert!(err.contains("exactly one input file"), "{err}");
    let (_, err, ok) = run(&["mine", "a.txt", "--backend", "quantum"]);
    assert!(!ok);
    assert!(err.contains("unknown backend"), "{err}");
}

#[test]
fn serve_flag_errors_are_clean() {
    let (_, err, ok) = run(&["serve", "--workers", "lots"]);
    assert!(!ok);
    assert!(err.contains("--workers"), "{err}");
    let (_, err, ok) = run(&["serve", "stray-positional"]);
    assert!(!ok);
    assert!(err.contains("positional"), "{err}");
    let (_, err, ok) = run(&["serve", "--tcp", "999.999.999.999:1"]);
    assert!(!ok);
    assert!(err.contains("cannot bind"), "{err}");
}

#[test]
fn classify_requires_three_files() {
    let (_, err, ok) = run(&["classify", "only.txt"]);
    assert!(!ok);
    assert!(err.contains("classify needs"), "{err}");
}
