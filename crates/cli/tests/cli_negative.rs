//! Negative-path tests of the `graphsig` binary: every class of bad
//! input must exit nonzero with a diagnostic that names the flag or the
//! offending line — never a panic, never a silent success.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_graphsig"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("graphsig-neg-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp input");
    path
}

#[test]
fn mine_missing_input_file() {
    let (_, err, ok) = run(&["mine", "/nonexistent/graphsig/db.txt"]);
    assert!(!ok);
    assert!(err.contains("cannot read"), "{err}");
    assert!(err.contains("/nonexistent/graphsig/db.txt"), "{err}");
}

#[test]
fn mine_malformed_flag_values_name_the_flag() {
    for (flag, bad) in [
        ("--radius", "banana"),
        ("--min-freq", "not-a-number"),
        ("--max-pvalue", ""),
        ("--threads", "-2"),
        ("--timeout-ms", "soon"),
        ("--max-steps", "1.5"),
    ] {
        let (_, err, ok) = run(&["mine", "whatever.txt", flag, bad]);
        assert!(!ok, "{flag}={bad} must fail");
        assert!(err.contains(flag), "diagnostic must name {flag}: {err}");
    }
}

#[test]
fn mine_dangling_flag_and_unknown_flag() {
    let (_, err, ok) = run(&["mine", "whatever.txt", "--radius"]);
    assert!(!ok);
    assert!(err.contains("--radius needs a value"), "{err}");
    let (_, err, ok) = run(&["mine", "whatever.txt", "--frobnicate", "3"]);
    assert!(!ok);
    assert!(err.contains("unknown flag --frobnicate"), "{err}");
}

#[test]
fn truncated_database_reports_line_number() {
    // An `e` line referencing a vertex the truncated file never declared.
    let path = temp_file(
        "trunc.txt",
        "t # 0\nv 0 C\nv 1 C\ne 0 1 s\nt # 1\nv 0 C\ne 0 3 s\n",
    );
    let (_, err, ok) = run(&["mine", path.to_str().expect("utf-8 path")]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(err.contains("line 7"), "must name the bad line: {err}");
}

#[test]
fn garbage_database_reports_line_number() {
    let path = temp_file("garbage.txt", "t # 0\nv 0 C\nnot a record\n");
    let (_, err, ok) = run(&["stats", path.to_str().expect("utf-8 path")]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(err.contains("line 3"), "must name the bad line: {err}");
}

#[test]
fn mine_rejects_multiple_inputs_and_bad_backend() {
    let (_, err, ok) = run(&["mine", "a.txt", "b.txt"]);
    assert!(!ok);
    assert!(err.contains("exactly one input file"), "{err}");
    let (_, err, ok) = run(&["mine", "a.txt", "--backend", "quantum"]);
    assert!(!ok);
    assert!(err.contains("unknown backend"), "{err}");
}

#[test]
fn serve_flag_errors_are_clean() {
    let (_, err, ok) = run(&["serve", "--workers", "lots"]);
    assert!(!ok);
    assert!(err.contains("--workers"), "{err}");
    let (_, err, ok) = run(&["serve", "stray-positional"]);
    assert!(!ok);
    assert!(err.contains("positional"), "{err}");
    let (_, err, ok) = run(&["serve", "--tcp", "999.999.999.999:1"]);
    assert!(!ok);
    assert!(err.contains("cannot bind"), "{err}");
}

#[test]
fn verify_on_corrupted_store_exits_nonzero_naming_the_shard() {
    // Pack a two-shard store, flip one byte in the second shard, and
    // check the process-level contract: nonzero exit, culprit named.
    let input = temp_file(
        "pack-input.txt",
        "t # 0\nv 0 C\nv 1 N\ne 0 1 s\nt # 1\nv 0 O\n",
    );
    let dir = std::env::temp_dir().join(format!("graphsig-neg-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_s = dir.to_str().expect("utf-8 path").to_string();
    let (_, err, ok) = run(&[
        "pack",
        input.to_str().expect("utf-8 path"),
        &dir_s,
        "--shard-size",
        "1",
    ]);
    std::fs::remove_file(&input).ok();
    assert!(ok, "pack of a clean input must succeed: {err}");

    let shard = dir.join("shard-00001.gss");
    let mut bytes = std::fs::read(&shard).expect("read packed shard");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&shard, &bytes).expect("corrupt packed shard");

    let (_, err, ok) = run(&["verify", &dir_s]);
    assert!(!ok, "verify must fail on a corrupted store");
    assert!(err.contains("shard-00001.gss"), "culprit unnamed: {err}");
    assert!(
        !err.contains("panicked"),
        "corruption must never panic: {err}"
    );

    // The lenient open quarantines the damaged shard and still exits 0,
    // reporting degraded service over the survivor.
    let (out, err, ok) = run(&["verify", &dir_s, "--lenient"]);
    assert!(ok, "lenient verify serves survivors: {err}");
    assert!(out.contains("shards serving:  1/2"), "{out}");
    assert!(err.contains("DEGRADED"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_on_missing_store_is_a_clean_error() {
    let (_, err, ok) = run(&["verify", "/nonexistent/graphsig/store"]);
    assert!(!ok);
    assert!(err.contains("manifest"), "{err}");
    let (_, err, ok) = run(&["pack", "a.txt", "d", "--shard-size", "zero"]);
    assert!(!ok);
    assert!(err.contains("--shard-size"), "{err}");
}

#[test]
fn verify_on_empty_dir_names_the_missing_manifest() {
    // A directory with no MANIFEST.gsm is "not a store", and the
    // diagnostic must say so in one line — distinct from the
    // nonexistent-directory case and from a damaged-store report.
    let dir = std::env::temp_dir().join(format!("graphsig-neg-emptydir-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let dir_s = dir.to_string_lossy().into_owned();
    let (_, err, ok) = run(&["verify", &dir_s]);
    assert!(!ok, "verify must fail on a storeless directory");
    assert!(err.contains("not a graphsig store"), "{err}");
    assert!(err.contains("no MANIFEST.gsm"), "{err}");
    assert!(!err.contains("does not exist"), "{err}");
    // Lenient mode takes the same gate.
    let (_, err, ok) = run(&["verify", &dir_s, "--lenient"]);
    assert!(!ok, "lenient verify must also fail with no manifest");
    assert!(err.contains("not a graphsig store"), "{err}");
    // The nonexistent case stays distinct.
    std::fs::remove_dir_all(&dir).ok();
    let (_, err, ok) = run(&["verify", &dir_s]);
    assert!(!ok);
    assert!(err.contains("does not exist"), "{err}");
}

#[test]
fn classify_requires_three_files() {
    let (_, err, ok) = run(&["classify", "only.txt"]);
    assert!(!ok);
    assert!(err.contains("classify needs"), "{err}");
}
