//! Protocol-level tests of `graphsig serve` as a real child process on
//! stdio: mine responses must be byte-identical to the one-shot CLI,
//! warm requests must hit the shared cache, and EOF must drain cleanly.

use std::io::{BufRead, Read, Write};
use std::process::{Command, Stdio};

use graphsig_server::protocol::parse_response_stream;
use graphsig_server::{ResponseHeader, Status};

fn graphsig() -> Command {
    Command::new(env!("CARGO_BIN_EXE_graphsig"))
}

/// Write `script` to a `graphsig serve` child's stdin, close it, and
/// parse the full response stream from its stdout.
fn serve_script(extra_args: &[&str], script: &str) -> Vec<(ResponseHeader, Vec<u8>)> {
    let mut child = graphsig()
        .arg("serve")
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn graphsig serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(script.as_bytes())
        .expect("write request script");
    // stdin drops closed here: EOF after the last request.
    let mut stdout = Vec::new();
    child
        .stdout
        .take()
        .expect("piped stdout")
        .read_to_end(&mut stdout)
        .expect("read responses");
    let status = child.wait().expect("child exits");
    assert!(status.success(), "serve must exit 0 on clean EOF");
    parse_response_stream(&stdout).expect("well-framed response stream")
}

fn response<'a>(
    responses: &'a [(ResponseHeader, Vec<u8>)],
    id: &str,
) -> &'a (ResponseHeader, Vec<u8>) {
    responses
        .iter()
        .find(|(h, _)| h.id == id)
        .unwrap_or_else(|| panic!("no response for {id}"))
}

#[test]
fn server_mine_is_byte_identical_to_one_shot_cli() {
    // One-shot CLI run: generate a dataset file, mine it, keep stdout.
    let dir = std::env::temp_dir().join(format!("graphsig-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("db.txt");
    let gen = graphsig()
        .args(["generate", "aids", "80", "--seed", "11"])
        .output()
        .expect("generate");
    assert!(gen.status.success());
    std::fs::write(&file, &gen.stdout).expect("write dataset");
    let mine = graphsig()
        .args([
            "mine",
            file.to_str().expect("utf-8 path"),
            "--min-freq",
            "0.05",
            "--max-pvalue",
            "0.05",
            "--radius",
            "3",
        ])
        .output()
        .expect("one-shot mine");
    assert!(mine.status.success());
    let one_shot = mine.stdout;

    // Same mine through the server: load the same file, ask twice (cold
    // then warm), plus a step-budgeted request for the bypass path.
    let script = format!(
        "load id=L dataset=d path={}\n\
         mine id=cold dataset=d min_freq=0.05 max_pvalue=0.05 radius=3\n\
         mine id=warm dataset=d min_freq=0.05 max_pvalue=0.05 radius=3\n\
         mine id=steps dataset=d min_freq=0.05 max_pvalue=0.05 radius=3 max_steps=50\n\
         stats id=S dataset=d\n",
        file.to_str().expect("utf-8 path")
    );
    let responses = serve_script(&[], &script);
    std::fs::remove_dir_all(&dir).ok();

    let (l, _) = response(&responses, "L");
    assert_eq!(l.status, Status::Ok, "load: {l:?}");
    let (cold, cold_body) = response(&responses, "cold");
    assert_eq!(cold.status, Status::Ok);
    assert_eq!(
        cold_body, &one_shot,
        "server mine payload differs from one-shot CLI stdout"
    );
    let (warm, warm_body) = response(&responses, "warm");
    assert_eq!(warm.field("cached"), Some("hit"), "{warm:?}");
    assert_eq!(warm_body, &one_shot, "cache hit changed the bytes");
    let (steps, _) = response(&responses, "steps");
    assert_eq!(steps.field("cached"), Some("bypass"));
    let (stats, _) = response(&responses, "S");
    assert_eq!(stats.field("prepared_hits"), Some("1"), "{stats:?}");
    assert_eq!(stats.field("prepared_bypasses"), Some("1"));
}

#[test]
fn packed_and_appended_loads_mine_byte_identical_to_text() {
    // Two disjoint generated sets: `a` seeds the store, `b` arrives later.
    // Mining must produce byte-identical payloads whether the data came
    // from (1) the concatenated text, (2) a packed store of the
    // concatenation, or (3) a packed store of `a` with `b` appended live.
    let dir = std::env::temp_dir().join(format!("graphsig-serve-pack-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let gen_a = graphsig()
        .args(["generate", "aids", "60", "--seed", "7"])
        .output()
        .expect("generate a");
    let gen_b = graphsig()
        .args(["generate", "aids", "40", "--seed", "8"])
        .output()
        .expect("generate b");
    assert!(gen_a.status.success() && gen_b.status.success());
    let full_txt = dir.join("full.txt");
    let b_txt = dir.join("b.txt");
    let mut full = gen_a.stdout.clone();
    full.extend_from_slice(&gen_b.stdout);
    std::fs::write(&full_txt, &full).expect("write full.txt");
    std::fs::write(&b_txt, &gen_b.stdout).expect("write b.txt");

    // Pack the concatenation into one store and `a` alone into another,
    // then append `b` to the latter through the server's `load append=`.
    let store_full = dir.join("store-full");
    let store_a = dir.join("store-a");
    let a_txt = dir.join("a.txt");
    std::fs::write(&a_txt, &gen_a.stdout).expect("write a.txt");
    for (input, store) in [(&full_txt, &store_full), (&a_txt, &store_a)] {
        let pack = graphsig()
            .args([
                "pack",
                input.to_str().expect("utf-8"),
                store.to_str().expect("utf-8"),
                "--shard-size",
                "16",
            ])
            .output()
            .expect("pack");
        assert!(
            pack.status.success(),
            "pack failed: {}",
            String::from_utf8_lossy(&pack.stderr)
        );
    }

    let mine_flags = "min_freq=0.05 max_pvalue=0.05 radius=3";
    let script = format!(
        "load id=LT dataset=t path={full}\n\
         load id=LP dataset=p path={sf} format=packed\n\
         load id=LA1 dataset=a path={sa} format=packed\n\
         load id=LA2 dataset=a path={b} append=true\n\
         mine id=mt dataset=t {mf}\n\
         mine id=mp dataset=p {mf}\n\
         mine id=ma dataset=a {mf}\n\
         stats id=S dataset=p\n",
        full = full_txt.to_str().expect("utf-8"),
        sf = store_full.to_str().expect("utf-8"),
        sa = store_a.to_str().expect("utf-8"),
        b = b_txt.to_str().expect("utf-8"),
        mf = mine_flags,
    );
    let responses = serve_script(&[], &script);
    std::fs::remove_dir_all(&dir).ok();

    let (lt, _) = response(&responses, "LT");
    assert_eq!(lt.status, Status::Ok, "{lt:?}");
    let (lp, _) = response(&responses, "LP");
    assert_eq!(lp.status, Status::Ok, "{lp:?}");
    assert_eq!(lp.field("graphs"), Some("100"), "{lp:?}");
    assert_eq!(lp.field("shards"), Some("7"), "100 graphs / 16 = 7 shards");
    assert_eq!(lp.field("quarantined"), Some("0"));
    assert_eq!(lp.field("store_version"), Some("1"));
    assert!(lp.field("degraded").is_none(), "clean store: {lp:?}");
    let (la2, _) = response(&responses, "LA2");
    assert_eq!(la2.status, Status::Ok, "{la2:?}");
    assert_eq!(la2.field("graphs"), Some("100"), "{la2:?}");
    assert_eq!(la2.field("loaded"), Some("40"), "{la2:?}");

    let (mt, text_body) = response(&responses, "mt");
    assert_eq!(mt.status, Status::Ok);
    let (mp, packed_body) = response(&responses, "mp");
    assert_eq!(mp.status, Status::Ok);
    assert_eq!(
        packed_body, text_body,
        "mining a packed store must be byte-identical to the text path"
    );
    let (ma, appended_body) = response(&responses, "ma");
    assert_eq!(ma.status, Status::Ok);
    assert_eq!(
        appended_body, text_body,
        "append must be byte-identical to a one-shot load of the concatenation"
    );

    let (s, _) = response(&responses, "S");
    assert_eq!(s.field("shards"), Some("7"), "{s:?}");
    assert_eq!(s.field("quarantined"), Some("0"));
    assert!(s.field("disk_bytes").is_some(), "{s:?}");
}

#[test]
fn degraded_store_still_serves_and_says_so() {
    // Corrupt one shard of a packed store: the server must quarantine it,
    // keep serving the survivors, and stamp every answer `degraded=K/N`.
    let dir = std::env::temp_dir().join(format!("graphsig-serve-degraded-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let gen = graphsig()
        .args(["generate", "aids", "64", "--seed", "3"])
        .output()
        .expect("generate");
    assert!(gen.status.success());
    let file = dir.join("db.txt");
    std::fs::write(&file, &gen.stdout).expect("write dataset");
    let store = dir.join("store");
    let pack = graphsig()
        .args([
            "pack",
            file.to_str().expect("utf-8"),
            store.to_str().expect("utf-8"),
            "--shard-size",
            "16",
        ])
        .output()
        .expect("pack");
    assert!(pack.status.success());
    let victim = store.join("shard-00002.gss");
    let mut bytes = std::fs::read(&victim).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&victim, &bytes).expect("corrupt shard");

    let script = format!(
        "load id=L dataset=d path={} format=packed\n\
         mine id=m dataset=d min_freq=0.05 max_pvalue=0.05 radius=3\n\
         stats id=S dataset=d\n",
        store.to_str().expect("utf-8")
    );
    let responses = serve_script(&[], &script);
    std::fs::remove_dir_all(&dir).ok();

    let (l, _) = response(&responses, "L");
    assert_eq!(l.status, Status::Ok, "degraded load still succeeds: {l:?}");
    assert_eq!(l.field("graphs"), Some("48"), "one 16-graph shard lost");
    assert_eq!(l.field("shards"), Some("3"), "{l:?}");
    assert_eq!(l.field("quarantined"), Some("1"));
    assert_eq!(l.field("degraded"), Some("1/4"), "{l:?}");
    let (m, body) = response(&responses, "m");
    assert_eq!(m.status, Status::Ok, "survivors must still mine: {m:?}");
    assert_eq!(m.field("degraded"), Some("1/4"), "{m:?}");
    assert!(!body.is_empty() || m.field("count") == Some("0"));
    let (s, _) = response(&responses, "S");
    assert_eq!(s.field("degraded"), Some("1/4"), "{s:?}");
    assert_eq!(s.field("quarantined"), Some("1"));
}

/// Pack `n` aids-like graphs (seed `seed`) into `store` with 16-graph
/// shards, returning the path of the text file that fed the pack.
fn pack_store(dir: &std::path::Path, name: &str, n: u32, seed: u32) -> std::path::PathBuf {
    let gen = graphsig()
        .args([
            "generate",
            "aids",
            &n.to_string(),
            "--seed",
            &seed.to_string(),
        ])
        .output()
        .expect("generate");
    assert!(gen.status.success());
    let txt = dir.join(format!("{name}.txt"));
    std::fs::write(&txt, &gen.stdout).expect("write text");
    let store = dir.join(name);
    let pack = graphsig()
        .args([
            "pack",
            txt.to_str().expect("utf-8"),
            store.to_str().expect("utf-8"),
            "--shard-size",
            "16",
        ])
        .output()
        .expect("pack");
    assert!(
        pack.status.success(),
        "pack failed: {}",
        String::from_utf8_lossy(&pack.stderr)
    );
    store
}

#[test]
fn append_preserves_degraded_state() {
    // Regression: appending to a degraded packed dataset used to rebuild
    // the store summary from the *append* request alone, silently clearing
    // `degraded=K/N` (and quarantine counts) from every later response.
    let dir = std::env::temp_dir().join(format!("graphsig-serve-appdeg-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store = pack_store(&dir, "store", 64, 3);
    let victim = store.join("shard-00002.gss");
    let mut bytes = std::fs::read(&victim).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&victim, &bytes).expect("corrupt shard");
    let extra = graphsig()
        .args(["generate", "aids", "20", "--seed", "9"])
        .output()
        .expect("generate extra");
    assert!(extra.status.success());
    let extra_txt = dir.join("extra.txt");
    std::fs::write(&extra_txt, &extra.stdout).expect("write extra");

    let script = format!(
        "load id=L1 dataset=d path={} format=packed\n\
         load id=L2 dataset=d path={} append=true\n\
         mine id=m dataset=d min_freq=0.05 max_pvalue=0.05 radius=3\n\
         stats id=S dataset=d\n",
        store.to_str().expect("utf-8"),
        extra_txt.to_str().expect("utf-8"),
    );
    let responses = serve_script(&[], &script);
    std::fs::remove_dir_all(&dir).ok();

    let (l1, _) = response(&responses, "L1");
    assert_eq!(l1.field("degraded"), Some("1/4"), "{l1:?}");
    // The append itself, and everything after it, must still say 1/4.
    let (l2, _) = response(&responses, "L2");
    assert_eq!(l2.status, Status::Ok, "{l2:?}");
    assert_eq!(l2.field("graphs"), Some("68"), "48 survivors + 20 appended");
    assert_eq!(
        l2.field("degraded"),
        Some("1/4"),
        "append cleared the degraded flag: {l2:?}"
    );
    assert_eq!(l2.field("quarantined"), Some("1"), "{l2:?}");
    let (m, _) = response(&responses, "m");
    assert_eq!(m.field("degraded"), Some("1/4"), "{m:?}");
    let (s, _) = response(&responses, "S");
    assert_eq!(s.field("degraded"), Some("1/4"), "{s:?}");
    assert_eq!(s.field("quarantined"), Some("1"));
}

#[test]
fn packed_append_keeps_per_shard_segments() {
    // Regression: a packed append used to collapse the appended store's
    // shards into a single index slot, so lazy per-segment index builds
    // lost their shard granularity (and `segments` undercounted).
    let dir = std::env::temp_dir().join(format!("graphsig-serve-appseg-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store_a = pack_store(&dir, "store-a", 60, 7); // 60/16 -> 4 shards
    let store_b = pack_store(&dir, "store-b", 40, 8); // 40/16 -> 3 shards

    let script = format!(
        "load id=L1 dataset=d path={} format=packed\n\
         load id=L2 dataset=d path={} format=packed append=true\n\
         freq id=f dataset=d min_support=10 max_edges=4\n\
         stats id=S dataset=d\n",
        store_a.to_str().expect("utf-8"),
        store_b.to_str().expect("utf-8"),
    );
    let responses = serve_script(&[], &script);
    std::fs::remove_dir_all(&dir).ok();

    let (l2, _) = response(&responses, "L2");
    assert_eq!(l2.status, Status::Ok, "{l2:?}");
    assert_eq!(l2.field("graphs"), Some("100"), "{l2:?}");
    assert_eq!(l2.field("loaded"), Some("40"), "{l2:?}");
    assert_eq!(l2.field("shards"), Some("7"), "4 + 3 manifest shards");
    let (f, _) = response(&responses, "f");
    assert_eq!(f.status, Status::Ok, "{f:?}");
    let (s, _) = response(&responses, "S");
    assert_eq!(s.field("graphs"), Some("100"), "{s:?}");
    assert_eq!(
        s.field("segments"),
        Some("7"),
        "appended shards must keep their own index slots: {s:?}"
    );
    assert_eq!(s.field("shards"), Some("7"), "{s:?}");
}

/// A line-protocol client over TCP: send request lines, collect framed
/// responses until every expected id has answered.
struct Client {
    stream: std::net::TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(100)))
            .expect("read timeout");
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, lines: &str) {
        self.stream.write_all(lines.as_bytes()).expect("send");
    }

    fn wait(&mut self, ids: &[&str]) -> Vec<(ResponseHeader, Vec<u8>)> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Ok(responses) = parse_response_stream(&self.buf) {
                if ids
                    .iter()
                    .all(|id| responses.iter().any(|(h, _)| &h.id == id))
                {
                    return responses;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for {ids:?}; stream so far:\n{}",
                String::from_utf8_lossy(&self.buf)
            );
            match self.stream.read(&mut chunk) {
                Ok(0) => std::thread::sleep(std::time::Duration::from_millis(5)),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("read failed: {e}"),
            }
        }
    }
}

#[test]
fn tcp_transport_serves_many_clients_with_exactly_one_response_each() {
    // End-to-end over the event-driven TCP transport: one process, many
    // concurrent client connections, mixed operations. Every request gets
    // exactly one response on its own connection; identical concurrent
    // mines (coalesced or not) are byte-identical to a solo mine; control
    // requests stay responsive while a sweep occupies the workers.
    let mut child = graphsig()
        .args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--queue",
            "64",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn graphsig serve --tcp");
    let mut banner = String::new();
    std::io::BufReader::new(child.stderr.take().expect("piped stderr"))
        .read_line(&mut banner)
        .expect("read listen banner");
    let addr = banner
        .trim()
        .rsplit("listening on ")
        .next()
        .expect("address in banner")
        .to_string();

    let mut c0 = Client::connect(&addr);
    c0.send("load id=L dataset=d gen=aids count=80 seed=7\n");
    let responses = c0.wait(&["L"]);
    assert_eq!(response(&responses, "L").0.status, Status::Ok);
    let mine = "mine dataset=d min_freq=0.05 max_pvalue=0.05 radius=3";
    c0.send(&format!("{mine} id=solo\n"));
    let responses = c0.wait(&["solo"]);
    let (h, solo_body) = response(&responses, "solo");
    assert_eq!(h.status, Status::Ok);
    let solo_body = solo_body.clone();

    // 8 concurrent clients, each on its own connection, each sending a
    // ping, an identical mine, and a freq in one burst.
    std::thread::scope(|s| {
        for i in 0..8 {
            let addr = &addr;
            let solo_body = &solo_body;
            s.spawn(move || {
                let mut c = Client::connect(addr);
                c.send(&format!(
                    "ping id=p{i}\n{mine} id=w{i}\nfreq id=f{i} dataset=d min_support=20 max_edges=4\n"
                ));
                let (p, w, f) = (format!("p{i}"), format!("w{i}"), format!("f{i}"));
                let responses = c.wait(&[&p, &w, &f]);
                for id in [&p, &w, &f] {
                    assert_eq!(
                        responses.iter().filter(|(h, _)| &h.id == id).count(),
                        1,
                        "exactly one response for {id}"
                    );
                }
                let (h, body) = response(&responses, &w);
                assert_eq!(h.status, Status::Ok, "{h:?}");
                assert_eq!(
                    body, solo_body,
                    "concurrent mine on client {i} differs from solo run"
                );
                assert_eq!(response(&responses, &f).0.status, Status::Ok);
            });
        }
    });

    // A sweep and a ping submitted back-to-back on one connection: the
    // pong must arrive first — sweeps execute on workers, control
    // requests answer inline from the transport loop.
    c0.send("sweep id=s dataset=d supports=40,30,20,10 max_edges=5\nping id=pz\n");
    let responses = c0.wait(&["s", "pz"]);
    let pos = |id: &str| responses.iter().position(|(h, _)| h.id == id).expect(id);
    assert!(pos("pz") < pos("s"), "ping starved behind a sweep");
    assert_eq!(response(&responses, "s").0.status, Status::Ok);

    c0.send("shutdown id=bye\n");
    let responses = c0.wait(&["bye"]);
    assert_eq!(response(&responses, "bye").0.status, Status::Ok);
    let status = child.wait().expect("child exits");
    assert!(status.success(), "serve must exit 0 after shutdown");
}

#[test]
fn serve_answers_control_requests_and_reports_errors() {
    let responses = serve_script(
        &["--workers", "2", "--queue", "4"],
        "ping id=p\n\
         mine id=nope dataset=missing\n\
         this is not a request\n\
         stats id=S\n\
         shutdown id=bye\n",
    );
    let (p, _) = response(&responses, "p");
    assert_eq!(p.status, Status::Ok);
    let (nope, _) = response(&responses, "nope");
    assert_eq!(nope.status, Status::Error);
    assert!(nope
        .field("error")
        .expect("error field")
        .contains("unknown dataset"));
    assert!(
        responses
            .iter()
            .any(|(h, _)| h.status == Status::Error && h.id == "-"),
        "malformed line must produce a placeholder-id error response"
    );
    let (s, _) = response(&responses, "S");
    assert_eq!(s.field("datasets"), Some("0"));
    let (bye, _) = response(&responses, "bye");
    assert_eq!(bye.status, Status::Ok);
}

/// Spawn `graphsig serve --tcp 127.0.0.1:0 <extra>` and return the child
/// plus the address it reported on stderr.
fn spawn_tcp(extra_args: &[&str]) -> (std::process::Child, String) {
    let mut child = graphsig()
        .args(["serve", "--tcp", "127.0.0.1:0"])
        .args(extra_args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn graphsig serve --tcp");
    let mut banner = String::new();
    std::io::BufReader::new(child.stderr.take().expect("piped stderr"))
        .read_line(&mut banner)
        .expect("read listen banner");
    let addr = banner
        .trim()
        .rsplit("listening on ")
        .next()
        .expect("address in banner")
        .to_string();
    (child, addr)
}

/// Read from `stream` until EOF or `deadline`; returns the bytes and
/// whether EOF was observed.
fn drain(stream: &mut std::net::TcpStream, deadline: std::time::Instant) -> (Vec<u8>, bool) {
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(100)))
        .expect("read timeout");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while std::time::Instant::now() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) => return (buf, true),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return (buf, true),
        }
    }
    (buf, false)
}

#[test]
fn tcp_auth_token_gates_every_op_until_authenticated() {
    let (mut child, addr) = spawn_tcp(&["--auth-token", "s3cret", "--workers", "2"]);

    // Unauthenticated requests are rejected structured, connection open.
    let mut c = Client::connect(&addr);
    c.send("ping id=p1\nauth id=bad token=wrong\nauth id=good token=s3cret\nping id=p2\n");
    let responses = c.wait(&["p1", "bad", "good", "p2"]);
    let (p1, _) = response(&responses, "p1");
    assert_eq!(p1.status, Status::Error);
    assert_eq!(p1.field("code"), Some("unauthorized"));
    let (bad, _) = response(&responses, "bad");
    assert_eq!(bad.status, Status::Error);
    let (good, _) = response(&responses, "good");
    assert_eq!(good.status, Status::Ok, "{good:?}");
    let (p2, _) = response(&responses, "p2");
    assert_eq!(p2.status, Status::Ok, "authenticated ping must pass");

    // A second connection starts unauthenticated again.
    let mut c2 = Client::connect(&addr);
    c2.send("stats id=s\n");
    let responses = c2.wait(&["s"]);
    assert_eq!(response(&responses, "s").0.status, Status::Error);

    c.send("shutdown id=bye\n");
    c.wait(&["bye"]);
    assert!(child.wait().expect("child exits").success());
}

#[test]
fn stdio_transport_is_exempt_from_auth() {
    // Local stdin/stdout is trusted: no auth handshake required even
    // with --auth-token configured.
    let responses = serve_script(
        &["--auth-token", "s3cret", "--workers", "2"],
        "ping id=p\nshutdown id=bye\n",
    );
    assert_eq!(response(&responses, "p").0.status, Status::Ok);
}

#[test]
fn tcp_idle_timeout_reaps_silent_connections_not_active_requests() {
    let (mut child, addr) = spawn_tcp(&[
        "--workers",
        "2",
        "--idle-timeout-ms",
        "300",
        "--handshake-timeout-ms",
        "300",
    ]);

    // Never sends a byte: the handshake deadline reaps it.
    let mut dead = std::net::TcpStream::connect(&addr).expect("connect");
    // Sends one ping then goes silent: the idle deadline reaps it.
    let mut idle = std::net::TcpStream::connect(&addr).expect("connect");
    idle.write_all(b"ping id=i\n").expect("write");

    // Keeps a request in flight across the idle window: never dropped.
    let mut active = Client::connect(&addr);
    active.send("load id=L dataset=d gen=aids count=150 seed=5\n");
    let responses = active.wait(&["L"]);
    assert_eq!(response(&responses, "L").0.status, Status::Ok);
    active.send("mine id=M dataset=d min_freq=0.04 max_pvalue=0.05 radius=3\n");
    let responses = active.wait(&["M"]);
    assert_eq!(
        response(&responses, "M").0.status,
        Status::Ok,
        "in-flight work must defer the idle reaper"
    );

    let reap_deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let (_, eof) = drain(&mut dead, reap_deadline);
    assert!(
        eof,
        "silent connection must be reaped by the handshake deadline"
    );
    let (buf, eof) = drain(&mut idle, reap_deadline);
    assert!(eof, "idle connection must be reaped by the idle deadline");
    assert!(
        String::from_utf8_lossy(&buf).contains("id=i op=ping status=ok"),
        "idle client's one request was answered before the reap"
    );

    active.send("shutdown id=bye\n");
    active.wait(&["bye"]);
    assert!(child.wait().expect("child exits").success());
}

#[test]
fn client_dropped_at_write_buffer_cap_never_sees_a_lying_frame() {
    // A client that stops reading while responses stream at it is
    // disconnected once its buffered output hits --max-write-buf. The
    // byte prefix it did receive must split into complete frames plus a
    // visibly truncated tail — never a frame that parses as complete
    // with payload bytes missing.
    // --queue must admit the whole burst: busy rejections are tiny and
    // would keep the response volume under what kernel buffers absorb.
    let (mut child, addr) = spawn_tcp(&[
        "--workers",
        "2",
        "--queue",
        "1024",
        "--max-write-buf",
        "4096",
    ]);

    let mut setup = Client::connect(&addr);
    setup.send("load id=L dataset=d gen=aids count=200 seed=7\n");
    let responses = setup.wait(&["L"]);
    assert_eq!(response(&responses, "L").0.status, Status::Ok);

    // 400 coalesced mines at ~16 KiB per response: ~6 MiB of output,
    // comfortably past what loopback kernel buffers can absorb for a
    // reader that never reads, so the server's write side must block and
    // the 4 KiB userspace cap engages.
    let mut slow = std::net::TcpStream::connect(&addr).expect("connect");
    let mut burst = String::new();
    for i in 0..400 {
        burst.push_str(&format!(
            "mine id=s{i} dataset=d min_freq=0.02 max_pvalue=0.1 radius=4\n"
        ));
    }
    slow.write_all(burst.as_bytes()).expect("send burst");
    // Do not read until the server has mined and shed the connection;
    // then collect whatever prefix was delivered.
    std::thread::sleep(std::time::Duration::from_secs(5));
    let (buf, eof) = drain(
        &mut slow,
        std::time::Instant::now() + std::time::Duration::from_secs(60),
    );
    assert!(eof, "slow client must be dropped by backpressure");
    let (complete, truncated_tail) =
        graphsig_server::chaos::parse_prefix(&buf).expect("no lying complete frame in prefix");
    // The drop happens mid-stream: we observed *some* bytes and not all
    // 400 responses.
    assert!(
        complete < 400,
        "cap did not engage: all {complete} responses delivered (tail {truncated_tail})"
    );

    setup.send("shutdown id=bye\n");
    setup.wait(&["bye"]);
    assert!(child.wait().expect("child exits").success());
}
