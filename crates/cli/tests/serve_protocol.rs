//! Protocol-level tests of `graphsig serve` as a real child process on
//! stdio: mine responses must be byte-identical to the one-shot CLI,
//! warm requests must hit the shared cache, and EOF must drain cleanly.

use std::io::{Read, Write};
use std::process::{Command, Stdio};

use graphsig_server::protocol::parse_response_stream;
use graphsig_server::{ResponseHeader, Status};

fn graphsig() -> Command {
    Command::new(env!("CARGO_BIN_EXE_graphsig"))
}

/// Write `script` to a `graphsig serve` child's stdin, close it, and
/// parse the full response stream from its stdout.
fn serve_script(extra_args: &[&str], script: &str) -> Vec<(ResponseHeader, Vec<u8>)> {
    let mut child = graphsig()
        .arg("serve")
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn graphsig serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(script.as_bytes())
        .expect("write request script");
    // stdin drops closed here: EOF after the last request.
    let mut stdout = Vec::new();
    child
        .stdout
        .take()
        .expect("piped stdout")
        .read_to_end(&mut stdout)
        .expect("read responses");
    let status = child.wait().expect("child exits");
    assert!(status.success(), "serve must exit 0 on clean EOF");
    parse_response_stream(&stdout).expect("well-framed response stream")
}

fn response<'a>(
    responses: &'a [(ResponseHeader, Vec<u8>)],
    id: &str,
) -> &'a (ResponseHeader, Vec<u8>) {
    responses
        .iter()
        .find(|(h, _)| h.id == id)
        .unwrap_or_else(|| panic!("no response for {id}"))
}

#[test]
fn server_mine_is_byte_identical_to_one_shot_cli() {
    // One-shot CLI run: generate a dataset file, mine it, keep stdout.
    let dir = std::env::temp_dir().join(format!("graphsig-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("db.txt");
    let gen = graphsig()
        .args(["generate", "aids", "80", "--seed", "11"])
        .output()
        .expect("generate");
    assert!(gen.status.success());
    std::fs::write(&file, &gen.stdout).expect("write dataset");
    let mine = graphsig()
        .args([
            "mine",
            file.to_str().expect("utf-8 path"),
            "--min-freq",
            "0.05",
            "--max-pvalue",
            "0.05",
            "--radius",
            "3",
        ])
        .output()
        .expect("one-shot mine");
    assert!(mine.status.success());
    let one_shot = mine.stdout;

    // Same mine through the server: load the same file, ask twice (cold
    // then warm), plus a step-budgeted request for the bypass path.
    let script = format!(
        "load id=L dataset=d path={}\n\
         mine id=cold dataset=d min_freq=0.05 max_pvalue=0.05 radius=3\n\
         mine id=warm dataset=d min_freq=0.05 max_pvalue=0.05 radius=3\n\
         mine id=steps dataset=d min_freq=0.05 max_pvalue=0.05 radius=3 max_steps=50\n\
         stats id=S dataset=d\n",
        file.to_str().expect("utf-8 path")
    );
    let responses = serve_script(&[], &script);
    std::fs::remove_dir_all(&dir).ok();

    let (l, _) = response(&responses, "L");
    assert_eq!(l.status, Status::Ok, "load: {l:?}");
    let (cold, cold_body) = response(&responses, "cold");
    assert_eq!(cold.status, Status::Ok);
    assert_eq!(
        cold_body, &one_shot,
        "server mine payload differs from one-shot CLI stdout"
    );
    let (warm, warm_body) = response(&responses, "warm");
    assert_eq!(warm.field("cached"), Some("hit"), "{warm:?}");
    assert_eq!(warm_body, &one_shot, "cache hit changed the bytes");
    let (steps, _) = response(&responses, "steps");
    assert_eq!(steps.field("cached"), Some("bypass"));
    let (stats, _) = response(&responses, "S");
    assert_eq!(stats.field("prepared_hits"), Some("1"), "{stats:?}");
    assert_eq!(stats.field("prepared_bypasses"), Some("1"));
}

#[test]
fn serve_answers_control_requests_and_reports_errors() {
    let responses = serve_script(
        &["--workers", "2", "--queue", "4"],
        "ping id=p\n\
         mine id=nope dataset=missing\n\
         this is not a request\n\
         stats id=S\n\
         shutdown id=bye\n",
    );
    let (p, _) = response(&responses, "p");
    assert_eq!(p.status, Status::Ok);
    let (nope, _) = response(&responses, "nope");
    assert_eq!(nope.status, Status::Error);
    assert!(nope
        .field("error")
        .expect("error field")
        .contains("unknown dataset"));
    assert!(
        responses
            .iter()
            .any(|(h, _)| h.status == Status::Error && h.id == "-"),
        "malformed line must produce a placeholder-id error response"
    );
    let (s, _) = response(&responses, "S");
    assert_eq!(s.field("datasets"), Some("0"));
    let (bye, _) = response(&responses, "bye");
    assert_eq!(bye.status, Status::Ok);
}
