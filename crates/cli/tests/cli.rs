//! End-to-end tests of the `graphsig` binary.

use std::process::Command;

fn graphsig() -> Command {
    Command::new(env!("CARGO_BIN_EXE_graphsig"))
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = graphsig().args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_lists_commands() {
    let (_, err, ok) = run(&["--help"]);
    assert!(ok);
    for cmd in ["mine", "stats", "classify", "generate"] {
        assert!(err.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_fails() {
    let (_, err, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn generate_stats_mine_roundtrip() {
    let dir = std::env::temp_dir().join(format!("graphsig-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("tiny.txt");

    // generate
    let (out, err, ok) = run(&["generate", "aids", "120", "--seed", "5"]);
    assert!(ok, "generate failed: {err}");
    assert!(out.starts_with("t # 0"));
    assert!(err.contains("120 molecules"));
    std::fs::write(&file, &out).unwrap();

    // stats
    let (out, _, ok) = run(&["stats", file.to_str().unwrap()]);
    assert!(ok);
    assert!(out.contains("graphs:               120"));
    assert!(out.contains("atom coverage"));

    // mine (fast thresholds) — output must itself be parseable transactions
    let (out, err, ok) = run(&[
        "mine",
        file.to_str().unwrap(),
        "--min-freq",
        "0.2",
        "--max-pvalue",
        "0.05",
        "--radius",
        "3",
        "--top",
        "3",
    ]);
    assert!(ok, "mine failed: {err}");
    assert!(err.contains("significant subgraphs"));
    if out.contains("t # 0") {
        graphsig_graph::parse_transactions(
            &out.lines()
                .filter(|l| !l.starts_with('#'))
                .collect::<Vec<_>>()
                .join("\n"),
        )
        .expect("mine output parses as transactions");
    }

    // classify: split then score the positives against themselves
    let prefix = dir.join("split");
    let (_, err, ok) = run(&[
        "generate",
        "screen",
        "PC-3",
        "0.01",
        "--split",
        prefix.to_str().unwrap(),
    ]);
    assert!(ok, "split generate failed: {err}");
    let pos = format!("{}.pos.txt", prefix.to_str().unwrap());
    let neg = format!("{}.neg.txt", prefix.to_str().unwrap());
    let (out, err, ok) = run(&["classify", &pos, &neg, &pos, "--min-freq", "0.2"]);
    assert!(ok, "classify failed: {err}");
    assert!(out.starts_with("graph_id"));
    assert!(out.lines().count() > 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_is_a_clean_error() {
    let (_, err, ok) = run(&["stats", "/nonexistent/file.txt"]);
    assert!(!ok);
    assert!(err.contains("cannot read"));
}

#[test]
fn bad_flag_value_is_a_clean_error() {
    let (_, err, ok) = run(&["mine", "whatever.txt", "--min-freq", "abc"]);
    assert!(!ok);
    assert!(err.contains("bad value") || err.contains("cannot read"));
}
