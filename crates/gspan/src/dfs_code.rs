//! DFS codes: gSpan's canonical pattern representation.
//!
//! A DFS code is a sequence of five-tuples `(i, j, l_i, l_(ij), l_j)` where
//! `i` and `j` are DFS discovery indices. An edge with `i < j` is a
//! *forward* edge (discovers vertex `j`); an edge with `i > j` is a
//! *backward* edge (closes a cycle to an earlier vertex). gSpan's total
//! order on codes makes the lexicographically minimum code a canonical form
//! for connected labeled graphs.

use graphsig_graph::{EdgeLabel, Graph, GraphBuilder, NodeLabel};

/// One DFS-code edge `(from, to, from_label, edge_label, to_label)`.
///
/// `from`/`to` are DFS discovery indices, not graph node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DfsEdge {
    /// DFS index of the source endpoint.
    pub from: u32,
    /// DFS index of the destination endpoint.
    pub to: u32,
    /// Label of the source vertex.
    pub from_label: NodeLabel,
    /// Label of the edge.
    pub edge_label: EdgeLabel,
    /// Label of the destination vertex.
    pub to_label: NodeLabel,
}

impl DfsEdge {
    /// Construct an edge tuple.
    pub fn new(
        from: u32,
        to: u32,
        from_label: NodeLabel,
        edge_label: EdgeLabel,
        to_label: NodeLabel,
    ) -> Self {
        Self {
            from,
            to,
            from_label,
            edge_label,
            to_label,
        }
    }

    /// Forward edges discover a new vertex: `from < to`.
    #[inline]
    pub fn is_forward(&self) -> bool {
        self.from < self.to
    }
}

/// Compare two *extension candidates of the same parent code* in gSpan
/// order. Both edges either close a cycle at the rightmost vertex
/// (backward, same `from`) or grow a new vertex with the same `to` index
/// (forward). Backward sorts before forward; among backward edges the
/// smaller destination index then edge label wins; among forward edges the
/// *deeper* source on the rightmost path (larger `from`) then labels win.
///
/// This mirrors the neighborhood-restricted DFS lexicographic order of the
/// gSpan paper and is the order in which children of a search node must be
/// visited for the minimality pruning to be sound.
pub fn extension_order(a: &DfsEdge, b: &DfsEdge) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_forward(), b.is_forward()) {
        (false, true) => Ordering::Less,
        (true, false) => Ordering::Greater,
        (false, false) => (a.to, a.edge_label).cmp(&(b.to, b.edge_label)),
        (true, true) => (std::cmp::Reverse(a.from), a.edge_label, a.to_label).cmp(&(
            std::cmp::Reverse(b.from),
            b.edge_label,
            b.to_label,
        )),
    }
}

/// A DFS code: an edge sequence representing one connected labeled graph.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct DfsCode {
    edges: Vec<DfsEdge>,
}

impl DfsCode {
    /// The empty code.
    pub fn new() -> Self {
        Self::default()
    }

    /// A code starting from one edge `(0, 1, la, le, lb)`.
    pub fn from_initial(la: NodeLabel, le: EdgeLabel, lb: NodeLabel) -> Self {
        Self {
            edges: vec![DfsEdge::new(0, 1, la, le, lb)],
        }
    }

    /// The edge sequence.
    pub fn edges(&self) -> &[DfsEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the code is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Append an edge (used during pattern growth).
    pub fn push(&mut self, e: DfsEdge) {
        self.edges.push(e);
    }

    /// Remove the last edge (backtracking).
    pub fn pop(&mut self) -> Option<DfsEdge> {
        self.edges.pop()
    }

    /// Number of vertices described by the code.
    pub fn node_count(&self) -> usize {
        if self.edges.is_empty() {
            return 0;
        }
        self.edges
            .iter()
            .map(|e| e.from.max(e.to) as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// DFS index of the rightmost vertex (the most recently discovered one).
    pub fn rightmost_vertex(&self) -> u32 {
        debug_assert!(!self.edges.is_empty());
        self.node_count() as u32 - 1
    }

    /// The rightmost path as positions into the edge sequence, ordered from
    /// the edge that discovered the rightmost vertex down to the edge
    /// leaving the root. `code.edges()[rmpath[0]].to` is the rightmost
    /// vertex and `code.edges()[rmpath.last()].from == 0`.
    pub fn rightmost_path(&self) -> Vec<usize> {
        let mut rmpath = Vec::new();
        let mut prev_from = u32::MAX;
        for (k, e) in self.edges.iter().enumerate().rev() {
            if e.is_forward() && (rmpath.is_empty() || e.to == prev_from) {
                prev_from = e.from;
                rmpath.push(k);
            }
        }
        rmpath
    }

    /// Vertex labels by DFS index.
    pub fn vertex_labels(&self) -> Vec<NodeLabel> {
        let mut labels = vec![NodeLabel::MAX; self.node_count()];
        for e in &self.edges {
            labels[e.from as usize] = e.from_label;
            labels[e.to as usize] = e.to_label;
        }
        labels
    }

    /// Materialize the code as a [`Graph`] whose node ids are DFS indices.
    pub fn to_graph(&self) -> Graph {
        let labels = self.vertex_labels();
        let mut b = GraphBuilder::with_capacity(labels.len(), self.edges.len());
        for l in &labels {
            debug_assert_ne!(*l, NodeLabel::MAX, "disconnected DFS index");
            b.add_node(*l);
        }
        for e in &self.edges {
            b.add_edge(e.from, e.to, e.edge_label);
        }
        b.build()
    }
}

impl std::fmt::Display for DfsCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(
                f,
                "({},{},{},{},{})",
                e.from, e.to, e.from_label, e.edge_label, e.to_label
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    /// Code of a triangle 0-1-2-0.
    fn triangle_code() -> DfsCode {
        let mut c = DfsCode::from_initial(0, 9, 1);
        c.push(DfsEdge::new(1, 2, 1, 9, 2));
        c.push(DfsEdge::new(2, 0, 2, 9, 0));
        c
    }

    #[test]
    fn counting_and_rightmost_vertex() {
        let c = triangle_code();
        assert_eq!(c.len(), 3);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.rightmost_vertex(), 2);
    }

    #[test]
    fn rightmost_path_of_path_code() {
        // Straight path 0-1-2: both edges are on the rightmost path.
        let mut c = DfsCode::from_initial(0, 1, 0);
        c.push(DfsEdge::new(1, 2, 0, 1, 0));
        assert_eq!(c.rightmost_path(), vec![1, 0]);
    }

    #[test]
    fn rightmost_path_skips_branches() {
        // Star: 0-1, 0-2, 0-3. The rightmost path is just the edge to 3.
        let mut c = DfsCode::from_initial(5, 1, 5);
        c.push(DfsEdge::new(0, 2, 5, 1, 5));
        c.push(DfsEdge::new(0, 3, 5, 1, 5));
        assert_eq!(c.rightmost_path(), vec![2]);
    }

    #[test]
    fn rightmost_path_ignores_backward_edges() {
        let c = triangle_code();
        // Backward edge (2,0) is not on the rightmost path.
        assert_eq!(c.rightmost_path(), vec![1, 0]);
    }

    #[test]
    fn to_graph_reconstructs_structure() {
        let g = triangle_code().to_graph();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.node_labels(), &[0, 1, 2]);
        assert!(g.is_connected());
    }

    #[test]
    fn extension_order_backward_before_forward() {
        let back = DfsEdge::new(2, 0, 9, 1, 9);
        let fwd = DfsEdge::new(2, 3, 9, 0, 0);
        assert_eq!(extension_order(&back, &fwd), Ordering::Less);
        assert_eq!(extension_order(&fwd, &back), Ordering::Greater);
    }

    #[test]
    fn extension_order_backward_by_destination_then_label() {
        let b0 = DfsEdge::new(3, 0, 9, 5, 9);
        let b1 = DfsEdge::new(3, 1, 9, 2, 9);
        assert_eq!(extension_order(&b0, &b1), Ordering::Less);
        let b1a = DfsEdge::new(3, 1, 9, 1, 9);
        assert_eq!(extension_order(&b1a, &b1), Ordering::Less);
    }

    #[test]
    fn extension_order_forward_deeper_source_first() {
        // Extension from the rightmost vertex (from=2) beats one from
        // shallower on the path (from=0), regardless of labels.
        let deep = DfsEdge::new(2, 3, 9, 9, 9);
        let shallow = DfsEdge::new(0, 3, 9, 0, 0);
        assert_eq!(extension_order(&deep, &shallow), Ordering::Less);
        // Same source: edge label then target label decide.
        let a = DfsEdge::new(2, 3, 9, 1, 5);
        let b = DfsEdge::new(2, 3, 9, 1, 6);
        assert_eq!(extension_order(&a, &b), Ordering::Less);
    }

    #[test]
    fn display_is_readable() {
        let c = DfsCode::from_initial(1, 2, 3);
        assert_eq!(c.to_string(), "(0,1,1,2,3)");
    }
}
