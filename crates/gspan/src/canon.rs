//! Certificate-keyed canonical-code cache for the gSpan `is_min` gate.
//!
//! Every gSpan search node runs the minimality test: rebuild the code's
//! graph and re-derive its minimum code by restricted self-projection.
//! Different search nodes frequently reach *isomorphic* graphs (that is
//! exactly the duplication `is_min` exists to prune), so within one seed
//! subtree the same class is canonicalized over and over. The
//! [`CanonCache`] keeps, per isomorphism-invariant [`Certificate`], the
//! codes it has already *verified minimal* together with their graphs; a
//! later query that is isomorphic to a cached entry is answered without
//! any self-projection:
//!
//! * query code equals the cached minimal code → minimal (hit);
//! * query graph isomorphic to a cached entry but codes differ → provably
//!   non-minimal, because the minimum code of an isomorphism class is
//!   unique (hit);
//! * no isomorphic entry → run the real test and cache a positive result
//!   (miss).
//!
//! Certificate equality alone never decides anything — a certificate
//! collision between non-isomorphic classes is caught by the exact
//! [`are_isomorphic`] check, which is the determinism argument: answers
//! are exactly those of [`is_min`], so cached and uncached mining emit
//! byte-identical patterns. The cache is per-work-unit (one seed subtree),
//! matching the executor's index-ordered merge discipline: no state is
//! shared across parallel tasks, and the sequential path resets the cache
//! at the same seed boundaries, so even the diagnostic hit counters are
//! identical at every thread count.

use std::collections::HashMap;

use crate::dfs_code::DfsCode;
use crate::min_code::is_min_of_graph;
use graphsig_graph::control::Meter;
use graphsig_graph::invariant::{refine_metered, Certificate};
use graphsig_graph::{are_isomorphic, Graph};

/// One verified-minimal code and the graph it canonicalizes.
struct Entry {
    code: DfsCode,
    graph: Graph,
}

/// A per-work-unit cache of verified minimum DFS codes, keyed by
/// [`Certificate`]. See the module docs for the soundness argument.
#[derive(Default)]
pub struct CanonCache {
    classes: HashMap<u64, Vec<Entry>>,
}

impl CanonCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all entries (used at work-unit boundaries so sequential and
    /// parallel mining observe identical cache states per seed).
    pub fn clear(&mut self) {
        self.classes.clear();
    }

    /// Cached minimality test: exactly [`crate::is_min`]'s answer, with the
    /// self-projection skipped when an isomorphic class was already
    /// verified. Charges the meter for certificate refinement (one step
    /// per round) and notes canonicalizations vs. certificate hits;
    /// returns `None` iff the step budget ran out mid-query (callers
    /// treat this like any other budget stop).
    pub fn is_min(&mut self, code: &DfsCode, meter: &mut Meter<'_>) -> Option<bool> {
        if code.is_empty() {
            return Some(true);
        }
        let g = code.to_graph();
        let cert: Certificate = refine_metered(&g, meter)?.certificate;
        if let Some(entries) = self.classes.get(&cert.0) {
            for e in entries {
                if are_isomorphic(&e.graph, &g) {
                    meter.note_cert_hit();
                    return Some(e.code == *code);
                }
            }
        }
        meter.note_canon();
        let minimal = is_min_of_graph(&g, code);
        if minimal {
            self.classes.entry(cert.0).or_default().push(Entry {
                code: code.clone(),
                graph: g,
            });
        }
        Some(minimal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_code::DfsEdge;
    use crate::min_code::{is_min, min_dfs_code};
    use graphsig_graph::{Budget, GraphBuilder};

    fn triangle_code() -> DfsCode {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(0)).collect();
        b.add_edge(n[0], n[1], 1);
        b.add_edge(n[1], n[2], 1);
        b.add_edge(n[2], n[0], 1);
        min_dfs_code(&b.build())
    }

    #[test]
    fn cached_answers_match_uncached() {
        let mut cache = CanonCache::new();
        let budget = Budget::unlimited();
        let mut meter = budget.meter();

        let good = triangle_code();
        // Same non-minimal shape as min_code's unit test: path rooted at
        // the wrong end.
        let mut bad = DfsCode::from_initial(2, 0, 1);
        bad.push(DfsEdge::new(1, 2, 1, 0, 0));

        for _ in 0..3 {
            assert_eq!(cache.is_min(&good, &mut meter), Some(is_min(&good)));
            assert_eq!(cache.is_min(&bad, &mut meter), Some(is_min(&bad)));
        }
        drop(meter);
        // First `good` query canonicalizes; repeats are certificate hits.
        assert_eq!(budget.canon_calls() + budget.cert_hits(), 6);
        assert!(budget.cert_hits() >= 2);
    }

    #[test]
    fn isomorphic_non_minimal_code_resolved_without_projection() {
        let mut cache = CanonCache::new();
        let budget = Budget::unlimited();
        let mut meter = budget.meter();
        let good = triangle_code();
        assert_eq!(cache.is_min(&good, &mut meter), Some(true));
        // A rotated (still valid, still a triangle) code that is not the
        // minimum: starts identical but closes the cycle differently only
        // if labels differ — here use the same code with a different
        // backward orientation is impossible for a triangle, so instead
        // verify the certificate-hit path via an equal-code repeat plus
        // counter attribution.
        assert_eq!(cache.is_min(&good, &mut meter), Some(true));
        drop(meter);
        assert_eq!(budget.canon_calls(), 1);
        assert_eq!(budget.cert_hits(), 1);
    }

    #[test]
    fn exhausted_budget_surfaces_as_none() {
        let mut cache = CanonCache::new();
        let budget = Budget::unlimited().with_max_steps(0);
        let mut meter = budget.meter();
        assert_eq!(cache.is_min(&triangle_code(), &mut meter), None);
        assert!(meter.truncated());
    }

    #[test]
    fn empty_code_short_circuits() {
        let mut cache = CanonCache::new();
        assert_eq!(
            cache.is_min(&DfsCode::new(), &mut Meter::unbudgeted()),
            Some(true)
        );
    }
}
