//! Mined patterns and closed / maximal post-filters.

use crate::dfs_code::DfsCode;
use graphsig_graph::{Graph, MatcherKind, MultiMatcher};

/// A frequent subgraph produced by a miner.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Canonical DFS code (dedup key).
    pub code: DfsCode,
    /// The pattern graph (node ids = DFS indices).
    pub graph: Graph,
    /// Number of distinct database graphs containing the pattern.
    pub support: usize,
    /// Ids of the supporting graphs, ascending.
    pub gids: Vec<u32>,
}

impl Pattern {
    /// Relative frequency given the database size.
    pub fn frequency(&self, db_size: usize) -> f64 {
        if db_size == 0 {
            0.0
        } else {
            self.support as f64 / db_size as f64
        }
    }
}

/// Keep only *closed* patterns: those with no super-pattern of equal
/// support. (CloseGraph output semantics, by post-filtering.)
pub fn filter_closed(patterns: Vec<Pattern>) -> Vec<Pattern> {
    filter_closed_with(patterns, MatcherKind::default())
}

/// [`filter_closed`] with an explicit isomorphism engine for the
/// containment tests.
pub fn filter_closed_with(patterns: Vec<Pattern>, matcher: MatcherKind) -> Vec<Pattern> {
    retain_without_superpattern(patterns, true, matcher)
}

/// Keep only *maximal* patterns: those that are not a subgraph of any other
/// frequent pattern. This is the `MaximalFSM` output of GraphSig's
/// Algorithm 2 — "a frequent subgraph is maximal if it is not a subgraph of
/// any other frequent subgraph".
pub fn filter_maximal(patterns: Vec<Pattern>) -> Vec<Pattern> {
    filter_maximal_with(patterns, MatcherKind::default())
}

/// [`filter_maximal`] with an explicit isomorphism engine for the
/// containment tests.
pub fn filter_maximal_with(patterns: Vec<Pattern>, matcher: MatcherKind) -> Vec<Pattern> {
    retain_without_superpattern(patterns, false, matcher)
}

/// Shared filter: drop `p` when some other pattern strictly contains it
/// (and, for the closed variant, additionally has the same support).
///
/// Processing patterns in descending edge count and comparing each
/// candidate only against the *kept* set is sound: containment is
/// transitive and support is anti-monotone, so any strict super-pattern
/// witnessing that `p` is non-maximal (or non-closed) is itself contained
/// in a kept maximal (closed) pattern that also witnesses it. This keeps
/// the filter O(|patterns| × |kept|) instead of O(|patterns|²) — the kept
/// set is tiny for the high-threshold region sets of Algorithm 2.
fn retain_without_superpattern(
    patterns: Vec<Pattern>,
    same_support_only: bool,
    matcher: MatcherKind,
) -> Vec<Pattern> {
    let mut order: Vec<usize> = (0..patterns.len()).collect();
    order.sort_by(|&a, &b| {
        patterns[b]
            .graph
            .edge_count()
            .cmp(&patterns[a].graph.edge_count())
    });
    let mut kept: Vec<usize> = Vec::new();
    for &i in &order {
        let p = &patterns[i];
        let pe = p.graph.edge_count();
        // One matcher for p against every kept super-pattern candidate:
        // the pattern-side compilation is shared across the kept set.
        let mut m = MultiMatcher::with_kind(&p.graph, matcher);
        let dominated = kept.iter().any(|&k| {
            let q = &patterns[k];
            if q.graph.edge_count() <= pe {
                return false;
            }
            if same_support_only && q.support != p.support {
                return false;
            }
            // A super-pattern's support set is a subset of p's; cheap gid
            // containment check before the isomorphism test.
            if !is_subset(&p.gids, &q.gids) {
                return false;
            }
            m.exists_in(&q.graph)
        });
        if !dominated {
            kept.push(i);
        }
    }
    kept.sort_unstable();
    let keep_set: std::collections::HashSet<usize> = kept.into_iter().collect();
    patterns
        .into_iter()
        .enumerate()
        .filter_map(|(i, p)| keep_set.contains(&i).then_some(p))
        .collect()
}

/// Whether sorted slice `sub` is a subset of sorted slice `sup` — used with
/// the closed filter where equal support implies equal gid sets.
fn is_subset(sup: &[u32], sub: &[u32]) -> bool {
    let mut it = sup.iter();
    'outer: for x in sub {
        for y in it.by_ref() {
            if y == x {
                continue 'outer;
            }
            if y > x {
                return false;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{GSpan, MinerConfig};
    use graphsig_graph::parse_transactions;

    /// Database where the path C-C-O is frequent; its sub-edges are not
    /// closed (same support as the path) and not maximal.
    fn db() -> graphsig_graph::GraphDb {
        parse_transactions(
            "t # 0\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n",
        )
        .unwrap()
    }

    #[test]
    fn closed_filter_drops_equal_support_subpatterns() {
        let pats = GSpan::new(MinerConfig::new(2)).mine(&db());
        assert_eq!(pats.len(), 3); // C-C, C-O, C-C-O
        let closed = filter_closed(pats);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].graph.edge_count(), 2);
    }

    #[test]
    fn closed_keeps_subpattern_with_strictly_higher_support() {
        // C-C alone in a third graph: support(C-C)=3 > support(C-C-O)=2,
        // so C-C is closed too.
        let db = parse_transactions(
            "t # 0\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 2\nv 0 C\nv 1 C\ne 0 1 s\n",
        )
        .unwrap();
        let closed = GSpan::new(MinerConfig::new(2)).mine_closed(&db);
        let mut sizes: Vec<_> = closed.iter().map(|p| p.graph.edge_count()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2]); // C-C (support 3) and C-C-O (support 2)
        assert!(closed
            .iter()
            .any(|p| p.support == 3 && p.graph.edge_count() == 1));
    }

    #[test]
    fn maximal_filter_keeps_only_top_patterns() {
        let maximal = GSpan::new(MinerConfig::new(2)).mine_maximal(&db());
        assert_eq!(maximal.len(), 1);
        assert_eq!(maximal[0].graph.edge_count(), 2);
        assert_eq!(maximal[0].support, 2);
    }

    #[test]
    fn maximal_drops_subpatterns_even_with_higher_support() {
        let db = parse_transactions(
            "t # 0\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 2\nv 0 C\nv 1 C\ne 0 1 s\n",
        )
        .unwrap();
        let maximal = GSpan::new(MinerConfig::new(2)).mine_maximal(&db);
        // C-C has support 3 but is still inside C-C-O → not maximal.
        assert_eq!(maximal.len(), 1);
        assert_eq!(maximal[0].graph.edge_count(), 2);
    }

    #[test]
    fn filter_variants_agree_across_matcher_kinds() {
        let pats = GSpan::new(MinerConfig::new(2)).mine(&db());
        for kind in [MatcherKind::Vf2, MatcherKind::Fast] {
            let closed = filter_closed_with(pats.clone(), kind);
            assert_eq!(closed.len(), filter_closed(pats.clone()).len());
            let maximal = filter_maximal_with(pats.clone(), kind);
            assert_eq!(maximal.len(), filter_maximal(pats.clone()).len());
            for (a, b) in maximal.iter().zip(filter_maximal(pats.clone()).iter()) {
                assert_eq!(a.code, b.code, "kind={kind}");
                assert_eq!(a.gids, b.gids, "kind={kind}");
            }
        }
    }

    #[test]
    fn frequency_helper() {
        let pats = GSpan::new(MinerConfig::new(2)).mine(&db());
        assert!((pats[0].frequency(2) - 1.0).abs() < 1e-12);
        assert_eq!(pats[0].frequency(0), 0.0);
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 2, 3], &[2, 3]));
        assert!(is_subset(&[1, 2, 3], &[]));
        assert!(!is_subset(&[1, 3], &[2]));
        assert!(!is_subset(&[], &[1]));
    }
}
