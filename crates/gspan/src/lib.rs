//! gSpan — graph-based substructure pattern mining (Yan & Han, ICDM 2002).
//!
//! A from-scratch reimplementation of the gSpan frequent-subgraph miner, one
//! of the two baselines GraphSig is evaluated against (Figs. 2, 9, 11 of the
//! paper) and a candidate implementation of the `MaximalFSM` subroutine in
//! Algorithm 2.
//!
//! gSpan explores the pattern space by *pattern growth* over canonical
//! **DFS codes**: each connected labeled subgraph is identified with the
//! lexicographically minimum sequence of DFS edges that can generate it, and
//! the search tree only extends patterns along the rightmost path of their
//! DFS tree. Every search node whose code is not minimal is a duplicate of
//! an already-explored pattern and is pruned. Support counting is performed
//! on *projections* — per-graph embedding lists threaded through the
//! recursion, so no subgraph isomorphism tests are needed during mining.
//!
//! Modules:
//! * [`dfs_code`] — [`DfsEdge`], [`DfsCode`], the gSpan edge order,
//!   rightmost-path computation, and code → graph reconstruction.
//! * [`min_code`] — canonical (minimum) DFS code of a graph and the
//!   incremental `is_min` test with early exit, both pruned by
//!   automorphism-orbit dedup of starting embeddings (byte-identical
//!   output; unpruned reference variants kept for differential tests).
//! * [`canon`] — [`CanonCache`]: certificate-keyed cache of verified
//!   minimal codes that answers repeated `is_min` queries for isomorphic
//!   search nodes without re-running the self-projection.
//! * [`miner`] — the projected pattern-growth search over a [`GraphDb`](graphsig_graph::GraphDb).
//! * [`pattern`] — mined [`Pattern`]s and closed / maximal post-filters.
//!
//! # Example
//!
//! ```
//! use graphsig_graph::parse_transactions;
//! use graphsig_gspan::{GSpan, MinerConfig};
//!
//! let db = parse_transactions(
//!     "t # 0\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
//!      t # 1\nv 0 C\nv 1 C\nv 2 N\ne 0 1 s\ne 1 2 s\n",
//! )
//! .unwrap();
//! let patterns = GSpan::new(MinerConfig::new(2)).mine(&db);
//! // The C-C edge is frequent in both graphs (gSpan patterns have >= 1 edge).
//! assert!(patterns.iter().any(|p| p.graph.edge_count() == 1 && p.support == 2));
//! ```

pub mod canon;
pub mod dfs_code;
mod extend;
pub mod min_code;
pub mod miner;
pub mod pattern;

pub use canon::CanonCache;
pub use dfs_code::{DfsCode, DfsEdge};
pub use min_code::{is_min, is_min_unpruned, min_dfs_code, min_dfs_code_unpruned};
pub use miner::{GSpan, MinerConfig};
pub use pattern::{
    filter_closed, filter_closed_with, filter_maximal, filter_maximal_with, Pattern,
};
