//! The gSpan pattern-growth miner over a graph database.
//!
//! Support counting uses *projections*: for every pattern (DFS code) on the
//! search path, the miner carries the list of its embeddings in the
//! database, each represented as a persistent chain of steps shared with its
//! parent via `Rc`. Extending a pattern never rescans the database — it only
//! extends the surviving embeddings.
//!
//! Seeds — the frequent single-edge codes — come from a
//! [`LabelPairIndex`] rather than a database scan, and each seed's DFS
//! subtree is independent of every other's (no state is shared between
//! subtrees of gSpan's search). That independence is what the parallel
//! path exploits: with `threads > 1`, seeds become tasks on the shared
//! deterministic executor ([`graphsig_graph::par`]), each mining its own
//! subtree; the per-seed outputs are merged in seed (key) order, which is
//! exactly the order the sequential search emits, so the mined pattern
//! list is byte-identical for every thread count.

use std::collections::BTreeMap;
use std::rc::Rc;

use crate::canon::CanonCache;
use crate::dfs_code::{extension_order, DfsCode, DfsEdge};
use crate::extend::{enumerate_extensions_framed, ExtFrame};
use crate::min_code::is_min;
use crate::pattern::Pattern;
use graphsig_graph::control::{self, Budget, Completion, Meter, Outcome, StopReason};
use graphsig_graph::{GraphDb, LabelPairEntry, LabelPairIndex, NodeId};

/// Configuration for [`GSpan`].
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Minimum number of distinct graphs a pattern must occur in
    /// (absolute support, `>= 1`).
    pub min_support: usize,
    /// Stop growing patterns beyond this many edges.
    pub max_edges: Option<usize>,
    /// Abort the search after emitting this many patterns (a safety valve
    /// for the low-frequency scalability experiments, where the pattern
    /// space explodes by design).
    pub max_patterns: Option<usize>,
    /// Worker threads for per-seed subtree mining: `1` = sequential
    /// (the default), `0` = auto (one per core). The mined pattern list is
    /// byte-identical for every thread count.
    pub threads: usize,
    /// Resource governance. Each seed subtree is one budget work unit
    /// (fresh step allowance), so step-budget truncation is deterministic
    /// across thread counts; deadline/cancellation are best-effort. See
    /// [`graphsig_graph::control`].
    pub budget: Option<Budget>,
    /// Answer `is_min` through the per-seed certificate-keyed
    /// [`CanonCache`] (the default) instead of re-running the
    /// self-projection at every search node. Mined patterns are
    /// byte-identical either way; the cache only changes how the answer is
    /// computed (and, under a step budget, how refinement work is
    /// metered).
    pub canon_cache: bool,
}

impl MinerConfig {
    /// Config with the given absolute support and no other limits.
    pub fn new(min_support: usize) -> Self {
        Self {
            min_support,
            max_edges: None,
            max_patterns: None,
            threads: 1,
            budget: None,
            canon_cache: true,
        }
    }

    /// Limit pattern size (in edges).
    pub fn with_max_edges(mut self, max_edges: usize) -> Self {
        self.max_edges = Some(max_edges);
        self
    }

    /// Limit the number of emitted patterns.
    pub fn with_max_patterns(mut self, max_patterns: usize) -> Self {
        self.max_patterns = Some(max_patterns);
        self
    }

    /// Set the worker thread count (`0` = auto, `1` = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attach a resource [`Budget`] (deadline, per-seed step allowance,
    /// cancellation).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Enable or disable the certificate-keyed `is_min` cache (on by
    /// default). The uncached path is kept as the differential-testing
    /// reference; output is byte-identical either way.
    pub fn with_canon_cache(mut self, canon_cache: bool) -> Self {
        self.canon_cache = canon_cache;
        self
    }

    /// Convert a relative frequency threshold (e.g. `0.05` = 5%) on a
    /// database of `n` graphs into absolute support, rounding up and never
    /// below 1. This mirrors Definition 1 of the paper
    /// (`mu_0 >= theta |D| / 100` with theta in percent).
    pub fn from_frequency(freq: f64, n: usize) -> Self {
        assert!((0.0..=1.0).contains(&freq), "frequency must be in [0,1]");
        Self::new(((freq * n as f64).ceil() as usize).max(1))
    }
}

/// One step of an embedding: a directed traversal of graph edge `edge`.
struct Step {
    gfrom: NodeId,
    gto: NodeId,
    edge: u32,
    prev: Option<Rc<Step>>,
}

/// An embedding of the current DFS code in graph `gid`.
struct Emb {
    gid: u32,
    last: Rc<Step>,
}

/// Extension key ordered by gSpan's extension order (with a total-order
/// tiebreak on the full tuple, required for `BTreeMap` consistency).
#[derive(PartialEq, Eq)]
struct OrdExt(DfsEdge);

impl Ord for OrdExt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        extension_order(&self.0, &other.0).then_with(|| {
            (
                self.0.from,
                self.0.to,
                self.0.from_label,
                self.0.edge_label,
                self.0.to_label,
            )
                .cmp(&(
                    other.0.from,
                    other.0.to,
                    other.0.from_label,
                    other.0.edge_label,
                    other.0.to_label,
                ))
        })
    }
}

impl PartialOrd for OrdExt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The gSpan miner. See the crate docs for the algorithm outline.
pub struct GSpan {
    cfg: MinerConfig,
}

impl GSpan {
    /// Create a miner with the given configuration.
    pub fn new(cfg: MinerConfig) -> Self {
        assert!(cfg.min_support >= 1, "min_support must be at least 1");
        Self { cfg }
    }

    /// Mine all frequent connected subgraphs with at least one edge.
    pub fn mine(&self, db: &GraphDb) -> Vec<Pattern> {
        self.mine_outcome(db).result
    }

    /// [`mine`](Self::mine), reporting whether the search ran to
    /// completion or was truncated by the configured budget or pattern
    /// cap. Step-budget/pattern-cap truncation is byte-identical across
    /// thread counts; deadline/cancellation truncation is best-effort.
    pub fn mine_outcome(&self, db: &GraphDb) -> Outcome<Vec<Pattern>> {
        self.mine_indexed_outcome(db, &LabelPairIndex::build(db))
    }

    /// [`mine`](Self::mine) with a prebuilt [`LabelPairIndex`] of `db`.
    /// Sharing one index across repeated mining runs (threshold sweeps on
    /// the same database) skips the per-run database scan.
    pub fn mine_indexed(&self, db: &GraphDb, index: &LabelPairIndex) -> Vec<Pattern> {
        self.mine_indexed_outcome(db, index).result
    }

    /// [`mine_indexed`](Self::mine_indexed) with completion reporting; see
    /// [`mine_outcome`](Self::mine_outcome).
    pub fn mine_indexed_outcome(
        &self,
        db: &GraphDb,
        index: &LabelPairIndex,
    ) -> Outcome<Vec<Pattern>> {
        // Seeds: all frequent single-edge codes, ascending by (la, le, lb)
        // key — the order the sequential search visits them.
        let seeds: Vec<&LabelPairEntry> = index.frequent(self.cfg.min_support).collect();
        let threads = graphsig_graph::resolve_threads(self.cfg.threads);

        let (out, truncation) = if threads <= 1 || seeds.len() < 2 {
            // Sequential: one context shared across seeds, so the
            // `max_patterns` cap stops the whole search. The budget meter
            // is still reset per seed (see `mine_seed`), matching the
            // parallel path's per-seed allowance exactly.
            let mut ctx = Ctx::new(db, &self.cfg);
            for entry in &seeds {
                if ctx.stopped {
                    break;
                }
                ctx.mine_seed(entry);
            }
            (ctx.out, ctx.truncation)
        } else {
            // Parallel: each seed's DFS subtree is one task. A task caps
            // its own output at `max_patterns` — only the first
            // `max_patterns` results can survive the global truncation
            // below, so any task output beyond that is unreachable.
            // Merging in seed order and truncating reproduces the
            // sequential emission order exactly: the sequential search
            // emits seed subtrees back to back in the same seed order,
            // stopping at the same global cap.
            let per_seed: Vec<(Vec<Pattern>, Option<StopReason>)> =
                graphsig_graph::par_map(threads, &seeds, |entry| {
                    let mut ctx = Ctx::new(db, &self.cfg);
                    ctx.mine_seed(entry);
                    (ctx.out, ctx.truncation)
                });
            let mut out: Vec<Pattern> =
                Vec::with_capacity(per_seed.iter().map(|(p, _)| p.len()).sum());
            // First truncation reason in seed order, mirroring the order
            // the sequential search would encounter them.
            let mut truncation = None;
            for (mut patterns, reason) in per_seed {
                out.append(&mut patterns);
                if truncation.is_none() {
                    truncation = reason;
                }
            }
            if let Some(m) = self.cfg.max_patterns {
                out.truncate(m);
            }
            (out, truncation)
        };

        let mut completion = match truncation {
            Some(reason) => Completion::Truncated(reason),
            None => Completion::Complete,
        };
        if self.cfg.max_patterns.is_some_and(|m| out.len() >= m) {
            completion = completion.merge(Completion::Truncated(StopReason::PatternCap));
        }
        Outcome::new(out, completion)
    }

    /// Mine, then keep only closed patterns (no super-pattern with equal
    /// support). CloseGraph-style output via post-filtering.
    pub fn mine_closed(&self, db: &GraphDb) -> Vec<Pattern> {
        crate::pattern::filter_closed(self.mine(db))
    }

    /// Mine, then keep only maximal patterns (no frequent super-pattern) —
    /// the `MaximalFSM` of GraphSig's Algorithm 2.
    pub fn mine_maximal(&self, db: &GraphDb) -> Vec<Pattern> {
        crate::pattern::filter_maximal(self.mine(db))
    }
}

/// Distinct gids of a gid-ordered embedding list.
fn distinct_gids(embs: &[Emb]) -> Vec<u32> {
    let mut gids = Vec::new();
    for e in embs {
        if gids.last() != Some(&e.gid) {
            debug_assert!(
                gids.last().is_none_or(|&g| g < e.gid),
                "embeddings out of order"
            );
            gids.push(e.gid);
        }
    }
    gids
}

/// Initial embedding list of a seed edge type, in the index's `(gid, edge)`
/// scan order. Distinct endpoint labels admit only the canonical
/// (smaller-label-first) orientation; equal labels contribute both.
fn seed_embeddings(entry: &LabelPairEntry) -> Vec<Emb> {
    let both = entry.key.0 == entry.key.2;
    let mut embs = Vec::with_capacity(entry.occurrences.len() * if both { 2 } else { 1 });
    for occ in &entry.occurrences {
        embs.push(Emb {
            gid: occ.gid,
            last: Rc::new(Step {
                gfrom: occ.from,
                gto: occ.to,
                edge: occ.edge,
                prev: None,
            }),
        });
        if both {
            embs.push(Emb {
                gid: occ.gid,
                last: Rc::new(Step {
                    gfrom: occ.to,
                    gto: occ.from,
                    edge: occ.edge,
                    prev: None,
                }),
            });
        }
    }
    embs
}

/// Per-embedding reconstruction buffers, reused across every embedding a
/// context visits instead of being reallocated per embedding. The
/// `used_node`/`used_edge` bit vectors grow to the largest graph seen and
/// are kept all-false between embeddings (each embedding unsets exactly the
/// bits it set).
#[derive(Default)]
struct Scratch {
    /// The embedding's step chain, last step first: `(gfrom, gto, edge)`.
    steps: Vec<(NodeId, NodeId, u32)>,
    /// `nodes[dfs_index] = graph node`.
    nodes: Vec<NodeId>,
    used_node: Vec<bool>,
    used_edge: Vec<bool>,
}

struct Ctx<'a> {
    db: &'a GraphDb,
    cfg: &'a MinerConfig,
    out: Vec<Pattern>,
    stopped: bool,
    /// Per-seed budget meter; reset at every `mine_seed` so each seed
    /// subtree gets a fresh step allowance in both the sequential and the
    /// parallel path (this is what makes step-budget truncation
    /// deterministic across thread counts).
    meter: Meter<'a>,
    /// First budget truncation observed (in seed order), if any.
    truncation: Option<StopReason>,
    scratch: Scratch,
    /// Certificate-keyed minimality cache, cleared at every seed boundary
    /// so sequential and parallel runs observe identical cache states (and
    /// identical hit counters) per seed.
    canon: CanonCache,
}

impl<'a> Ctx<'a> {
    fn new(db: &'a GraphDb, cfg: &'a MinerConfig) -> Self {
        Self {
            db,
            cfg,
            out: Vec::new(),
            stopped: false,
            meter: Meter::new(cfg.budget.as_ref()),
            truncation: None,
            scratch: Scratch::default(),
            canon: CanonCache::new(),
        }
    }

    /// Record the meter's stop reason, keeping the first one seen.
    fn note_truncation(&mut self) {
        if self.truncation.is_none() {
            self.truncation = self.meter.stop_reason();
        }
    }

    /// Mine the full DFS subtree rooted at one seed edge type.
    fn mine_seed(&mut self, entry: &LabelPairEntry) {
        // Once the deadline has passed (or the request was cancelled),
        // skip remaining seeds entirely instead of starting them.
        if let Some(reason) = control::check_start(self.cfg.budget.as_ref()) {
            if self.truncation.is_none() {
                self.truncation = Some(reason);
            }
            return;
        }
        self.meter = Meter::new(self.cfg.budget.as_ref());
        self.canon.clear();
        let (la, le, lb) = entry.key;
        let embs = seed_embeddings(entry);
        let mut code = DfsCode::from_initial(la, le, lb);
        self.recurse(&mut code, &embs, entry.tids.clone());
    }

    /// Emit `code` (whose supporting graphs are `gids`, already computed by
    /// the caller) and grow it along the rightmost path.
    fn recurse(&mut self, code: &mut DfsCode, embs: &[Emb], gids: Vec<u32>) {
        if self.stopped {
            return;
        }
        // One step per DFS node. Sticky: once this seed's allowance is
        // gone, the whole subtree unwinds (already-emitted patterns stay).
        if !self.meter.tick() {
            self.note_truncation();
            return;
        }
        // Minimality gate. The cached path gives exactly `is_min`'s answer
        // (see `canon`); a `None` means the step budget died during
        // certificate refinement, handled like any other budget stop.
        let minimal = if self.cfg.canon_cache {
            match self.canon.is_min(code, &mut self.meter) {
                Some(m) => m,
                None => {
                    self.note_truncation();
                    return;
                }
            }
        } else {
            self.meter.note_canon();
            is_min(code)
        };
        if !minimal {
            return;
        }
        debug_assert!(gids.len() >= self.cfg.min_support);
        self.out.push(Pattern {
            graph: code.to_graph(),
            code: code.clone(),
            support: gids.len(),
            gids,
        });
        if self.cfg.max_patterns.is_some_and(|m| self.out.len() >= m) {
            self.stopped = true;
            return;
        }
        if self.cfg.max_edges.is_some_and(|m| code.len() >= m) {
            return;
        }

        // Group every legal extension of every embedding. The extension
        // frame depends only on the code, so compute it once here rather
        // than once per embedding.
        let mut children: BTreeMap<OrdExt, Vec<Emb>> = BTreeMap::new();
        let frame = ExtFrame::of(code);
        let code_len = code.len();
        let node_count = code.node_count();
        // Take the scratch buffers out of `self` for the duration of the
        // loop (no recursion happens inside it).
        let mut scratch = std::mem::take(&mut self.scratch);
        for emb in embs {
            // One step per embedding extended. Abandon the enumeration on
            // exhaustion — the partial `children` map is discarded below,
            // never recursed into (its support counts would be wrong).
            if !self.meter.tick() {
                break;
            }
            let g = self.db.graph(emb.gid as usize);
            // Reconstruct the embedding state from the step chain.
            scratch.steps.clear();
            let mut cur: Option<&Rc<Step>> = Some(&emb.last);
            while let Some(s) = cur {
                scratch.steps.push((s.gfrom, s.gto, s.edge));
                cur = s.prev.as_ref();
            }
            debug_assert_eq!(scratch.steps.len(), code_len);
            scratch.nodes.clear();
            scratch.nodes.resize(node_count, u32::MAX);
            if scratch.used_node.len() < g.node_count() {
                scratch.used_node.resize(g.node_count(), false);
            }
            if scratch.used_edge.len() < g.edge_count() {
                scratch.used_edge.resize(g.edge_count(), false);
            }
            for (k, &(gfrom, gto, edge)) in scratch.steps.iter().rev().enumerate() {
                let ce = code.edges()[k];
                if ce.is_forward() {
                    scratch.nodes[ce.from as usize] = gfrom;
                    scratch.nodes[ce.to as usize] = gto;
                }
                scratch.used_node[gfrom as usize] = true;
                scratch.used_node[gto as usize] = true;
                scratch.used_edge[edge as usize] = true;
            }
            enumerate_extensions_framed(
                g,
                &frame,
                &scratch.nodes,
                |n| scratch.used_node[n as usize],
                |e| scratch.used_edge[e as usize],
                &mut |ext| {
                    children.entry(OrdExt(ext.dfs)).or_default().push(Emb {
                        gid: emb.gid,
                        last: Rc::new(Step {
                            gfrom: ext.gfrom,
                            gto: ext.gto,
                            edge: ext.edge,
                            prev: Some(emb.last.clone()),
                        }),
                    });
                },
            );
            // Unset exactly the bits this embedding set, restoring the
            // all-false invariant for the next (possibly smaller) graph.
            for &(gfrom, gto, edge) in &scratch.steps {
                scratch.used_node[gfrom as usize] = false;
                scratch.used_node[gto as usize] = false;
                scratch.used_edge[edge as usize] = false;
            }
        }
        self.scratch = scratch;
        if self.meter.truncated() {
            self.note_truncation();
            return;
        }

        for (ext, child_embs) in children {
            if self.stopped {
                return;
            }
            // Computed once per candidate; passed through to the emit site.
            let child_gids = distinct_gids(&child_embs);
            if child_gids.len() < self.cfg.min_support {
                continue;
            }
            code.push(ext.0);
            self.recurse(code, &child_embs, child_gids);
            code.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_graph::{are_isomorphic, parse_transactions, SubgraphMatcher};

    fn tiny_db() -> GraphDb {
        parse_transactions(
            "t # 0\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 2\nv 0 C\nv 1 N\ne 0 1 s\n",
        )
        .unwrap()
    }

    #[test]
    fn frequency_to_support_conversion() {
        assert_eq!(MinerConfig::from_frequency(0.05, 100).min_support, 5);
        assert_eq!(MinerConfig::from_frequency(0.001, 100).min_support, 1);
        assert_eq!(MinerConfig::from_frequency(0.033, 100).min_support, 4);
    }

    #[test]
    fn mines_expected_patterns_at_support_two() {
        let db = tiny_db();
        let pats = GSpan::new(MinerConfig::new(2)).mine(&db);
        // Frequent patterns in graphs 0 and 1: C-C, C-O, C-C-O. Support-2
        // single edges: C-C (2), C-O (2); C-N appears once only.
        let sizes: Vec<usize> = pats.iter().map(|p| p.graph.edge_count()).collect();
        assert_eq!(pats.len(), 3, "patterns: {sizes:?}");
        assert!(pats.iter().all(|p| p.support == 2));
        assert!(pats.iter().any(|p| p.graph.edge_count() == 2));
    }

    #[test]
    fn support_one_includes_rare_edge() {
        let db = tiny_db();
        let pats = GSpan::new(MinerConfig::new(1)).mine(&db);
        // Additional pattern: C-N with support 1.
        assert!(pats
            .iter()
            .any(|p| p.support == 1 && p.graph.edge_count() == 1));
        // Every reported pattern must occur (VF2-verified) in exactly
        // `support` graphs.
        for p in &pats {
            let occ = db
                .graphs()
                .iter()
                .filter(|g| SubgraphMatcher::new(&p.graph, g).exists())
                .count();
            assert_eq!(occ, p.support, "pattern {}", p.code);
        }
    }

    #[test]
    fn gids_match_support() {
        let db = tiny_db();
        for p in GSpan::new(MinerConfig::new(1)).mine(&db) {
            assert_eq!(p.gids.len(), p.support);
            for &gid in &p.gids {
                assert!(SubgraphMatcher::new(&p.graph, db.graph(gid as usize)).exists());
            }
        }
    }

    #[test]
    fn no_duplicate_patterns() {
        let db = tiny_db();
        let pats = GSpan::new(MinerConfig::new(1)).mine(&db);
        for (i, a) in pats.iter().enumerate() {
            for b in &pats[i + 1..] {
                assert!(!are_isomorphic(&a.graph, &b.graph), "dup: {}", a.code);
            }
        }
    }

    #[test]
    fn max_edges_truncates_growth() {
        let db = tiny_db();
        let pats = GSpan::new(MinerConfig::new(1).with_max_edges(1)).mine(&db);
        assert!(pats.iter().all(|p| p.graph.edge_count() == 1));
        assert_eq!(pats.len(), 3); // C-C, C-O, C-N
    }

    #[test]
    fn max_patterns_stops_early() {
        let db = tiny_db();
        let pats = GSpan::new(MinerConfig::new(1).with_max_patterns(2)).mine(&db);
        assert_eq!(pats.len(), 2);
    }

    #[test]
    fn cyclic_pattern_mined() {
        // Two copies of a labeled triangle with a pendant; the triangle
        // (cyclic!) must be found at support 2.
        let db = parse_transactions(
            "t # 0\nv 0 a\nv 1 a\nv 2 a\nv 3 b\ne 0 1 x\ne 1 2 x\ne 0 2 x\ne 2 3 y\n\
             t # 1\nv 0 a\nv 1 a\nv 2 a\ne 0 1 x\ne 1 2 x\ne 0 2 x\n",
        )
        .unwrap();
        let pats = GSpan::new(MinerConfig::new(2)).mine(&db);
        assert!(pats
            .iter()
            .any(|p| p.graph.edge_count() == 3 && p.graph.node_count() == 3 && p.support == 2));
    }

    #[test]
    fn empty_db_yields_nothing() {
        let pats = GSpan::new(MinerConfig::new(1)).mine(&GraphDb::new());
        assert!(pats.is_empty());
    }

    #[test]
    fn parallel_output_identical_to_sequential() {
        let db = tiny_db();
        for support in [1, 2, 3] {
            let seq = GSpan::new(MinerConfig::new(support)).mine(&db);
            for threads in [0, 2, 4, 8] {
                let par = GSpan::new(MinerConfig::new(support).with_threads(threads)).mine(&db);
                assert_eq!(seq.len(), par.len(), "support={support} threads={threads}");
                for (a, b) in seq.iter().zip(&par) {
                    assert_eq!(a.code, b.code, "support={support} threads={threads}");
                    assert_eq!(a.support, b.support);
                    assert_eq!(a.gids, b.gids);
                }
            }
        }
    }

    #[test]
    fn parallel_respects_max_patterns_cap() {
        let db = tiny_db();
        for cap in 1..=4 {
            let seq = GSpan::new(MinerConfig::new(1).with_max_patterns(cap)).mine(&db);
            let par =
                GSpan::new(MinerConfig::new(1).with_max_patterns(cap).with_threads(4)).mine(&db);
            assert_eq!(seq.len(), cap.min(seq.len()));
            assert_eq!(seq.len(), par.len(), "cap={cap}");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.code, b.code, "cap={cap}");
                assert_eq!(a.gids, b.gids, "cap={cap}");
            }
        }
    }

    #[test]
    fn prebuilt_index_matches_fresh_mine() {
        let db = tiny_db();
        let index = LabelPairIndex::build(&db);
        let miner = GSpan::new(MinerConfig::new(1));
        let fresh = miner.mine(&db);
        let indexed = miner.mine_indexed(&db, &index);
        assert_eq!(fresh.len(), indexed.len());
        for (a, b) in fresh.iter().zip(&indexed) {
            assert_eq!(a.code, b.code);
            assert_eq!(a.gids, b.gids);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_support_rejected() {
        GSpan::new(MinerConfig::new(0));
    }

    #[test]
    fn unbudgeted_outcome_is_complete_and_matches_mine() {
        let db = tiny_db();
        let miner = GSpan::new(MinerConfig::new(1));
        let out = miner.mine_outcome(&db);
        assert_eq!(out.completion, Completion::Complete);
        let plain = miner.mine(&db);
        assert_eq!(out.result.len(), plain.len());
        for (a, b) in out.result.iter().zip(&plain) {
            assert_eq!(a.code, b.code);
        }
    }

    #[test]
    fn pattern_cap_reports_truncation() {
        let db = tiny_db();
        let out = GSpan::new(MinerConfig::new(1).with_max_patterns(2)).mine_outcome(&db);
        assert_eq!(out.result.len(), 2);
        assert_eq!(
            out.completion,
            Completion::Truncated(StopReason::PatternCap)
        );
    }

    #[test]
    fn step_budget_truncation_is_identical_across_thread_counts() {
        let db = tiny_db();
        for max_steps in [0u64, 1, 2, 5, 100] {
            let run = |threads: usize| {
                GSpan::new(
                    MinerConfig::new(1)
                        .with_threads(threads)
                        .with_budget(Budget::unlimited().with_max_steps(max_steps)),
                )
                .mine_outcome(&db)
            };
            let seq = run(1);
            for threads in [2, 4, 8] {
                let par = run(threads);
                assert_eq!(
                    seq.completion, par.completion,
                    "max_steps={max_steps} threads={threads}"
                );
                assert_eq!(seq.result.len(), par.result.len());
                for (a, b) in seq.result.iter().zip(&par.result) {
                    assert_eq!(a.code, b.code, "max_steps={max_steps} threads={threads}");
                    assert_eq!(a.gids, b.gids);
                }
            }
        }
        // A zero allowance mines nothing, but reports it honestly.
        let zero =
            GSpan::new(MinerConfig::new(1).with_budget(Budget::unlimited().with_max_steps(0)))
                .mine_outcome(&db);
        assert!(zero.result.is_empty());
        assert_eq!(
            zero.completion,
            Completion::Truncated(StopReason::StepBudget)
        );
    }

    #[test]
    fn canon_cache_on_and_off_mine_identical_patterns() {
        let db = tiny_db();
        for support in [1, 2, 3] {
            let cached = GSpan::new(MinerConfig::new(support)).mine(&db);
            let plain = GSpan::new(MinerConfig::new(support).with_canon_cache(false)).mine(&db);
            assert_eq!(cached.len(), plain.len(), "support={support}");
            for (a, b) in cached.iter().zip(&plain) {
                assert_eq!(a.code, b.code, "support={support}");
                assert_eq!(a.gids, b.gids);
            }
        }
        // The cache actually fires: with an attached (unlimited) budget the
        // counters show certificate work happened.
        let budget = Budget::unlimited();
        GSpan::new(MinerConfig::new(1).with_budget(budget.clone())).mine(&db);
        assert!(budget.canon_calls() > 0);
    }

    #[test]
    fn expired_deadline_yields_truncated_outcome() {
        let db = tiny_db();
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        let out = GSpan::new(MinerConfig::new(1).with_budget(budget)).mine_outcome(&db);
        assert!(out.result.is_empty());
        assert_eq!(out.completion, Completion::Truncated(StopReason::Deadline));
    }

    #[test]
    fn cancelled_token_yields_truncated_outcome() {
        let db = tiny_db();
        let token = graphsig_graph::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let out = GSpan::new(MinerConfig::new(1).with_budget(budget)).mine_outcome(&db);
        assert!(out.result.is_empty());
        assert_eq!(out.completion, Completion::Truncated(StopReason::Cancelled));
    }
}
