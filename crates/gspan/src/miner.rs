//! The gSpan pattern-growth miner over a graph database.
//!
//! Support counting uses *projections*: for every pattern (DFS code) on the
//! search path, the miner carries the list of its embeddings in the
//! database, each represented as a persistent chain of steps shared with its
//! parent via `Rc`. Extending a pattern never rescans the database — it only
//! extends the surviving embeddings.

use std::collections::BTreeMap;
use std::rc::Rc;

use crate::dfs_code::{extension_order, DfsCode, DfsEdge};
use crate::extend::enumerate_extensions;
use crate::min_code::is_min;
use crate::pattern::Pattern;
use graphsig_graph::{GraphDb, NodeId};

/// Configuration for [`GSpan`].
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Minimum number of distinct graphs a pattern must occur in
    /// (absolute support, `>= 1`).
    pub min_support: usize,
    /// Stop growing patterns beyond this many edges.
    pub max_edges: Option<usize>,
    /// Abort the search after emitting this many patterns (a safety valve
    /// for the low-frequency scalability experiments, where the pattern
    /// space explodes by design).
    pub max_patterns: Option<usize>,
}

impl MinerConfig {
    /// Config with the given absolute support and no other limits.
    pub fn new(min_support: usize) -> Self {
        Self {
            min_support,
            max_edges: None,
            max_patterns: None,
        }
    }

    /// Limit pattern size (in edges).
    pub fn with_max_edges(mut self, max_edges: usize) -> Self {
        self.max_edges = Some(max_edges);
        self
    }

    /// Limit the number of emitted patterns.
    pub fn with_max_patterns(mut self, max_patterns: usize) -> Self {
        self.max_patterns = Some(max_patterns);
        self
    }

    /// Convert a relative frequency threshold (e.g. `0.05` = 5%) on a
    /// database of `n` graphs into absolute support, rounding up and never
    /// below 1. This mirrors Definition 1 of the paper
    /// (`mu_0 >= theta |D| / 100` with theta in percent).
    pub fn from_frequency(freq: f64, n: usize) -> Self {
        assert!((0.0..=1.0).contains(&freq), "frequency must be in [0,1]");
        Self::new(((freq * n as f64).ceil() as usize).max(1))
    }
}

/// One step of an embedding: a directed traversal of graph edge `edge`.
struct Step {
    gfrom: NodeId,
    gto: NodeId,
    edge: u32,
    prev: Option<Rc<Step>>,
}

/// An embedding of the current DFS code in graph `gid`.
struct Emb {
    gid: u32,
    last: Rc<Step>,
}

/// Extension key ordered by gSpan's extension order (with a total-order
/// tiebreak on the full tuple, required for `BTreeMap` consistency).
#[derive(PartialEq, Eq)]
struct OrdExt(DfsEdge);

impl Ord for OrdExt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        extension_order(&self.0, &other.0).then_with(|| {
            (
                self.0.from,
                self.0.to,
                self.0.from_label,
                self.0.edge_label,
                self.0.to_label,
            )
                .cmp(&(
                    other.0.from,
                    other.0.to,
                    other.0.from_label,
                    other.0.edge_label,
                    other.0.to_label,
                ))
        })
    }
}

impl PartialOrd for OrdExt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The gSpan miner. See the crate docs for the algorithm outline.
pub struct GSpan {
    cfg: MinerConfig,
}

impl GSpan {
    /// Create a miner with the given configuration.
    pub fn new(cfg: MinerConfig) -> Self {
        assert!(cfg.min_support >= 1, "min_support must be at least 1");
        Self { cfg }
    }

    /// Mine all frequent connected subgraphs with at least one edge.
    pub fn mine(&self, db: &GraphDb) -> Vec<Pattern> {
        let mut ctx = Ctx {
            db,
            cfg: &self.cfg,
            out: Vec::new(),
            stopped: false,
        };

        // Seed: all frequent single-edge codes in canonical orientation.
        let mut initial: BTreeMap<(u16, u16, u16), Vec<Emb>> = BTreeMap::new();
        for (gid, g) in db.graphs().iter().enumerate() {
            for (eid, e) in g.edges().iter().enumerate() {
                let (lu, lv) = (g.node_label(e.u), g.node_label(e.v));
                let mut push = |gfrom: NodeId, gto: NodeId, lf: u16, lt: u16| {
                    initial.entry((lf, e.label, lt)).or_default().push(Emb {
                        gid: gid as u32,
                        last: Rc::new(Step {
                            gfrom,
                            gto,
                            edge: eid as u32,
                            prev: None,
                        }),
                    });
                };
                // Only the canonical (smaller-label-first) orientation can
                // start a minimal code; equal labels contribute both.
                if lu <= lv {
                    push(e.u, e.v, lu, lv);
                }
                if lv < lu || lu == lv {
                    push(e.v, e.u, lv, lu);
                }
            }
        }

        for ((la, le, lb), embs) in initial {
            if ctx.stopped {
                break;
            }
            if distinct_gids(&embs).len() < self.cfg.min_support {
                continue;
            }
            let mut code = DfsCode::from_initial(la, le, lb);
            ctx.recurse(&mut code, &embs);
        }
        ctx.out
    }

    /// Mine, then keep only closed patterns (no super-pattern with equal
    /// support). CloseGraph-style output via post-filtering.
    pub fn mine_closed(&self, db: &GraphDb) -> Vec<Pattern> {
        crate::pattern::filter_closed(self.mine(db))
    }

    /// Mine, then keep only maximal patterns (no frequent super-pattern) —
    /// the `MaximalFSM` of GraphSig's Algorithm 2.
    pub fn mine_maximal(&self, db: &GraphDb) -> Vec<Pattern> {
        crate::pattern::filter_maximal(self.mine(db))
    }
}

/// Distinct gids of a gid-ordered embedding list.
fn distinct_gids(embs: &[Emb]) -> Vec<u32> {
    let mut gids = Vec::new();
    for e in embs {
        if gids.last() != Some(&e.gid) {
            debug_assert!(
                gids.last().is_none_or(|&g| g < e.gid),
                "embeddings out of order"
            );
            gids.push(e.gid);
        }
    }
    gids
}

struct Ctx<'a> {
    db: &'a GraphDb,
    cfg: &'a MinerConfig,
    out: Vec<Pattern>,
    stopped: bool,
}

impl Ctx<'_> {
    fn recurse(&mut self, code: &mut DfsCode, embs: &[Emb]) {
        if self.stopped || !is_min(code) {
            return;
        }
        let gids = distinct_gids(embs);
        debug_assert!(gids.len() >= self.cfg.min_support);
        self.out.push(Pattern {
            graph: code.to_graph(),
            code: code.clone(),
            support: gids.len(),
            gids,
        });
        if self.cfg.max_patterns.is_some_and(|m| self.out.len() >= m) {
            self.stopped = true;
            return;
        }
        if self.cfg.max_edges.is_some_and(|m| code.len() >= m) {
            return;
        }

        // Group every legal extension of every embedding.
        let mut children: BTreeMap<OrdExt, Vec<Emb>> = BTreeMap::new();
        let code_len = code.len();
        let node_count = code.node_count();
        for emb in embs {
            let g = self.db.graph(emb.gid as usize);
            // Reconstruct the embedding state from the step chain.
            let mut steps: Vec<&Step> = Vec::with_capacity(code_len);
            let mut cur: Option<&Rc<Step>> = Some(&emb.last);
            while let Some(s) = cur {
                steps.push(s);
                cur = s.prev.as_ref();
            }
            debug_assert_eq!(steps.len(), code_len);
            let mut nodes = vec![u32::MAX; node_count];
            let mut used_node = vec![false; g.node_count()];
            let mut used_edge = vec![false; g.edge_count()];
            for (k, &s) in steps.iter().rev().enumerate() {
                let ce = code.edges()[k];
                if ce.is_forward() {
                    nodes[ce.from as usize] = s.gfrom;
                    nodes[ce.to as usize] = s.gto;
                }
                used_node[s.gfrom as usize] = true;
                used_node[s.gto as usize] = true;
                used_edge[s.edge as usize] = true;
            }
            enumerate_extensions(g, code, &nodes, &used_node, &used_edge, &mut |ext| {
                children.entry(OrdExt(ext.dfs)).or_default().push(Emb {
                    gid: emb.gid,
                    last: Rc::new(Step {
                        gfrom: ext.gfrom,
                        gto: ext.gto,
                        edge: ext.edge,
                        prev: Some(emb.last.clone()),
                    }),
                });
            });
        }

        for (ext, child_embs) in children {
            if self.stopped {
                return;
            }
            if distinct_gids(&child_embs).len() < self.cfg.min_support {
                continue;
            }
            code.push(ext.0);
            self.recurse(code, &child_embs);
            code.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_graph::{are_isomorphic, parse_transactions, SubgraphMatcher};

    fn tiny_db() -> GraphDb {
        parse_transactions(
            "t # 0\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 2\nv 0 C\nv 1 N\ne 0 1 s\n",
        )
        .unwrap()
    }

    #[test]
    fn frequency_to_support_conversion() {
        assert_eq!(MinerConfig::from_frequency(0.05, 100).min_support, 5);
        assert_eq!(MinerConfig::from_frequency(0.001, 100).min_support, 1);
        assert_eq!(MinerConfig::from_frequency(0.033, 100).min_support, 4);
    }

    #[test]
    fn mines_expected_patterns_at_support_two() {
        let db = tiny_db();
        let pats = GSpan::new(MinerConfig::new(2)).mine(&db);
        // Frequent patterns in graphs 0 and 1: C-C, C-O, C-C-O. Support-2
        // single edges: C-C (2), C-O (2); C-N appears once only.
        let sizes: Vec<usize> = pats.iter().map(|p| p.graph.edge_count()).collect();
        assert_eq!(pats.len(), 3, "patterns: {sizes:?}");
        assert!(pats.iter().all(|p| p.support == 2));
        assert!(pats.iter().any(|p| p.graph.edge_count() == 2));
    }

    #[test]
    fn support_one_includes_rare_edge() {
        let db = tiny_db();
        let pats = GSpan::new(MinerConfig::new(1)).mine(&db);
        // Additional pattern: C-N with support 1.
        assert!(pats
            .iter()
            .any(|p| p.support == 1 && p.graph.edge_count() == 1));
        // Every reported pattern must occur (VF2-verified) in exactly
        // `support` graphs.
        for p in &pats {
            let occ = db
                .graphs()
                .iter()
                .filter(|g| SubgraphMatcher::new(&p.graph, g).exists())
                .count();
            assert_eq!(occ, p.support, "pattern {}", p.code);
        }
    }

    #[test]
    fn gids_match_support() {
        let db = tiny_db();
        for p in GSpan::new(MinerConfig::new(1)).mine(&db) {
            assert_eq!(p.gids.len(), p.support);
            for &gid in &p.gids {
                assert!(SubgraphMatcher::new(&p.graph, db.graph(gid as usize)).exists());
            }
        }
    }

    #[test]
    fn no_duplicate_patterns() {
        let db = tiny_db();
        let pats = GSpan::new(MinerConfig::new(1)).mine(&db);
        for (i, a) in pats.iter().enumerate() {
            for b in &pats[i + 1..] {
                assert!(!are_isomorphic(&a.graph, &b.graph), "dup: {}", a.code);
            }
        }
    }

    #[test]
    fn max_edges_truncates_growth() {
        let db = tiny_db();
        let pats = GSpan::new(MinerConfig::new(1).with_max_edges(1)).mine(&db);
        assert!(pats.iter().all(|p| p.graph.edge_count() == 1));
        assert_eq!(pats.len(), 3); // C-C, C-O, C-N
    }

    #[test]
    fn max_patterns_stops_early() {
        let db = tiny_db();
        let pats = GSpan::new(MinerConfig::new(1).with_max_patterns(2)).mine(&db);
        assert_eq!(pats.len(), 2);
    }

    #[test]
    fn cyclic_pattern_mined() {
        // Two copies of a labeled triangle with a pendant; the triangle
        // (cyclic!) must be found at support 2.
        let db = parse_transactions(
            "t # 0\nv 0 a\nv 1 a\nv 2 a\nv 3 b\ne 0 1 x\ne 1 2 x\ne 0 2 x\ne 2 3 y\n\
             t # 1\nv 0 a\nv 1 a\nv 2 a\ne 0 1 x\ne 1 2 x\ne 0 2 x\n",
        )
        .unwrap();
        let pats = GSpan::new(MinerConfig::new(2)).mine(&db);
        assert!(pats
            .iter()
            .any(|p| p.graph.edge_count() == 3 && p.graph.node_count() == 3 && p.support == 2));
    }

    #[test]
    fn empty_db_yields_nothing() {
        let pats = GSpan::new(MinerConfig::new(1)).mine(&GraphDb::new());
        assert!(pats.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_support_rejected() {
        GSpan::new(MinerConfig::new(0));
    }
}
