//! Minimum DFS codes: gSpan's canonical form.
//!
//! The minimum DFS code of a connected labeled graph is computed by a
//! restricted self-projection: starting from the lexicographically smallest
//! single-edge code, repeatedly take the smallest legal extension across all
//! surviving embeddings of the current prefix in the graph itself. Because
//! only the minimal branch is followed, the loop runs exactly `|E|` steps.
//!
//! [`is_min`] runs the same loop against a candidate code with early exit at
//! the first divergence — the pruning test at every gSpan search node.
//!
//! This is the single hottest routine in the FSG baseline (every candidate
//! is canonicalized at least once), so the inner loop avoids per-embedding
//! work: the code-side extension frame is computed once per level, and for
//! graphs with ≤128 nodes and ≤128 edges (every molecule in practice) the
//! used-node/used-edge sets are `u128` bitmasks instead of heap-allocated
//! `Vec<bool>`s, making embedding extension a couple of register ops.

use crate::dfs_code::{extension_order, DfsCode, DfsEdge};
use crate::extend::{enumerate_extensions_framed, ExtFrame, Extension};
use graphsig_graph::invariant::{pinned_automorphism, refine};
use graphsig_graph::{Graph, NodeId};

/// Backtracking-assignment cap for one pinned automorphism check during
/// embedding pruning. Generous for molecule-sized graphs; on overrun the
/// check gives up and the embedding is kept (sound, just less pruning).
const AUT_SEARCH_BUDGET: usize = 2_000;

/// Membership sets for one self-embedding: which graph nodes and edges the
/// matched prefix occupies. Two backings — dense bitmasks for small graphs,
/// `Vec<bool>` for arbitrarily large ones — selected once per graph.
trait UsedSets: Clone {
    fn empty(nodes: usize, edges: usize) -> Self;
    fn add_node(&mut self, n: NodeId);
    fn add_edge(&mut self, e: u32);
    fn has_node(&self, n: NodeId) -> bool;
    fn has_edge(&self, e: u32) -> bool;
}

/// Bitmask backing: valid only when both counts fit in 128 bits.
#[derive(Clone, Copy)]
struct MaskSets {
    nodes: u128,
    edges: u128,
}

impl UsedSets for MaskSets {
    fn empty(nodes: usize, edges: usize) -> Self {
        debug_assert!(nodes <= 128 && edges <= 128);
        MaskSets { nodes: 0, edges: 0 }
    }
    fn add_node(&mut self, n: NodeId) {
        self.nodes |= 1u128 << n;
    }
    fn add_edge(&mut self, e: u32) {
        self.edges |= 1u128 << e;
    }
    fn has_node(&self, n: NodeId) -> bool {
        self.nodes >> n & 1 != 0
    }
    fn has_edge(&self, e: u32) -> bool {
        self.edges >> e & 1 != 0
    }
}

/// General backing for graphs too large for [`MaskSets`].
#[derive(Clone)]
struct VecSets {
    nodes: Vec<bool>,
    edges: Vec<bool>,
}

impl UsedSets for VecSets {
    fn empty(nodes: usize, edges: usize) -> Self {
        VecSets {
            nodes: vec![false; nodes],
            edges: vec![false; edges],
        }
    }
    fn add_node(&mut self, n: NodeId) {
        self.nodes[n as usize] = true;
    }
    fn add_edge(&mut self, e: u32) {
        self.edges[e as usize] = true;
    }
    fn has_node(&self, n: NodeId) -> bool {
        self.nodes[n as usize]
    }
    fn has_edge(&self, e: u32) -> bool {
        self.edges[e as usize]
    }
}

/// One embedding of a code prefix into the graph itself.
#[derive(Clone)]
struct SelfEmb<S> {
    /// `nodes[dfs_index] = graph node`.
    nodes: Vec<NodeId>,
    used: S,
}

impl<S: UsedSets> SelfEmb<S> {
    fn extended(&self, ext: &Extension) -> SelfEmb<S> {
        let mut e = self.clone();
        if ext.dfs.is_forward() {
            debug_assert_eq!(e.nodes.len(), ext.dfs.to as usize);
            e.nodes.push(ext.gto);
            e.used.add_node(ext.gto);
        }
        e.used.add_edge(ext.edge);
        e
    }
}

/// Drop initial embeddings that are automorphic images of an earlier kept
/// one. Two automorphic embeddings of the initial edge generate *identical*
/// extension streams at every level of the self-projection (an automorphism
/// maps legal extensions of one prefix embedding bijectively onto legal
/// extensions of the other, preserving every DFS-edge tuple), so the
/// minimum over the pruned set equals the minimum over the full set and
/// the resulting code — or is_min verdict — is byte-identical.
///
/// The filter is exact: WL orbit colors cheaply separate provably
/// non-automorphic pairs (different colors ⇒ different orbits ⇒ keep), and
/// a bounded [`pinned_automorphism`] search confirms the rest. A failed or
/// over-budget search keeps the embedding — sound in both directions.
/// Do any two initial embeddings share the `(deg(from), deg(to))`
/// signature? Automorphic duplicates must (automorphisms preserve
/// degrees), so a `false` here proves the embedding set is already
/// duplicate-free and the refinement pass can be skipped. O(k²) over the
/// handful of starting embeddings, with no allocation.
fn has_degree_twin<S: UsedSets>(g: &Graph, embs: &[SelfEmb<S>]) -> bool {
    let sig = |emb: &SelfEmb<S>| (g.degree(emb.nodes[0]), g.degree(emb.nodes[1]));
    embs.iter().enumerate().any(|(i, a)| {
        let sa = sig(a);
        embs[..i].iter().any(|b| sig(b) == sa)
    })
}

fn prune_automorphic_embeddings<S: UsedSets>(g: &Graph, embs: &mut Vec<SelfEmb<S>>) {
    let colors = refine(g).colors;
    let mut kept: Vec<(NodeId, NodeId)> = Vec::with_capacity(embs.len());
    embs.retain(|emb| {
        let (from, to) = (emb.nodes[0], emb.nodes[1]);
        let dup = kept.iter().any(|&(kf, kt)| {
            colors[from as usize] == colors[kf as usize]
                && colors[to as usize] == colors[kt as usize]
                && pinned_automorphism(g, &colors, &[(from, kf), (to, kt)], AUT_SEARCH_BUDGET)
        });
        if !dup {
            kept.push((from, to));
        }
        !dup
    });
}

/// Shared driver: either record the minimum code (check = `None`) or verify
/// a candidate prefix-by-prefix, returning `None` on the first mismatch.
/// With `prune`, automorphic-duplicate starting embeddings are discarded
/// (see [`prune_automorphic_embeddings`] for why output is unchanged).
fn build_min_with<S: UsedSets>(g: &Graph, check: Option<&DfsCode>, prune: bool) -> Option<DfsCode> {
    // Minimum initial edge over all directed orientations.
    let mut best_key: Option<(u16, u16, u16)> = None;
    for e in g.edges() {
        let (lu, lv) = (g.node_label(e.u), g.node_label(e.v));
        for (a, b) in [(lu, lv), (lv, lu)] {
            let key = (a, e.label, b);
            if best_key.is_none_or(|bk| key < bk) {
                best_key = Some(key);
            }
        }
    }
    let (la, le, lb) = best_key.expect("graph has edges");
    let mut code = DfsCode::from_initial(la, le, lb);
    if let Some(c) = check {
        if c.edges().first() != code.edges().first() {
            return None;
        }
    }

    // Embeddings of the initial edge.
    let mut embs: Vec<SelfEmb<S>> = Vec::new();
    for e in g.edges() {
        let (lu, lv) = (g.node_label(e.u), g.node_label(e.v));
        for (from, to, lf, lt) in [(e.u, e.v, lu, lv), (e.v, e.u, lv, lu)] {
            if (lf, e.label, lt) == (la, le, lb) {
                let mut used = S::empty(g.node_count(), g.edge_count());
                used.add_node(from);
                used.add_node(to);
                let eid = g
                    .neighbors(from)
                    .iter()
                    .find(|a| a.to == to)
                    .expect("edge exists")
                    .edge;
                used.add_edge(eid);
                embs.push(SelfEmb {
                    nodes: vec![from, to],
                    used,
                });
            }
        }
    }

    // Pruning pays when several embeddings survive the whole projection
    // (symmetric graphs); a single-edge graph never enters the loop at all.
    // In check mode most candidates diverge within a level or two, so
    // demand more duplicates before spending a refinement pass. The
    // degree-signature pre-filter skips the refinement pass entirely when
    // no two embeddings could possibly be automorphic images (an
    // automorphism preserves degrees), which is the common asymmetric
    // case — there the pruning attempt would be pure overhead.
    let prune_threshold = if check.is_some() { 8 } else { 6 };
    if prune && g.edge_count() >= 2 && embs.len() >= prune_threshold && has_degree_twin(g, &embs) {
        prune_automorphic_embeddings(g, &mut embs);
    }

    while code.len() < g.edge_count() {
        // Smallest extension across all embeddings. The extension frame
        // depends only on the code, so compute it once per level rather
        // than once per embedding.
        let frame = ExtFrame::of(&code);
        let mut best: Option<DfsEdge> = None;
        let mut best_children: Vec<SelfEmb<S>> = Vec::new();
        for emb in &embs {
            enumerate_extensions_framed(
                g,
                &frame,
                &emb.nodes,
                |n| emb.used.has_node(n),
                |e| emb.used.has_edge(e),
                &mut |ext| match &best {
                    Some(b) => match extension_order(&ext.dfs, b) {
                        std::cmp::Ordering::Less => {
                            best = Some(ext.dfs);
                            best_children.clear();
                            best_children.push(emb.extended(&ext));
                        }
                        std::cmp::Ordering::Equal => best_children.push(emb.extended(&ext)),
                        std::cmp::Ordering::Greater => {}
                    },
                    None => {
                        best = Some(ext.dfs);
                        best_children.push(emb.extended(&ext));
                    }
                },
            );
        }
        let best = best.expect("connected graph always extends until all edges used");
        if let Some(c) = check {
            if c.edges()[code.len()] != best {
                return None;
            }
        }
        code.push(best);
        embs = best_children;
    }
    Some(code)
}

/// Backing dispatch: bitmask embeddings whenever they fit, `Vec<bool>`
/// otherwise. Both paths walk identical extension orders, so the resulting
/// code is independent of the backing.
fn build_min(g: &Graph, check: Option<&DfsCode>, prune: bool) -> Option<DfsCode> {
    if g.edge_count() == 0 {
        // Edgeless graphs have the empty code; a candidate must be empty too.
        return match check {
            Some(c) if !c.is_empty() => None,
            _ => Some(DfsCode::new()),
        };
    }
    if g.node_count() <= 128 && g.edge_count() <= 128 {
        build_min_with::<MaskSets>(g, check, prune)
    } else {
        build_min_with::<VecSets>(g, check, prune)
    }
}

/// The canonical (minimum) DFS code of a connected labeled graph.
///
/// Two graphs are isomorphic iff their minimum DFS codes are equal, making
/// this the dedup key used throughout the workspace. Edgeless graphs yield
/// the empty code.
///
/// # Panics
/// Panics if the graph is not connected (disconnected graphs have no DFS
/// code).
pub fn min_dfs_code(g: &Graph) -> DfsCode {
    assert!(g.is_connected(), "min_dfs_code requires a connected graph");
    build_min(g, None, true).expect("building without a check cannot fail")
}

/// [`min_dfs_code`] with automorphism-orbit embedding pruning disabled —
/// the straight-line reference the proptests and `bench_canon` compare the
/// pruned production path against. Byte-identical output by construction.
pub fn min_dfs_code_unpruned(g: &Graph) -> DfsCode {
    assert!(g.is_connected(), "min_dfs_code requires a connected graph");
    build_min(g, None, false).expect("building without a check cannot fail")
}

/// Whether `code` is the minimum DFS code of the graph it describes.
///
/// This is the gSpan pruning test: a search node whose code is not minimal
/// repeats a pattern already reached through its canonical code and the
/// whole subtree can be skipped.
pub fn is_min(code: &DfsCode) -> bool {
    if code.is_empty() {
        return true;
    }
    let g = code.to_graph();
    is_min_of_graph(&g, code)
}

/// [`is_min`] with embedding pruning disabled (differential-testing
/// reference, like [`min_dfs_code_unpruned`]).
pub fn is_min_unpruned(code: &DfsCode) -> bool {
    if code.is_empty() {
        return true;
    }
    let g = code.to_graph();
    build_min(&g, Some(code), false).is_some()
}

/// [`is_min`] against a pre-built graph of `code` — lets the cached gate
/// reuse the `to_graph()` it already materialized for the certificate.
pub(crate) fn is_min_of_graph(g: &Graph, code: &DfsCode) -> bool {
    debug_assert_eq!(g.edge_count(), code.len());
    build_min(g, Some(code), true).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_graph::{are_isomorphic, GraphBuilder};

    fn cycle(labels: &[u16], el: u16) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = labels.iter().map(|&l| b.add_node(l)).collect();
        for i in 0..n.len() {
            b.add_edge(n[i], n[(i + 1) % n.len()], el);
        }
        b.build()
    }

    fn labeled_path(labels: &[u16], elabels: &[u16]) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = labels.iter().map(|&l| b.add_node(l)).collect();
        for (i, &el) in elabels.iter().enumerate() {
            b.add_edge(n[i], n[i + 1], el);
        }
        b.build()
    }

    #[test]
    fn single_edge_canonical_orientation() {
        let g = labeled_path(&[5, 2], &[7]);
        let c = min_dfs_code(&g);
        assert_eq!(c.edges(), &[DfsEdge::new(0, 1, 2, 7, 5)]);
    }

    #[test]
    fn code_roundtrips_to_isomorphic_graph() {
        let g = cycle(&[0, 1, 2, 1], 3);
        let c = min_dfs_code(&g);
        assert_eq!(c.len(), g.edge_count());
        assert!(are_isomorphic(&c.to_graph(), &g));
    }

    #[test]
    fn isomorphic_graphs_share_min_code() {
        // Same triangle built with different node orders.
        let a = cycle(&[3, 1, 2], 9);
        let b = cycle(&[1, 2, 3], 9);
        let c = cycle(&[2, 3, 1], 9);
        let code = min_dfs_code(&a);
        assert_eq!(code, min_dfs_code(&b));
        assert_eq!(code, min_dfs_code(&c));
    }

    #[test]
    fn non_isomorphic_graphs_differ() {
        let tri = cycle(&[0, 0, 0], 1);
        let path = labeled_path(&[0, 0, 0], &[1, 1]);
        assert_ne!(min_dfs_code(&tri), min_dfs_code(&path));
        let p12 = labeled_path(&[0, 0, 0], &[1, 2]);
        let p11 = labeled_path(&[0, 0, 0], &[1, 1]);
        assert_ne!(min_dfs_code(&p12), min_dfs_code(&p11));
    }

    #[test]
    fn min_code_is_min() {
        for g in [
            cycle(&[0, 1, 2, 3, 4, 5], 1),
            labeled_path(&[9, 8, 7, 8, 9], &[1, 2, 2, 1]),
            cycle(&[0, 0, 0, 0], 0),
        ] {
            assert!(is_min(&min_dfs_code(&g)));
        }
    }

    #[test]
    fn non_minimal_code_detected() {
        // Path a(0)-b(1)-c(2): starting the DFS at the 'c' end gives a
        // larger code than starting at the 'a' end.
        let mut bad = DfsCode::from_initial(2, 0, 1);
        bad.push(DfsEdge::new(1, 2, 1, 0, 0));
        assert!(!is_min(&bad));
        let mut good = DfsCode::from_initial(0, 0, 1);
        good.push(DfsEdge::new(1, 2, 1, 0, 2));
        assert!(is_min(&good));
    }

    #[test]
    fn empty_code_is_min() {
        assert!(is_min(&DfsCode::new()));
    }

    #[test]
    fn benzene_ring_canonical() {
        // All-same-label 6-ring: min code is forward path of 5 edges plus
        // one backward closure to the root.
        let g = cycle(&[0; 6], 1);
        let c = min_dfs_code(&g);
        assert_eq!(c.len(), 6);
        let back_edges: Vec<_> = c.edges().iter().filter(|e| !e.is_forward()).collect();
        assert_eq!(back_edges.len(), 1);
        assert_eq!(back_edges[0].to, 0);
        assert!(is_min(&c));
    }

    #[test]
    fn mask_and_vec_backings_agree() {
        // Both backings must produce the same canonical code; graphs here
        // are small so the mask path is the default — force the Vec path
        // explicitly and compare.
        for g in [
            cycle(&[0, 1, 2, 1, 0, 2], 1),
            labeled_path(&[4, 3, 2, 1, 0], &[1, 1, 2, 2]),
            cycle(&[0; 6], 1),
        ] {
            let mask = build_min_with::<MaskSets>(&g, None, true).unwrap();
            let vec = build_min_with::<VecSets>(&g, None, true).unwrap();
            assert_eq!(mask, vec);
        }
    }

    #[test]
    fn pruned_and_unpruned_agree_on_symmetric_graphs() {
        // Highly symmetric graphs exercise the orbit pruning hardest: the
        // 6-ring has 12 automorphic initial embeddings that collapse to 1.
        for g in [
            cycle(&[0; 6], 1),
            cycle(&[0, 1, 0, 1], 2),
            labeled_path(&[3, 3, 3, 3], &[1, 1, 1]),
            labeled_path(&[9, 8, 7, 8, 9], &[1, 2, 2, 1]),
            cycle(&[0, 0, 1, 0, 0, 1], 1),
        ] {
            let pruned = min_dfs_code(&g);
            let unpruned = min_dfs_code_unpruned(&g);
            assert_eq!(pruned, unpruned);
            assert!(is_min(&pruned));
            assert!(is_min_unpruned(&pruned));
        }
    }

    #[test]
    fn pruned_and_unpruned_is_min_agree_on_non_minimal_codes() {
        let mut bad = DfsCode::from_initial(0, 1, 0);
        bad.push(DfsEdge::new(0, 2, 0, 1, 0));
        bad.push(DfsEdge::new(2, 3, 0, 1, 0));
        assert_eq!(is_min(&bad), is_min_unpruned(&bad));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        min_dfs_code(&b.build());
    }
}
