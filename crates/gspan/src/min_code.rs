//! Minimum DFS codes: gSpan's canonical form.
//!
//! The minimum DFS code of a connected labeled graph is computed by a
//! restricted self-projection: starting from the lexicographically smallest
//! single-edge code, repeatedly take the smallest legal extension across all
//! surviving embeddings of the current prefix in the graph itself. Because
//! only the minimal branch is followed, the loop runs exactly `|E|` steps.
//!
//! [`is_min`] runs the same loop against a candidate code with early exit at
//! the first divergence — the pruning test at every gSpan search node.

use crate::dfs_code::{extension_order, DfsCode, DfsEdge};
use crate::extend::{enumerate_extensions, Extension};
use graphsig_graph::{Graph, NodeId};

/// One embedding of a code prefix into the graph itself.
#[derive(Debug, Clone)]
struct SelfEmb {
    /// `nodes[dfs_index] = graph node`.
    nodes: Vec<NodeId>,
    used_node: Vec<bool>,
    used_edge: Vec<bool>,
}

impl SelfEmb {
    fn extended(&self, ext: &Extension) -> SelfEmb {
        let mut e = self.clone();
        if ext.dfs.is_forward() {
            debug_assert_eq!(e.nodes.len(), ext.dfs.to as usize);
            e.nodes.push(ext.gto);
            e.used_node[ext.gto as usize] = true;
        }
        e.used_edge[ext.edge as usize] = true;
        e
    }
}

/// Shared driver: either record the minimum code (check = `None`) or verify
/// a candidate prefix-by-prefix, returning `None` on the first mismatch.
fn build_min(g: &Graph, check: Option<&DfsCode>) -> Option<DfsCode> {
    if g.edge_count() == 0 {
        // Edgeless graphs have the empty code; a candidate must be empty too.
        return match check {
            Some(c) if !c.is_empty() => None,
            _ => Some(DfsCode::new()),
        };
    }

    // Minimum initial edge over all directed orientations.
    let mut best_key: Option<(u16, u16, u16)> = None;
    for e in g.edges() {
        let (lu, lv) = (g.node_label(e.u), g.node_label(e.v));
        for (a, b) in [(lu, lv), (lv, lu)] {
            let key = (a, e.label, b);
            if best_key.is_none_or(|bk| key < bk) {
                best_key = Some(key);
            }
        }
    }
    let (la, le, lb) = best_key.expect("graph has edges");
    let mut code = DfsCode::from_initial(la, le, lb);
    if let Some(c) = check {
        if c.edges().first() != code.edges().first() {
            return None;
        }
    }

    // Embeddings of the initial edge.
    let mut embs: Vec<SelfEmb> = Vec::new();
    for e in g.edges() {
        let (lu, lv) = (g.node_label(e.u), g.node_label(e.v));
        for (from, to, lf, lt) in [(e.u, e.v, lu, lv), (e.v, e.u, lv, lu)] {
            if (lf, e.label, lt) == (la, le, lb) {
                let mut used_node = vec![false; g.node_count()];
                used_node[from as usize] = true;
                used_node[to as usize] = true;
                let mut used_edge = vec![false; g.edge_count()];
                let eid = g
                    .neighbors(from)
                    .iter()
                    .find(|a| a.to == to)
                    .expect("edge exists")
                    .edge;
                used_edge[eid as usize] = true;
                embs.push(SelfEmb {
                    nodes: vec![from, to],
                    used_node,
                    used_edge,
                });
            }
        }
    }

    while code.len() < g.edge_count() {
        // Smallest extension across all embeddings.
        let mut best: Option<DfsEdge> = None;
        let mut best_children: Vec<SelfEmb> = Vec::new();
        for emb in &embs {
            enumerate_extensions(
                g,
                &code,
                &emb.nodes,
                &emb.used_node,
                &emb.used_edge,
                &mut |ext| match &best {
                    Some(b) => match extension_order(&ext.dfs, b) {
                        std::cmp::Ordering::Less => {
                            best = Some(ext.dfs);
                            best_children.clear();
                            best_children.push(emb.extended(&ext));
                        }
                        std::cmp::Ordering::Equal => best_children.push(emb.extended(&ext)),
                        std::cmp::Ordering::Greater => {}
                    },
                    None => {
                        best = Some(ext.dfs);
                        best_children.push(emb.extended(&ext));
                    }
                },
            );
        }
        let best = best.expect("connected graph always extends until all edges used");
        if let Some(c) = check {
            if c.edges()[code.len()] != best {
                return None;
            }
        }
        code.push(best);
        embs = best_children;
    }
    Some(code)
}

/// The canonical (minimum) DFS code of a connected labeled graph.
///
/// Two graphs are isomorphic iff their minimum DFS codes are equal, making
/// this the dedup key used throughout the workspace. Edgeless graphs yield
/// the empty code.
///
/// # Panics
/// Panics if the graph is not connected (disconnected graphs have no DFS
/// code).
pub fn min_dfs_code(g: &Graph) -> DfsCode {
    assert!(g.is_connected(), "min_dfs_code requires a connected graph");
    build_min(g, None).expect("building without a check cannot fail")
}

/// Whether `code` is the minimum DFS code of the graph it describes.
///
/// This is the gSpan pruning test: a search node whose code is not minimal
/// repeats a pattern already reached through its canonical code and the
/// whole subtree can be skipped.
pub fn is_min(code: &DfsCode) -> bool {
    if code.is_empty() {
        return true;
    }
    let g = code.to_graph();
    build_min(&g, Some(code)).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_graph::{are_isomorphic, GraphBuilder};

    fn cycle(labels: &[u16], el: u16) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = labels.iter().map(|&l| b.add_node(l)).collect();
        for i in 0..n.len() {
            b.add_edge(n[i], n[(i + 1) % n.len()], el);
        }
        b.build()
    }

    fn labeled_path(labels: &[u16], elabels: &[u16]) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = labels.iter().map(|&l| b.add_node(l)).collect();
        for (i, &el) in elabels.iter().enumerate() {
            b.add_edge(n[i], n[i + 1], el);
        }
        b.build()
    }

    #[test]
    fn single_edge_canonical_orientation() {
        let g = labeled_path(&[5, 2], &[7]);
        let c = min_dfs_code(&g);
        assert_eq!(c.edges(), &[DfsEdge::new(0, 1, 2, 7, 5)]);
    }

    #[test]
    fn code_roundtrips_to_isomorphic_graph() {
        let g = cycle(&[0, 1, 2, 1], 3);
        let c = min_dfs_code(&g);
        assert_eq!(c.len(), g.edge_count());
        assert!(are_isomorphic(&c.to_graph(), &g));
    }

    #[test]
    fn isomorphic_graphs_share_min_code() {
        // Same triangle built with different node orders.
        let a = cycle(&[3, 1, 2], 9);
        let b = cycle(&[1, 2, 3], 9);
        let c = cycle(&[2, 3, 1], 9);
        let code = min_dfs_code(&a);
        assert_eq!(code, min_dfs_code(&b));
        assert_eq!(code, min_dfs_code(&c));
    }

    #[test]
    fn non_isomorphic_graphs_differ() {
        let tri = cycle(&[0, 0, 0], 1);
        let path = labeled_path(&[0, 0, 0], &[1, 1]);
        assert_ne!(min_dfs_code(&tri), min_dfs_code(&path));
        let p12 = labeled_path(&[0, 0, 0], &[1, 2]);
        let p11 = labeled_path(&[0, 0, 0], &[1, 1]);
        assert_ne!(min_dfs_code(&p12), min_dfs_code(&p11));
    }

    #[test]
    fn min_code_is_min() {
        for g in [
            cycle(&[0, 1, 2, 3, 4, 5], 1),
            labeled_path(&[9, 8, 7, 8, 9], &[1, 2, 2, 1]),
            cycle(&[0, 0, 0, 0], 0),
        ] {
            assert!(is_min(&min_dfs_code(&g)));
        }
    }

    #[test]
    fn non_minimal_code_detected() {
        // Path a(0)-b(1)-c(2): starting the DFS at the 'c' end gives a
        // larger code than starting at the 'a' end.
        let mut bad = DfsCode::from_initial(2, 0, 1);
        bad.push(DfsEdge::new(1, 2, 1, 0, 0));
        assert!(!is_min(&bad));
        let mut good = DfsCode::from_initial(0, 0, 1);
        good.push(DfsEdge::new(1, 2, 1, 0, 2));
        assert!(is_min(&good));
    }

    #[test]
    fn empty_code_is_min() {
        assert!(is_min(&DfsCode::new()));
    }

    #[test]
    fn benzene_ring_canonical() {
        // All-same-label 6-ring: min code is forward path of 5 edges plus
        // one backward closure to the root.
        let g = cycle(&[0; 6], 1);
        let c = min_dfs_code(&g);
        assert_eq!(c.len(), 6);
        let back_edges: Vec<_> = c.edges().iter().filter(|e| !e.is_forward()).collect();
        assert_eq!(back_edges.len(), 1);
        assert_eq!(back_edges[0].to, 0);
        assert!(is_min(&c));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        min_dfs_code(&b.build());
    }
}
