//! Shared rightmost-path extension enumeration.
//!
//! Both the database miner and the minimality checker grow DFS codes the
//! same way: backward edges may only close cycles from the rightmost vertex
//! to another vertex on the rightmost path, and forward edges may only grow
//! out of rightmost-path vertices. This module enumerates the legal
//! extensions of one concrete embedding.

use crate::dfs_code::{DfsCode, DfsEdge};
use graphsig_graph::{Graph, NodeId};

/// A concrete extension: the DFS-code edge plus the graph-level step that
/// realizes it (`gfrom → gto` via edge id `edge`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Extension {
    pub dfs: DfsEdge,
    pub gfrom: NodeId,
    pub gto: NodeId,
    pub edge: u32,
}

/// The code-side state extension enumeration needs: rightmost vertex, the
/// DFS indices along the rightmost path, and per-DFS-index vertex labels.
/// It depends only on the code, so callers that enumerate many embeddings
/// of the same code compute it once instead of per embedding.
pub(crate) struct ExtFrame {
    /// DFS indices along the rightmost path, rightmost vertex first.
    path_vs: Vec<u32>,
    maxidx: u32,
    labels: Vec<u16>,
}

impl ExtFrame {
    pub(crate) fn of(code: &DfsCode) -> Self {
        debug_assert!(!code.is_empty());
        let rmpath = code.rightmost_path();
        let maxidx = code.rightmost_vertex();
        let labels = code.vertex_labels();
        let mut path_vs: Vec<u32> = Vec::with_capacity(rmpath.len() + 1);
        path_vs.push(maxidx);
        for &k in &rmpath {
            path_vs.push(code.edges()[k].from);
        }
        Self {
            path_vs,
            maxidx,
            labels,
        }
    }
}

/// Enumerate every legal rightmost-path extension of one embedding, with
/// the code-side state precomputed in `frame`.
///
/// * `nodes[i]` — graph node matched to DFS index `i`.
/// * `used_node` / `used_edge` — membership predicates over graph node and
///   edge ids (closures so callers can back them with indexed slices or
///   bitmasks).
///
/// Calls `out` once per legal extension, in no particular order; the caller
/// groups and sorts.
pub(crate) fn enumerate_extensions_framed(
    g: &Graph,
    frame: &ExtFrame,
    nodes: &[NodeId],
    used_node: impl Fn(NodeId) -> bool,
    used_edge: impl Fn(u32) -> bool,
    out: &mut impl FnMut(Extension),
) {
    let maxidx = frame.maxidx;
    let labels = &frame.labels;
    let vr_node = nodes[maxidx as usize];

    // Backward extensions: rightmost vertex -> earlier rightmost-path vertex.
    // Skip path_vs[0] (the rightmost vertex itself); the edge to its direct
    // parent is already used, so it is excluded automatically.
    for &j in frame.path_vs.iter().skip(1) {
        let j_node = nodes[j as usize];
        for a in g.neighbors(vr_node) {
            if a.to == j_node && !used_edge(a.edge) {
                out(Extension {
                    dfs: DfsEdge::new(
                        maxidx,
                        j,
                        labels[maxidx as usize],
                        a.label,
                        labels[j as usize],
                    ),
                    gfrom: vr_node,
                    gto: j_node,
                    edge: a.edge,
                });
            }
        }
    }

    // Forward extensions: from any rightmost-path vertex to a fresh vertex.
    for &i in &frame.path_vs {
        let i_node = nodes[i as usize];
        for a in g.neighbors(i_node) {
            if !used_node(a.to) {
                out(Extension {
                    dfs: DfsEdge::new(
                        i,
                        maxidx + 1,
                        labels[i as usize],
                        a.label,
                        g.node_label(a.to),
                    ),
                    gfrom: i_node,
                    gto: a.to,
                    edge: a.edge,
                });
            }
        }
    }
}

/// [`enumerate_extensions_framed`] with the frame derived from `code` and
/// slice-backed membership tests — the one-shot convenience form. Production
/// callers all enumerate many embeddings per code and use the framed form
/// directly; this remains as the reference shape the tests exercise.
#[cfg(test)]
pub(crate) fn enumerate_extensions(
    g: &Graph,
    code: &DfsCode,
    nodes: &[NodeId],
    used_node: &[bool],
    used_edge: &[bool],
    out: &mut impl FnMut(Extension),
) {
    let frame = ExtFrame::of(code);
    enumerate_extensions_framed(
        g,
        &frame,
        nodes,
        |n| used_node[n as usize],
        |e| used_edge[e as usize],
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_graph::GraphBuilder;

    #[test]
    fn path_embedding_extensions() {
        // Graph: square 0-1-2-3-0, all labels 0, edge label 1.
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(0)).collect();
        b.add_edge(n[0], n[1], 1);
        b.add_edge(n[1], n[2], 1);
        b.add_edge(n[2], n[3], 1);
        b.add_edge(n[3], n[0], 1);
        let g = b.build();

        // Embedding of the 3-path code (0,1)(1,2) as graph nodes 0,1,2.
        let mut code = DfsCode::from_initial(0, 1, 0);
        code.push(DfsEdge::new(1, 2, 0, 1, 0));
        let nodes = [0u32, 1, 2];
        let mut used_node = vec![true, true, true, false];
        let used_edge = vec![true, true, false, false];

        let mut exts = Vec::new();
        enumerate_extensions(&g, &code, &nodes, &used_node, &used_edge, &mut |e| {
            exts.push(e)
        });
        // Expected: forward 2->3 (edge id 2) and forward 0->3 (edge id 3).
        // No backward: the only candidate would close 2-0, but no such edge.
        assert_eq!(exts.len(), 2);
        assert!(exts.iter().all(|e| e.dfs.is_forward()));
        assert!(exts.iter().any(|e| e.dfs.from == 2 && e.gto == 3));
        assert!(exts.iter().any(|e| e.dfs.from == 0 && e.gto == 3));

        // Now mark node 3 used as if matched: the backward closure 2-3-? is
        // not applicable; instead verify backward enumeration on a triangle
        // below.
        used_node[3] = true;
        let mut exts2 = Vec::new();
        enumerate_extensions(&g, &code, &nodes, &used_node, &used_edge, &mut |e| {
            exts2.push(e)
        });
        assert!(exts2.is_empty());
    }

    #[test]
    fn backward_closure_detected() {
        // Triangle: nodes 0,1,2 all label 0, edges label 1.
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(0)).collect();
        b.add_edge(n[0], n[1], 1);
        b.add_edge(n[1], n[2], 1);
        b.add_edge(n[2], n[0], 1);
        let g = b.build();

        let mut code = DfsCode::from_initial(0, 1, 0);
        code.push(DfsEdge::new(1, 2, 0, 1, 0));
        let nodes = [0u32, 1, 2];
        let used_node = vec![true, true, true];
        let used_edge = vec![true, true, false];

        let mut exts = Vec::new();
        enumerate_extensions(&g, &code, &nodes, &used_node, &used_edge, &mut |e| {
            exts.push(e)
        });
        assert_eq!(exts.len(), 1);
        let e = exts[0];
        assert!(!e.dfs.is_forward());
        assert_eq!((e.dfs.from, e.dfs.to), (2, 0));
        assert_eq!(e.edge, 2);
    }

    #[test]
    fn framed_form_matches_one_shot_form() {
        // Bowtie-ish labeled graph; compare both entry points on the same
        // embedding state.
        let mut b = GraphBuilder::new();
        let n: Vec<_> = [0u16, 1, 0, 2].iter().map(|&l| b.add_node(l)).collect();
        b.add_edge(n[0], n[1], 1);
        b.add_edge(n[1], n[2], 2);
        b.add_edge(n[2], n[3], 1);
        b.add_edge(n[3], n[0], 2);
        let g = b.build();
        let mut code = DfsCode::from_initial(0, 1, 1);
        code.push(DfsEdge::new(1, 2, 1, 2, 0));
        let nodes = [0u32, 1, 2];
        let used_node = vec![true, true, true, false];
        let used_edge = vec![true, true, false, false];
        let mut one_shot = Vec::new();
        enumerate_extensions(&g, &code, &nodes, &used_node, &used_edge, &mut |e| {
            one_shot.push((e.dfs, e.gfrom, e.gto, e.edge))
        });
        let frame = ExtFrame::of(&code);
        let mut framed = Vec::new();
        enumerate_extensions_framed(
            &g,
            &frame,
            &nodes,
            |v| used_node[v as usize],
            |e| used_edge[e as usize],
            &mut |e| framed.push((e.dfs, e.gfrom, e.gto, e.edge)),
        );
        assert_eq!(one_shot, framed);
        assert!(!one_shot.is_empty());
    }
}
