//! Frequent-pattern classifier — the strawman of Section V.
//!
//! "Take the example of a classifier built on frequent subgraphs such as
//! benzene ... even though benzene is frequent, it is not discriminative
//! enough." This baseline does exactly that: the top-k most *frequent*
//! patterns of the training set become binary features (class labels are
//! ignored during feature mining), and a linear SVM classifies. The
//! `ablation_significant_vs_frequent` experiment shows it trailing the
//! significance-based classifier, reproducing the paper's motivation.

use crate::svm::{Kernel, Svm, SvmConfig};
use graphsig_graph::{CompiledGraph, Graph, GraphDb, MatcherKind, MultiMatcher};
use graphsig_gspan::{GSpan, MinerConfig, Pattern};

/// Frequent-pattern classifier parameters.
#[derive(Debug, Clone, Copy)]
pub struct FrequentConfig {
    /// Mining frequency threshold over the training set.
    pub min_freq: f64,
    /// Candidate pattern size cap (edges).
    pub max_edges: usize,
    /// Safety cap on enumerated candidates.
    pub max_candidates: usize,
    /// Number of most-frequent patterns kept as features.
    pub top_k: usize,
    /// SVM parameters (linear kernel).
    pub svm: SvmConfig,
    /// Isomorphism engine for feature containment tests.
    pub matcher: MatcherKind,
}

impl Default for FrequentConfig {
    fn default() -> Self {
        Self {
            min_freq: 0.1,
            max_edges: 8,
            max_candidates: 5_000,
            top_k: 50,
            svm: SvmConfig::default(),
            matcher: MatcherKind::default(),
        }
    }
}

/// The trained frequency-only baseline.
pub struct FrequentPatternClassifier {
    features: Vec<Pattern>,
    svm: Svm,
    train_vectors: Vec<Vec<f64>>,
    matcher: MatcherKind,
}

impl FrequentPatternClassifier {
    /// Train on `(db, labels)`: features are chosen by frequency alone.
    pub fn train(db: &GraphDb, labels: &[bool], cfg: FrequentConfig) -> Self {
        assert_eq!(db.len(), labels.len(), "label count mismatch");
        assert!(!db.is_empty(), "empty training set");
        let support = ((cfg.min_freq * db.len() as f64).ceil() as usize).max(1);
        let mut patterns = GSpan::new(
            MinerConfig::new(support)
                .with_max_edges(cfg.max_edges)
                .with_max_patterns(cfg.max_candidates),
        )
        .mine(db);
        // Most frequent first; bigger patterns break ties (more structure).
        patterns.sort_by(|a, b| {
            b.support
                .cmp(&a.support)
                .then_with(|| b.graph.edge_count().cmp(&a.graph.edge_count()))
        });
        patterns.truncate(cfg.top_k);

        let train_vectors: Vec<Vec<f64>> = db
            .graphs()
            .iter()
            .map(|g| vectorize(g, &patterns, cfg.matcher))
            .collect();
        let y: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let gram = Kernel::Linear.gram(&train_vectors);
        let svm = Svm::train(&gram, &y, cfg.svm);
        Self {
            features: patterns,
            svm,
            train_vectors,
            matcher: cfg.matcher,
        }
    }

    /// The selected pattern features, most frequent first.
    pub fn features(&self) -> &[Pattern] {
        &self.features
    }

    /// Decision value (`> 0` ⇒ positive).
    pub fn score(&self, query: &Graph) -> f64 {
        let x = vectorize(query, &self.features, self.matcher);
        let k_row: Vec<f64> = self
            .train_vectors
            .iter()
            .map(|t| Kernel::Linear.eval(&x, t))
            .collect();
        self.svm.decision(&k_row)
    }

    /// Hard classification.
    pub fn classify(&self, query: &Graph) -> bool {
        self.score(query) > 0.0
    }
}

/// Binary containment feature vector for `g` over `features`. With the
/// fast engine the target is compiled to bitsets once and shared across
/// all feature patterns (one compilation per graph, not per test); the
/// VF2 path matches directly. Shared with the LEAP classifier via
/// [`vectorize_over`].
pub(crate) fn vectorize(g: &Graph, features: &[Pattern], matcher: MatcherKind) -> Vec<f64> {
    vectorize_over(g, features.iter().map(|p| &p.graph), matcher)
}

/// [`vectorize`] over any sequence of pattern graphs.
pub(crate) fn vectorize_over<'a>(
    g: &Graph,
    patterns: impl Iterator<Item = &'a Graph>,
    matcher: MatcherKind,
) -> Vec<f64> {
    let as_bit = |m: bool| if m { 1.0 } else { 0.0 };
    match matcher {
        MatcherKind::Fast => {
            let compiled = CompiledGraph::compile(g);
            patterns
                .map(|p| as_bit(MultiMatcher::with_kind(p, matcher).exists_in_compiled(&compiled)))
                .collect()
        }
        MatcherKind::Vf2 => patterns
            .map(|p| as_bit(MultiMatcher::with_kind(p, matcher).exists_in(g)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_graph::parse_transactions;

    #[test]
    fn features_are_ranked_by_frequency() {
        let db = parse_transactions(
            "t # 0\nv 0 C\nv 1 C\ne 0 1 s\n\
             t # 1\nv 0 C\nv 1 C\ne 0 1 s\n\
             t # 2\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n",
        )
        .unwrap();
        let labels = vec![true, false, true];
        let clf = FrequentPatternClassifier::train(
            &db,
            &labels,
            FrequentConfig {
                min_freq: 0.3,
                top_k: 10,
                ..Default::default()
            },
        );
        let f = clf.features();
        assert!(!f.is_empty());
        // C-C (support 3) outranks C-O (support 1, filtered by min_freq).
        assert_eq!(f[0].support, 3);
        for w in f.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn frequency_alone_misses_class_structure() {
        // The class marker (N) is RARE: frequent features miss it entirely,
        // so the classifier cannot separate the classes, while the marker
        // trivially separates them for anything class-aware.
        let db = parse_transactions(
            "t # 0\nv 0 C\nv 1 C\nv 2 N\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 N\ne 0 1 s\ne 1 2 s\n\
             t # 2\nv 0 C\nv 1 C\ne 0 1 s\n\
             t # 3\nv 0 C\nv 1 C\ne 0 1 s\n\
             t # 4\nv 0 C\nv 1 C\ne 0 1 s\n\
             t # 5\nv 0 C\nv 1 C\ne 0 1 s\n",
        )
        .unwrap();
        let labels = vec![true, true, false, false, false, false];
        // min_freq 0.6 excludes the C-N pattern (frequency 1/3).
        let clf = FrequentPatternClassifier::train(
            &db,
            &labels,
            FrequentConfig {
                min_freq: 0.6,
                top_k: 5,
                ..Default::default()
            },
        );
        // Every feature occurs in every graph → identical vectors → the
        // SVM cannot separate the training set.
        let scores: Vec<f64> = (0..db.len()).map(|i| clf.score(db.graph(i))).collect();
        let first = scores[0];
        assert!(
            scores.iter().all(|s| (s - first).abs() < 1e-9),
            "frequency-only features unexpectedly discriminate: {scores:?}"
        );
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_rejected() {
        FrequentPatternClassifier::train(&GraphDb::new(), &[], FrequentConfig::default());
    }
}
