//! Graph classification on significant patterns (Section V of the paper),
//! plus the two baselines it is evaluated against (Section VI-D).
//!
//! * [`knn`] — the paper's classifier (Algorithms 3–4): mine significant
//!   sub-feature vectors from the positive and negative training sets, then
//!   score a query graph by its k closest significant vectors with a
//!   distance-weighted vote.
//! * [`eval`] — ROC / AUC, stratified k-fold cross-validation, and the
//!   balanced-training-set sampling protocol of Table VI.
//! * [`svm`] — a from-scratch SMO support-vector machine (the paper uses
//!   LIBSVM for both baselines).
//! * [`hungarian`] — O(n³) Hungarian algorithm for optimal assignment.
//! * [`oa`] — the optimal-assignment graph kernel baseline (Fröhlich et
//!   al.): neighborhood-aware atom similarity + Hungarian matching + SVM.
//! * [`leap`] — the LEAP-style discriminative-pattern baseline (Yan et
//!   al.): frequent patterns scored by their frequency leap between
//!   classes, binary containment features + SVM.
//! * [`frequent`] — the frequency-only strawman of Section V's motivation
//!   (benzene is frequent but not discriminative).

pub mod eval;
pub mod frequent;
pub mod heap;
pub mod hungarian;
pub mod knn;
pub mod leap;
pub mod oa;
pub mod svm;

pub use eval::{
    auc_from_scores, balanced_sample, best_threshold_youden, pr_curve, roc_curve, stratified_folds,
    Confusion,
};
pub use frequent::{FrequentConfig, FrequentPatternClassifier};
pub use heap::BoundedMinK;
pub use hungarian::hungarian_max;
pub use knn::{min_dist, GraphSigClassifier, KnnConfig};
pub use leap::{LeapClassifier, LeapConfig};
pub use oa::{OaClassifier, OaConfig};
pub use svm::{Kernel, Svm, SvmConfig};
