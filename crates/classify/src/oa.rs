//! Optimal-assignment (OA) graph kernel baseline (Fröhlich et al., ICML'05).
//!
//! The kernel between two molecules is the value of the *maximum-weight
//! assignment* between their atom sets under a neighborhood-aware atom
//! similarity, normalized by the larger atom count. Atom similarity is an
//! iterated label-refinement score: two atoms are similar when their labels
//! match and their neighborhoods (labels of adjacent atoms and bonds) match
//! recursively, with geometrically decaying depth weights — a faithful
//! simplification of the original's recursive optimal assignment on
//! neighborhoods (we match neighborhoods greedily on sorted scores; the
//! assignment at the top level is exact Hungarian).
//!
//! Each kernel evaluation costs O(n³) in the atom count, which is what
//! makes OA drastically slower than GraphSig's classifier on large training
//! sets — the paper's Fig. 17 and the `OA(3X)` blow-up.

use crate::hungarian::hungarian_max;
use crate::svm::{Svm, SvmConfig};
use graphsig_graph::{Graph, GraphDb};

/// OA classifier parameters.
#[derive(Debug, Clone, Copy)]
pub struct OaConfig {
    /// Neighborhood recursion depth.
    pub depth: usize,
    /// Decay applied per neighborhood level.
    pub decay: f64,
    /// SVM parameters.
    pub svm: SvmConfig,
}

impl Default for OaConfig {
    fn default() -> Self {
        Self {
            depth: 2,
            decay: 0.5,
            svm: SvmConfig::default(),
        }
    }
}

/// Pairwise atom similarity by iterated neighborhood refinement.
///
/// `sim[r][a][b]` after refinement `r`: label match required; neighborhoods
/// compared by greedily pairing the best-matching `(bond label, atom)`
/// pairs of the previous level.
fn atom_similarity(g1: &Graph, g2: &Graph, depth: usize, decay: f64) -> Vec<Vec<f64>> {
    let (n1, n2) = (g1.node_count(), g2.node_count());
    // Level 0: exact label match.
    let mut sim: Vec<Vec<f64>> = (0..n1)
        .map(|a| {
            (0..n2)
                .map(|b| {
                    if g1.node_label(a as u32) == g2.node_label(b as u32) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    for _ in 0..depth {
        let mut next = vec![vec![0.0; n2]; n1];
        for a in 0..n1 {
            for b in 0..n2 {
                if sim[a][b] == 0.0 && g1.node_label(a as u32) != g2.node_label(b as u32) {
                    continue;
                }
                let na = g1.neighbors(a as u32);
                let nb = g2.neighbors(b as u32);
                // Pair neighbors greedily on (bond match × prev similarity).
                let mut pair_scores: Vec<f64> = Vec::with_capacity(na.len() * nb.len());
                for x in na {
                    for y in nb {
                        if x.label == y.label {
                            pair_scores.push(sim[x.to as usize][y.to as usize]);
                        }
                    }
                }
                pair_scores.sort_by(|p, q| q.partial_cmp(p).unwrap_or(std::cmp::Ordering::Equal));
                let k = na.len().min(nb.len());
                let nb_score: f64 = pair_scores.iter().take(k).sum();
                let denom = na.len().max(nb.len()).max(1) as f64;
                let base = if g1.node_label(a as u32) == g2.node_label(b as u32) {
                    1.0
                } else {
                    0.0
                };
                next[a][b] = base * ((1.0 - decay) + decay * nb_score / denom);
            }
        }
        sim = next;
    }
    sim
}

/// The OA kernel value between two molecules: maximum-weight atom
/// assignment normalized by `max(|V1|, |V2|)`, so `K(G, G) = 1` for graphs
/// whose atoms match themselves perfectly.
pub fn oa_kernel(g1: &Graph, g2: &Graph, cfg: &OaConfig) -> f64 {
    if g1.node_count() == 0 || g2.node_count() == 0 {
        return 0.0;
    }
    let sim = atom_similarity(g1, g2, cfg.depth, cfg.decay);
    let (total, _) = hungarian_max(&sim);
    total / g1.node_count().max(g2.node_count()) as f64
}

/// OA kernel + SVM classifier.
pub struct OaClassifier {
    cfg: OaConfig,
    training: Vec<Graph>,
    svm: Svm,
}

impl OaClassifier {
    /// Train on `(db, labels)`; labels are class booleans.
    ///
    /// Cost: `O(n² · v³)` kernel evaluations dominate — the scalability
    /// wall the paper demonstrates with OA(3X).
    pub fn train(db: &GraphDb, labels: &[bool], cfg: OaConfig) -> Self {
        assert_eq!(db.len(), labels.len(), "label count mismatch");
        assert!(!db.is_empty(), "empty training set");
        let graphs: Vec<Graph> = db.graphs().to_vec();
        let n = graphs.len();
        let mut gram = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i..n {
                let v = oa_kernel(&graphs[i], &graphs[j], &cfg);
                gram[i][j] = v;
                gram[j][i] = v;
            }
        }
        let y: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let svm = Svm::train(&gram, &y, cfg.svm);
        Self {
            cfg,
            training: graphs,
            svm,
        }
    }

    /// Decision value (`> 0` ⇒ positive class); ROC sweeps this.
    pub fn score(&self, query: &Graph) -> f64 {
        let k_row: Vec<f64> = self
            .training
            .iter()
            .map(|t| oa_kernel(query, t, &self.cfg))
            .collect();
        self.svm.decision(&k_row)
    }

    /// Hard classification.
    pub fn classify(&self, query: &Graph) -> bool {
        self.score(query) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_graph::parse_transactions;

    fn graphs() -> GraphDb {
        parse_transactions(
            "t # 0\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 2\nv 0 N\nv 1 N\nv 2 N\ne 0 1 d\ne 1 2 d\n",
        )
        .unwrap()
    }

    #[test]
    fn kernel_is_one_on_identical_graphs() {
        let db = graphs();
        let cfg = OaConfig::default();
        let k = oa_kernel(db.graph(0), db.graph(1), &cfg);
        assert!((k - 1.0).abs() < 1e-9, "k = {k}");
        let kk = oa_kernel(db.graph(0), db.graph(0), &cfg);
        assert!((kk - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_is_zero_on_disjoint_alphabets() {
        let db = graphs();
        let cfg = OaConfig::default();
        let k = oa_kernel(db.graph(0), db.graph(2), &cfg);
        assert_eq!(k, 0.0);
    }

    #[test]
    fn kernel_is_symmetric() {
        let db = parse_transactions(
            "t # 0\nv 0 C\nv 1 O\nv 2 N\ne 0 1 s\ne 1 2 d\n\
             t # 1\nv 0 C\nv 1 C\nv 2 O\nv 3 N\ne 0 1 s\ne 1 2 s\ne 2 3 d\n",
        )
        .unwrap();
        let cfg = OaConfig::default();
        let a = oa_kernel(db.graph(0), db.graph(1), &cfg);
        let b = oa_kernel(db.graph(1), db.graph(0), &cfg);
        assert!((a - b).abs() < 1e-12);
        assert!(a > 0.0 && a < 1.0);
    }

    #[test]
    fn neighborhood_refinement_discriminates_context() {
        // Same label multiset, different structure: C-O-C vs O-C-C. The
        // kernel must be below 1 because atom contexts differ.
        let db = parse_transactions(
            "t # 0\nv 0 C\nv 1 O\nv 2 C\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 O\nv 1 C\nv 2 C\ne 0 1 s\ne 1 2 s\n",
        )
        .unwrap();
        let cfg = OaConfig::default();
        let k = oa_kernel(db.graph(0), db.graph(1), &cfg);
        assert!(k < 1.0 - 1e-6, "k = {k}");
        assert!(k > 0.5, "labels still mostly match: k = {k}");
    }

    #[test]
    fn classifier_separates_easy_classes() {
        // Class A: C-C-O chains; class B: N=N=N chains.
        let db = parse_transactions(
            "t # 0\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 2\nv 0 C\nv 1 O\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 3\nv 0 N\nv 1 N\nv 2 N\ne 0 1 d\ne 1 2 d\n\
             t # 4\nv 0 N\nv 1 N\ne 0 1 d\n\
             t # 5\nv 0 N\nv 1 N\nv 2 N\nv 3 N\ne 0 1 d\ne 1 2 d\ne 2 3 d\n",
        )
        .unwrap();
        let labels = vec![true, true, true, false, false, false];
        let clf = OaClassifier::train(&db, &labels, OaConfig::default());
        for (i, &l) in labels.iter().enumerate() {
            assert_eq!(clf.classify(db.graph(i)), l, "graph {i}");
        }
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn mismatched_labels_rejected() {
        OaClassifier::train(&graphs(), &[true], OaConfig::default());
    }
}
