//! The GraphSig classifier (Algorithms 3 and 4 of the paper).
//!
//! Training mines the sets `P` and `N` of significant sub-feature vectors
//! from the positive and negative training graphs (the feature-space half
//! of GraphSig: RWR → label groups → FVMine). Classification walks the
//! query graph's node vectors, finds for each node the distance to the
//! closest significant vector of either class (Algorithm 4), keeps the `k`
//! globally closest `(distance, class)` pairs, and takes a
//! distance-weighted vote: `score = Σ sign / (dist + δ)` (Algorithm 3).
//! Positive score → positive class.

use graphsig_core::{compute_all_window_vectors, group_by_label, GraphSigConfig, WindowKind};
use graphsig_features::{graph_count_vectors, graph_feature_vectors, FeatureSet};
use graphsig_fvmine::{is_sub_vector, FvMineConfig, FvMiner};
use graphsig_graph::{Graph, GraphDb};

/// Classifier hyper-parameters. The paper uses `k = 9` (Sec. VI-D).
#[derive(Debug, Clone)]
pub struct KnnConfig {
    /// Number of nearest significant vectors that vote.
    pub k: usize,
    /// The `δ` added to distances before inversion (div-by-zero guard).
    pub delta: f64,
    /// Feature-space mining parameters (RWR, FVMine thresholds).
    pub mining: GraphSigConfig,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self {
            k: 9,
            delta: 1.0,
            mining: GraphSigConfig::default(),
        }
    }
}

/// Algorithm 4: distance from vector `x` to the closest *sub-vector* of it
/// in `set`. Vectors in `set` that are not sub-vectors of `x` are at
/// distance infinity; a sub-vector's distance is `Σ_i (x_i - v_i)`.
pub fn min_dist(x: &[u8], set: &[Vec<u8>]) -> f64 {
    let mut min = f64::INFINITY;
    for v in set {
        if v.len() == x.len() && is_sub_vector(v, x) {
            let d: u32 = x.iter().zip(v).map(|(&a, &b)| (a - b) as u32).sum();
            min = min.min(d as f64);
        }
    }
    min
}

/// Algorithm 3 given pre-mined vector sets: returns the signed
/// distance-weighted score of a query graph's node vectors (`> 0` ⇒
/// positive).
pub fn score_vectors(
    query_vectors: &[Vec<u8>],
    positive: &[Vec<u8>],
    negative: &[Vec<u8>],
    k: usize,
    delta: f64,
) -> f64 {
    // The k globally closest (distance, sign) pairs, kept in the paper's
    // size-k priority queue (Algorithm 3, line 1).
    let mut best = crate::heap::BoundedMinK::new(k.max(1));
    for x in query_vectors {
        let pos = min_dist(x, positive);
        let neg = min_dist(x, negative);
        let (d, sign) = if neg < pos { (neg, -1.0) } else { (pos, 1.0) };
        if d.is_finite() {
            best.push(d, sign);
        }
    }
    best.into_sorted()
        .iter()
        .map(|&(d, s)| s / (d + delta))
        .sum()
}

/// The trained classifier: the significant vector sets `P` and `N` plus the
/// feature space they live in.
pub struct GraphSigClassifier {
    cfg: KnnConfig,
    features: FeatureSet,
    positive: Vec<Vec<u8>>,
    negative: Vec<Vec<u8>>,
}

impl GraphSigClassifier {
    /// Train: mine significant sub-feature vectors from each class.
    ///
    /// The feature set is selected on the union of both classes (so the two
    /// vector sets are comparable), then each class is mined independently
    /// with its own empirical priors — a vector significant among actives
    /// describes a region over-represented *within the active class*.
    pub fn train(positive: &GraphDb, negative: &GraphDb, cfg: KnnConfig) -> Self {
        cfg.mining.validate();
        let mut union = GraphDb::from_parts(Vec::new(), positive.labels().clone());
        for g in positive.graphs().iter().chain(negative.graphs()) {
            union.push(g.clone());
        }
        let features = FeatureSet::for_chemical(&union, cfg.mining.top_k_atoms);
        let pos_vectors = Self::mine_class(positive, &features, &cfg);
        let neg_vectors = Self::mine_class(negative, &features, &cfg);
        Self {
            cfg,
            features,
            positive: pos_vectors,
            negative: neg_vectors,
        }
    }

    fn mine_class(db: &GraphDb, fs: &FeatureSet, cfg: &KnnConfig) -> Vec<Vec<u8>> {
        let all = compute_all_window_vectors(
            db,
            fs,
            &cfg.mining.rwr,
            cfg.mining.window,
            cfg.mining.threads,
        );
        // FVMine per label group on the shared executor; flattening in
        // group order keeps the model byte-identical to a sequential run.
        let groups = group_by_label(&all);
        graphsig_core::par_map(cfg.mining.threads, &groups, |group| {
            let min_support = cfg.mining.fvmine_support(group.vectors.len());
            if group.vectors.len() < min_support {
                return Vec::new();
            }
            let miner = FvMiner::new(FvMineConfig::new(min_support, cfg.mining.max_pvalue));
            miner
                .mine(&group.vectors)
                .into_iter()
                .map(|sv| sv.vector)
                .collect()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Number of mined positive / negative significant vectors.
    pub fn model_sizes(&self) -> (usize, usize) {
        (self.positive.len(), self.negative.len())
    }

    /// The feature space the model was trained in.
    pub fn features(&self) -> &FeatureSet {
        &self.features
    }

    /// Signed score of a query graph (`> 0` ⇒ positive). This is the value
    /// whose threshold sweep yields the ROC curve.
    pub fn score(&self, query: &Graph) -> f64 {
        // The query must be windowed the same way the model was trained.
        let node_vectors = match self.cfg.mining.window {
            WindowKind::Rwr => graph_feature_vectors(query, &self.features, &self.cfg.mining.rwr),
            WindowKind::Count { radius } => graph_count_vectors(query, radius, &self.features),
        };
        let vectors: Vec<Vec<u8>> = node_vectors.into_iter().map(|nv| nv.bins).collect();
        score_vectors(
            &vectors,
            &self.positive,
            &self.negative,
            self.cfg.k,
            self.cfg.delta,
        )
    }

    /// Hard classification (Algorithm 3 lines 12–15).
    pub fn classify(&self, query: &Graph) -> bool {
        self.score(query) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_dist_matches_paper_example() {
        // Query vectors from Table I, training vectors from Table III.
        // "For vector v1 ... for both P2 and P3 the distance is 2."
        let v1 = vec![1u8, 0, 0, 2];
        let negatives = vec![
            vec![0u8, 0, 1, 1], // N1
            vec![0u8, 1, 0, 0], // N2
            vec![1u8, 1, 0, 1], // N3
        ];
        let positives = vec![
            vec![2u8, 0, 1, 3], // P1
            vec![1u8, 0, 0, 0], // P2
            vec![0u8, 0, 0, 1], // P3
        ];
        assert_eq!(min_dist(&v1, &negatives), f64::INFINITY);
        assert_eq!(min_dist(&v1, &positives), 2.0);
    }

    #[test]
    fn score_matches_paper_walkthrough() {
        // The full worked example: query = Table I (4 node vectors),
        // training = Table III, k = 3, δ = 0 in the paper's arithmetic.
        // Closest pairs: dist 2 (positive, v1), dist 1 (negative, v2),
        // dist 1 (positive, v4) → score = 1/2 - 1 + 1 = 0.5 → positive.
        let query = vec![
            vec![1u8, 0, 0, 2], // v1
            vec![1u8, 1, 0, 2], // v2
            vec![2u8, 0, 1, 2], // v3
            vec![1u8, 0, 1, 0], // v4
        ];
        let negatives = vec![vec![0u8, 0, 1, 1], vec![0u8, 1, 0, 0], vec![1u8, 1, 0, 1]];
        let positives = vec![vec![2u8, 0, 1, 3], vec![1u8, 0, 0, 0], vec![0u8, 0, 0, 1]];
        let score = score_vectors(&query, &positives, &negatives, 3, 0.0);
        assert!((score - 0.5).abs() < 1e-12, "score {score}");
        assert!(score > 0.0); // classified positive
    }

    #[test]
    fn per_node_distances_match_paper() {
        // v2's closest is N3 at distance 1; v3 has no finite sub-vector
        // among N1-N3/P2-P3? P2=[1,0,0,0] ⊆ v3=[2,0,1,2] at distance 4,
        // P3=[0,0,0,1] at distance 5, P1=[2,0,1,3] not ⊆ v3.
        let negatives = vec![vec![0u8, 0, 1, 1], vec![0u8, 1, 0, 0], vec![1u8, 1, 0, 1]];
        let positives = vec![vec![2u8, 0, 1, 3], vec![1u8, 0, 0, 0], vec![0u8, 0, 0, 1]];
        let v2 = vec![1u8, 1, 0, 2];
        assert_eq!(min_dist(&v2, &negatives), 1.0);
        let v4 = vec![1u8, 0, 1, 0];
        assert_eq!(min_dist(&v4, &positives), 1.0); // P2 at distance 1
        let v3 = vec![2u8, 0, 1, 2];
        assert_eq!(min_dist(&v3, &positives), 4.0);
    }

    #[test]
    fn empty_training_sets_give_zero_score() {
        let q = vec![vec![1u8, 2, 3]];
        assert_eq!(score_vectors(&q, &[], &[], 5, 1.0), 0.0);
    }

    #[test]
    fn delta_prevents_division_by_zero() {
        // Exact match: distance 0.
        let q = vec![vec![1u8, 1]];
        let p = vec![vec![1u8, 1]];
        let s = score_vectors(&q, &p, &[], 1, 0.5);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_separates_planted_classes() {
        use graphsig_datagen::aids_like;
        // Small but real: actives carry AZT/FDT cores, inactives don't.
        let data = aids_like(400, 77);
        let active_ids = data.active_ids();
        let inactive_ids = data.inactive_ids();
        assert!(active_ids.len() >= 10);
        // Train on ~2/3 of each class, test on the rest.
        let (ptrain, ptest) = active_ids.split_at(active_ids.len() * 2 / 3);
        let ntrain = &inactive_ids[..ptrain.len()];
        let ntest = &inactive_ids[ptrain.len()..ptrain.len() + ptest.len().max(3)];
        let pos_db = data.db.subset(ptrain);
        let neg_db = data.db.subset(ntrain);
        let cfg = KnnConfig {
            mining: GraphSigConfig {
                min_freq: 0.05,
                max_pvalue: 0.1,
                ..Default::default()
            },
            ..Default::default()
        };
        let clf = GraphSigClassifier::train(&pos_db, &neg_db, cfg);
        let (np, nn) = clf.model_sizes();
        assert!(np > 0, "no positive significant vectors mined");
        assert!(nn > 0, "no negative significant vectors mined");
        // Scores of actives should exceed scores of inactives on average.
        let mean = |ids: &[usize]| {
            ids.iter()
                .map(|&i| clf.score(data.db.graph(i)))
                .sum::<f64>()
                / ids.len() as f64
        };
        let pos_mean = mean(ptest);
        let neg_mean = mean(ntest);
        assert!(
            pos_mean > neg_mean,
            "pos mean {pos_mean} vs neg mean {neg_mean}"
        );
    }
}
