//! Evaluation harness: ROC/AUC, stratified cross-validation, balanced
//! sampling — the protocol of Section VI-D and Table VI.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Area under the ROC curve from `(score, is_positive)` pairs, computed via
/// the rank statistic (Mann–Whitney U): the probability that a random
/// positive outscores a random negative, with ties counting half.
///
/// Returns 0.5 when either class is empty.
pub fn auc_from_scores(samples: &[(f64, bool)]) -> f64 {
    let pos: Vec<f64> = samples.iter().filter(|s| s.1).map(|s| s.0).collect();
    let neg: Vec<f64> = samples.iter().filter(|s| !s.1).map(|s| s.0).collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

/// The ROC curve as `(false positive rate, true positive rate)` points,
/// sweeping the decision threshold from `+inf` down to `-inf`. Starts at
/// `(0,0)` and ends at `(1,1)`.
pub fn roc_curve(samples: &[(f64, bool)]) -> Vec<(f64, f64)> {
    let p = samples.iter().filter(|s| s.1).count() as f64;
    let n = samples.iter().filter(|s| !s.1).count() as f64;
    let mut sorted: Vec<&(f64, bool)> = samples.iter().collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut curve = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0.0f64, 0.0f64);
    let mut i = 0;
    while i < sorted.len() {
        // Process ties as one block so the curve is threshold-consistent.
        let threshold = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == threshold {
            if sorted[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        curve.push((
            if n == 0.0 { 0.0 } else { fp / n },
            if p == 0.0 { 0.0 } else { tp / p },
        ));
    }
    curve
}

/// Stratified k-fold split: returns `folds` index sets, each with (as close
/// as possible) the same class ratio as the whole. Deterministic for a
/// given seed.
///
/// # Panics
/// Panics if `folds < 2` or there are fewer samples than folds.
pub fn stratified_folds(labels: &[bool], folds: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(folds >= 2, "need at least 2 folds");
    assert!(labels.len() >= folds, "fewer samples than folds");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); folds];
    for (i, &id) in pos.iter().enumerate() {
        out[i % folds].push(id);
    }
    for (i, &id) in neg.iter().enumerate() {
        out[i % folds].push(id);
    }
    for f in &mut out {
        f.sort_unstable();
    }
    out
}

/// The paper's balanced-training protocol: sample `fraction` of the
/// positives (e.g. 30%) and an equal number of negatives. Returns
/// `(positive ids, negative ids)`; deterministic for a given seed.
pub fn balanced_sample(labels: &[bool], fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let take = ((pos.len() as f64 * fraction).round() as usize)
        .max(1)
        .min(pos.len())
        .min(neg.len());
    pos.truncate(take);
    neg.truncate(take);
    pos.sort_unstable();
    neg.sort_unstable();
    (pos, neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_classifier() {
        let s = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert_eq!(auc_from_scores(&s), 1.0);
    }

    #[test]
    fn auc_inverted_classifier() {
        let s = [(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert_eq!(auc_from_scores(&s), 0.0);
    }

    #[test]
    fn auc_random_and_ties() {
        let s = [(0.5, true), (0.5, false)];
        assert_eq!(auc_from_scores(&s), 0.5);
        assert_eq!(auc_from_scores(&[(1.0, true)]), 0.5); // degenerate
    }

    #[test]
    fn auc_mixed_case() {
        // pos: 0.9, 0.4; neg: 0.6, 0.1 → pairs: (0.9>0.6), (0.9>0.1),
        // (0.4<0.6), (0.4>0.1) → 3/4.
        let s = [(0.9, true), (0.4, true), (0.6, false), (0.1, false)];
        assert!((auc_from_scores(&s) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn roc_endpoints_and_monotonicity() {
        let s = [
            (0.9, true),
            (0.7, false),
            (0.6, true),
            (0.4, true),
            (0.2, false),
        ];
        let curve = roc_curve(&s);
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn roc_area_consistent_with_auc() {
        let s = [
            (0.9, true),
            (0.7, false),
            (0.6, true),
            (0.4, true),
            (0.2, false),
        ];
        let curve = roc_curve(&s);
        // Trapezoidal area under the curve.
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0;
        }
        assert!((area - auc_from_scores(&s)).abs() < 1e-12);
    }

    #[test]
    fn folds_partition_and_stratify() {
        let labels: Vec<bool> = (0..100).map(|i| i % 10 == 0).collect(); // 10% positive
        let folds = stratified_folds(&labels, 5, 42);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        for f in &folds {
            let pos = f.iter().filter(|&&i| labels[i]).count();
            assert_eq!(pos, 2, "each fold holds 2 of the 10 positives");
        }
    }

    #[test]
    fn folds_are_deterministic_per_seed() {
        let labels: Vec<bool> = (0..50).map(|i| i % 5 == 0).collect();
        assert_eq!(
            stratified_folds(&labels, 5, 7),
            stratified_folds(&labels, 5, 7)
        );
        assert_ne!(
            stratified_folds(&labels, 5, 7),
            stratified_folds(&labels, 5, 8)
        );
    }

    #[test]
    fn balanced_sample_is_balanced() {
        let labels: Vec<bool> = (0..200).map(|i| i < 20).collect(); // 10% positive
        let (pos, neg) = balanced_sample(&labels, 0.3, 1);
        assert_eq!(pos.len(), 6); // 30% of 20
        assert_eq!(neg.len(), 6);
        assert!(pos.iter().all(|&i| labels[i]));
        assert!(neg.iter().all(|&i| !labels[i]));
    }

    #[test]
    fn balanced_sample_caps_at_available() {
        let labels = vec![true, true, false];
        let (pos, neg) = balanced_sample(&labels, 1.0, 1);
        assert_eq!(pos.len(), 1); // capped by single negative
        assert_eq!(neg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn one_fold_rejected() {
        stratified_folds(&[true, false], 1, 0);
    }
}

/// Precision–recall curve as `(recall, precision)` points, threshold swept
/// from `+inf` downward. Starts after the first prediction; recall reaches
/// 1.0 at the end when positives exist.
pub fn pr_curve(samples: &[(f64, bool)]) -> Vec<(f64, f64)> {
    let total_pos = samples.iter().filter(|s| s.1).count() as f64;
    let mut sorted: Vec<&(f64, bool)> = samples.iter().collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut curve = Vec::new();
    let (mut tp, mut fp) = (0.0f64, 0.0f64);
    let mut i = 0;
    while i < sorted.len() {
        let threshold = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == threshold {
            if sorted[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        let recall = if total_pos == 0.0 {
            0.0
        } else {
            tp / total_pos
        };
        let precision = if tp + fp == 0.0 { 1.0 } else { tp / (tp + fp) };
        curve.push((recall, precision));
    }
    curve
}

/// The decision threshold maximizing Youden's J (`tpr - fpr`), returned as
/// `(threshold, j)`. Useful for turning a scored classifier into a hard
/// one on imbalanced screens. Returns `(0.0, 0.0)` when a class is absent.
pub fn best_threshold_youden(samples: &[(f64, bool)]) -> (f64, f64) {
    let p = samples.iter().filter(|s| s.1).count() as f64;
    let n = samples.len() as f64 - p;
    if p == 0.0 || n == 0.0 {
        return (0.0, 0.0);
    }
    let mut sorted: Vec<&(f64, bool)> = samples.iter().collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let (mut tp, mut fp) = (0.0f64, 0.0f64);
    let mut best = (f64::INFINITY, 0.0f64);
    let mut i = 0;
    while i < sorted.len() {
        let threshold = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == threshold {
            if sorted[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        let j = tp / p - fp / n;
        if j > best.1 {
            best = (threshold, j);
        }
    }
    best
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn pr_curve_perfect_classifier() {
        let s = [(0.9, true), (0.8, true), (0.2, false)];
        let curve = pr_curve(&s);
        // Precision stays 1.0 until all positives are recalled.
        assert_eq!(curve[0], (0.5, 1.0));
        assert_eq!(curve[1], (1.0, 1.0));
        assert_eq!(curve.last().unwrap().0, 1.0);
    }

    #[test]
    fn pr_curve_mixed() {
        let s = [(0.9, true), (0.7, false), (0.5, true)];
        let curve = pr_curve(&s);
        assert_eq!(curve[0], (0.5, 1.0));
        assert_eq!(curve[1], (0.5, 0.5));
        assert_eq!(curve[2], (1.0, 2.0 / 3.0));
    }

    #[test]
    fn youden_separable() {
        let s = [(0.9, true), (0.8, true), (0.3, false), (0.1, false)];
        let (thr, j) = best_threshold_youden(&s);
        assert_eq!(j, 1.0);
        assert!(thr <= 0.8 && thr > 0.3);
    }

    #[test]
    fn youden_degenerate_single_class() {
        assert_eq!(best_threshold_youden(&[(0.5, true)]), (0.0, 0.0));
        assert_eq!(best_threshold_youden(&[]), (0.0, 0.0));
    }
}

/// Confusion counts at a fixed decision threshold (`score > threshold` ⇒
/// predicted positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions at `threshold`.
    pub fn at_threshold(samples: &[(f64, bool)], threshold: f64) -> Self {
        let mut c = Confusion {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for &(score, label) in samples {
            match (score > threshold, label) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// `tp / (tp + fp)`; 1.0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// `tp / (tp + fn)`; 0.0 when there are no positives.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Harmonic mean of precision and recall (0 when both degenerate).
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod confusion_tests {
    use super::*;

    fn samples() -> Vec<(f64, bool)> {
        vec![
            (0.9, true),
            (0.6, true),
            (0.4, false),
            (0.2, true),
            (0.1, false),
        ]
    }

    #[test]
    fn counts_at_half() {
        let c = Confusion::at_threshold(&samples(), 0.5);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 0,
                tn: 2,
                fn_: 1
            }
        );
        assert!((c.accuracy() - 0.8).abs() < 1e-12);
        assert_eq!(c.precision(), 1.0);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn extreme_thresholds() {
        let all_pos = Confusion::at_threshold(&samples(), f64::NEG_INFINITY);
        assert_eq!(all_pos.fn_ + all_pos.tn, 0);
        assert_eq!(all_pos.recall(), 1.0);
        let all_neg = Confusion::at_threshold(&samples(), f64::INFINITY);
        assert_eq!(all_neg.tp + all_neg.fp, 0);
        assert_eq!(all_neg.precision(), 1.0); // vacuous
        assert_eq!(all_neg.recall(), 0.0);
    }

    #[test]
    fn empty_samples() {
        let c = Confusion::at_threshold(&[], 0.0);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }
}
