//! A from-scratch SMO support-vector machine.
//!
//! Stands in for LIBSVM in the baseline classifiers (the paper plugs both
//! the OA kernel and LEAP's pattern features into LIBSVM). This is the
//! simplified sequential-minimal-optimization algorithm (Platt 1998, in the
//! well-known simplified form): pairs of Lagrange multipliers are optimized
//! analytically until no KKT violations remain. The second multiplier is
//! chosen by Platt's heuristic — maximize `|E_i - E_j|` — with an in-order
//! scan as fallback, so training is fully deterministic (no RNG involved).
//! Training operates on a precomputed Gram matrix so arbitrary (even
//! non-PSD, like OA) kernels can be used; prediction needs only kernel
//! evaluations against the training set.

/// Kernel functions over dense feature vectors, for callers that don't
/// precompute the Gram matrix themselves.
#[derive(Debug, Clone, Copy)]
pub enum Kernel {
    /// Dot product.
    Linear,
    /// `exp(-gamma * ||x - y||^2)`.
    Rbf {
        /// Width parameter.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluate the kernel.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => x.iter().zip(y).map(|(a, b)| a * b).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
        }
    }

    /// Gram matrix over a sample set.
    pub fn gram(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = xs.len();
        let mut g = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i..n {
                let v = self.eval(&xs[i], &xs[j]);
                g[i][j] = v;
                g[j][i] = v;
            }
        }
        g
    }
}

/// SMO hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Soft-margin penalty `C`.
    pub c: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Consecutive passes without updates before declaring convergence.
    pub max_passes: usize,
    /// Hard cap on outer iterations.
    pub max_iters: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            c: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_iters: 2_000,
        }
    }
}

/// A trained SVM: dual coefficients over the training set plus the bias.
#[derive(Debug, Clone)]
pub struct Svm {
    /// `alpha_i * y_i` per training sample.
    coef: Vec<f64>,
    /// Bias term.
    b: f64,
}

impl Svm {
    /// Train on a precomputed Gram matrix and labels in `{-1, +1}`.
    ///
    /// # Panics
    /// Panics on size mismatches or labels outside `{-1, +1}`.
    pub fn train(gram: &[Vec<f64>], y: &[f64], cfg: SvmConfig) -> Self {
        let n = y.len();
        assert_eq!(gram.len(), n, "gram/label size mismatch");
        assert!(gram.iter().all(|r| r.len() == n), "gram must be square");
        assert!(
            y.iter().all(|&v| v == 1.0 || v == -1.0),
            "labels must be -1/+1"
        );
        assert!(n > 0, "empty training set");
        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let f = |alpha: &[f64], b: f64, i: usize| -> f64 {
            let mut s = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    s += alpha[j] * y[j] * gram[i][j];
                }
            }
            s
        };
        let mut passes = 0usize;
        let mut iters = 0usize;
        while passes < cfg.max_passes && iters < cfg.max_iters {
            iters += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let ei = f(&alpha, b, i) - y[i];
                if !((y[i] * ei < -cfg.tol && alpha[i] < cfg.c)
                    || (y[i] * ei > cfg.tol && alpha[i] > 0.0))
                {
                    continue;
                }
                // Second multiplier by Platt's heuristic: try candidates in
                // decreasing `|E_i - E_j|` order, taking the first pair that
                // makes progress. Deterministic, so training never depends
                // on an RNG stream.
                let errs: Vec<f64> = (0..n).map(|j| f(&alpha, b, j) - y[j]).collect();
                let mut order: Vec<usize> = (0..n).filter(|&j| j != i).collect();
                order.sort_by(|&a, &c| {
                    (ei - errs[c])
                        .abs()
                        .partial_cmp(&(ei - errs[a]).abs())
                        .unwrap()
                        .then(a.cmp(&c))
                });
                for j in order {
                    let ej = errs[j];
                    let (ai_old, aj_old) = (alpha[i], alpha[j]);
                    let (lo, hi) = if y[i] != y[j] {
                        (
                            (alpha[j] - alpha[i]).max(0.0),
                            (cfg.c + alpha[j] - alpha[i]).min(cfg.c),
                        )
                    } else {
                        (
                            (alpha[i] + alpha[j] - cfg.c).max(0.0),
                            (alpha[i] + alpha[j]).min(cfg.c),
                        )
                    };
                    if lo >= hi {
                        continue;
                    }
                    let eta = 2.0 * gram[i][j] - gram[i][i] - gram[j][j];
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut aj = aj_old - y[j] * (ei - ej) / eta;
                    aj = aj.clamp(lo, hi);
                    if (aj - aj_old).abs() < 1e-7 {
                        continue;
                    }
                    let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                    alpha[i] = ai;
                    alpha[j] = aj;
                    let b1 = b
                        - ei
                        - y[i] * (ai - ai_old) * gram[i][i]
                        - y[j] * (aj - aj_old) * gram[i][j];
                    let b2 = b
                        - ej
                        - y[i] * (ai - ai_old) * gram[i][j]
                        - y[j] * (aj - aj_old) * gram[j][j];
                    b = if 0.0 < ai && ai < cfg.c {
                        b1
                    } else if 0.0 < aj && aj < cfg.c {
                        b2
                    } else {
                        (b1 + b2) / 2.0
                    };
                    changed += 1;
                    break;
                }
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }
        let coef = alpha.iter().zip(y).map(|(&a, &yy)| a * yy).collect();
        Self { coef, b }
    }

    /// Decision value for a test point, given its kernel evaluations
    /// against every training sample (`k_row[i] = K(x, x_i)`).
    pub fn decision(&self, k_row: &[f64]) -> f64 {
        assert_eq!(k_row.len(), self.coef.len(), "kernel row size mismatch");
        self.coef
            .iter()
            .zip(k_row)
            .map(|(&c, &k)| c * k)
            .sum::<f64>()
            + self.b
    }

    /// Hard prediction in `{-1, +1}`.
    pub fn predict(&self, k_row: &[f64]) -> f64 {
        if self.decision(k_row) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of training samples with non-zero dual coefficient.
    pub fn support_vector_count(&self) -> usize {
        self.coef.iter().filter(|&&c| c.abs() > 1e-9).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Train on explicit features with a kernel, classify the same points.
    fn train_on(xs: &[Vec<f64>], y: &[f64], kernel: Kernel) -> (Svm, Vec<Vec<f64>>) {
        let gram = kernel.gram(xs);
        let svm = Svm::train(&gram, y, SvmConfig::default());
        (svm, gram)
    }

    #[test]
    fn linearly_separable_1d() {
        let xs: Vec<Vec<f64>> = vec![
            vec![-3.0],
            vec![-2.0],
            vec![-1.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
        ];
        let y = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        let (svm, gram) = train_on(&xs, &y, Kernel::Linear);
        for (i, (row, want)) in gram.iter().zip(&y).enumerate() {
            assert_eq!(svm.predict(row), *want, "sample {i}");
        }
        // Generalization to held-out points.
        let krow = |x: &Vec<f64>| {
            xs.iter()
                .map(|t| Kernel::Linear.eval(x, t))
                .collect::<Vec<_>>()
        };
        assert_eq!(svm.predict(&krow(&vec![10.0])), 1.0);
        assert_eq!(svm.predict(&krow(&vec![-10.0])), -1.0);
    }

    #[test]
    fn xor_needs_rbf() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let k = Kernel::Rbf { gamma: 2.0 };
        let gram = k.gram(&xs);
        let svm = Svm::train(
            &gram,
            &y,
            SvmConfig {
                c: 10.0,
                ..Default::default()
            },
        );
        for (i, (row, want)) in gram.iter().zip(&y).enumerate() {
            assert_eq!(svm.predict(row), *want, "sample {i}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i as f64) / 10.0 - 1.0, ((i * 7) % 13) as f64 / 13.0])
            .collect();
        let y: Vec<f64> = xs
            .iter()
            .map(|v| if v[0] > 0.0 { 1.0 } else { -1.0 })
            .collect();
        let gram = Kernel::Linear.gram(&xs);
        let a = Svm::train(&gram, &y, SvmConfig::default());
        let b = Svm::train(&gram, &y, SvmConfig::default());
        assert_eq!(a.coef, b.coef);
        assert_eq!(a.b, b.b);
    }

    #[test]
    fn support_vectors_are_sparse() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 - 15.0]).collect();
        let y: Vec<f64> = xs
            .iter()
            .map(|v| if v[0] > 0.0 { 1.0 } else { -1.0 })
            .collect();
        let (svm, _) = train_on(&xs, &y, Kernel::Linear);
        // Far-away points should not all become support vectors.
        assert!(svm.support_vector_count() < xs.len());
    }

    #[test]
    fn gram_is_symmetric() {
        let xs = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, -1.0]];
        for k in [Kernel::Linear, Kernel::Rbf { gamma: 0.7 }] {
            let g = k.gram(&xs);
            for (i, row) in g.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    assert!((v - g[j][i]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn bad_labels_rejected() {
        Svm::train(&[vec![1.0]], &[0.5], SvmConfig::default());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_gram_rejected() {
        Svm::train(&[vec![1.0]], &[1.0, -1.0], SvmConfig::default());
    }
}
