//! The bounded priority queue of Algorithm 3.
//!
//! The paper keeps "a priority queue of size k" of the closest significant
//! vectors seen while scanning the query graph's nodes. This is that
//! structure: a max-heap on distance that holds at most `k` entries, so the
//! k smallest distances survive in O(n log k) for n insertions.

/// A size-bounded min-k collector: after any number of [`push`](Self::push)
/// calls it retains the `k` entries with the smallest keys.
#[derive(Debug, Clone)]
pub struct BoundedMinK<T> {
    k: usize,
    /// Max-heap on key: the root is the current worst of the best k.
    heap: std::collections::BinaryHeap<Entry<T>>,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    key: f64,
    value: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order on f64 keys; NaN sorts last so it is evicted first.
        self.key
            .partial_cmp(&other.key)
            .unwrap_or_else(|| self.key.is_nan().cmp(&other.key.is_nan()))
    }
}

impl<T> BoundedMinK<T> {
    /// A collector retaining the `k` smallest-keyed entries.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer an entry; it is kept iff it is among the k smallest seen.
    pub fn push(&mut self, key: f64, value: T) {
        if self.heap.len() < self.k {
            self.heap.push(Entry { key, value });
            return;
        }
        if let Some(worst) = self.heap.peek() {
            if key < worst.key {
                self.heap.pop();
                self.heap.push(Entry { key, value });
            }
        }
    }

    /// Current number of retained entries (`<= k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The retained entries as `(key, value)`, ascending by key.
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut v: Vec<(f64, T)> = self.heap.into_iter().map(|e| (e.key, e.value)).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut h = BoundedMinK::new(3);
        for (i, &x) in [5.0, 1.0, 4.0, 2.0, 8.0, 3.0].iter().enumerate() {
            h.push(x, i);
        }
        let got = h.into_sorted();
        let keys: Vec<f64> = got.iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![1.0, 2.0, 3.0]);
        // Values track their keys.
        assert_eq!(got[0].1, 1);
        assert_eq!(got[1].1, 3);
        assert_eq!(got[2].1, 5);
    }

    #[test]
    fn fewer_than_k_keeps_all() {
        let mut h = BoundedMinK::new(10);
        h.push(2.0, 'a');
        h.push(1.0, 'b');
        assert_eq!(h.len(), 2);
        let keys: Vec<f64> = h.into_sorted().iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![1.0, 2.0]);
    }

    #[test]
    fn ties_are_kept_up_to_capacity() {
        let mut h = BoundedMinK::new(2);
        h.push(1.0, 0);
        h.push(1.0, 1);
        h.push(1.0, 2);
        assert_eq!(h.len(), 2);
        assert!(h.into_sorted().iter().all(|e| e.0 == 1.0));
    }

    #[test]
    fn matches_sort_truncate_on_random_input() {
        let mut state = 0xABCDu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000) as f64 / 10.0
        };
        for k in [1usize, 3, 7] {
            let xs: Vec<f64> = (0..50).map(|_| next()).collect();
            let mut h = BoundedMinK::new(k);
            for (i, &x) in xs.iter().enumerate() {
                h.push(x, i);
            }
            let got: Vec<f64> = h.into_sorted().iter().map(|e| e.0).collect();
            let mut want = xs.clone();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            want.truncate(k);
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        BoundedMinK::<()>::new(0);
    }
}
