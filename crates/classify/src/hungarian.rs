//! Hungarian algorithm (Kuhn–Munkres) for optimal assignment, O(n³).
//!
//! The optimal-assignment kernel needs, for every pair of molecules, the
//! maximum-weight matching between their atom sets. This is the classic
//! potentials-based implementation of the Hungarian algorithm on a
//! rectangular matrix (rows ≤ columns after an internal transpose, padding
//! never needed).

/// Maximum-weight assignment of rows to columns.
///
/// `weights[r][c]` is the benefit of assigning row `r` to column `c`
/// (weights may be any finite f64). Every row is assigned to a distinct
/// column when `rows <= cols`; when `rows > cols` the matrix is transposed
/// internally, so every *column* gets a row and unmatched rows return
/// `usize::MAX` in the mapping.
///
/// Returns `(total weight, assignment)` where `assignment[r]` is the column
/// of row `r` (or `usize::MAX` if unmatched).
pub fn hungarian_max(weights: &[Vec<f64>]) -> (f64, Vec<usize>) {
    let rows = weights.len();
    if rows == 0 {
        return (0.0, Vec::new());
    }
    let cols = weights[0].len();
    assert!(
        weights.iter().all(|r| r.len() == cols),
        "ragged weight matrix"
    );
    if cols == 0 {
        return (0.0, vec![usize::MAX; rows]);
    }
    if rows > cols {
        // Transpose, solve, invert the mapping.
        let t: Vec<Vec<f64>> = (0..cols)
            .map(|c| (0..rows).map(|r| weights[r][c]).collect())
            .collect();
        let (w, col_to_row) = hungarian_max(&t);
        let mut assignment = vec![usize::MAX; rows];
        for (c, &r) in col_to_row.iter().enumerate() {
            if r != usize::MAX {
                assignment[r] = c;
            }
        }
        return (w, assignment);
    }
    // Minimize negated weights with the potentials algorithm (1-indexed).
    let n = rows;
    let m = cols;
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = -weights[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![usize::MAX; n];
    let mut total = 0.0;
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
            total += weights[p[j] - 1][j - 1];
        }
    }
    (total, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_optimal_on_diagonal_matrix() {
        let w = vec![
            vec![5.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 5.0],
        ];
        let (total, a) = hungarian_max(&w);
        assert_eq!(total, 15.0);
        assert_eq!(a, vec![0, 1, 2]);
    }

    #[test]
    fn picks_cross_assignment_when_better() {
        let w = vec![vec![1.0, 10.0], vec![10.0, 1.0]];
        let (total, a) = hungarian_max(&w);
        assert_eq!(total, 20.0);
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn classic_3x3_case() {
        // Max-weight version of a standard example.
        let w = vec![
            vec![7.0, 4.0, 3.0],
            vec![6.0, 8.0, 5.0],
            vec![9.0, 4.0, 4.0],
        ];
        let (total, a) = hungarian_max(&w);
        // Best: r0->c1 (4)? Enumerate: perms and sums:
        // 012: 7+8+4=19; 021: 7+5+4=16; 102: 4+6+4=14; 120: 4+5+9=18;
        // 201: 3+6+4=13; 210: 3+8+9=20 → max 20 with (c2, c1, c0).
        assert_eq!(total, 20.0);
        assert_eq!(a, vec![2, 1, 0]);
    }

    #[test]
    fn rectangular_wide() {
        let w = vec![vec![1.0, 9.0, 2.0]];
        let (total, a) = hungarian_max(&w);
        assert_eq!(total, 9.0);
        assert_eq!(a, vec![1]);
    }

    #[test]
    fn rectangular_tall_leaves_rows_unmatched() {
        let w = vec![vec![1.0], vec![9.0], vec![2.0]];
        let (total, a) = hungarian_max(&w);
        assert_eq!(total, 9.0);
        assert_eq!(a[1], 0);
        assert_eq!(a.iter().filter(|&&x| x == usize::MAX).count(), 2);
    }

    #[test]
    fn negative_weights_allowed() {
        let w = vec![vec![-1.0, -5.0], vec![-5.0, -1.0]];
        let (total, a) = hungarian_max(&w);
        assert_eq!(total, -2.0);
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(hungarian_max(&[]), (0.0, vec![]));
        let (t, a) = hungarian_max(&[vec![], vec![]]);
        assert_eq!(t, 0.0);
        assert_eq!(a, vec![usize::MAX, usize::MAX]);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        // Deterministic LCG-generated matrices vs permutation brute force.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000) as f64 / 100.0
        };
        for n in 1..=5usize {
            let w: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
            let (got, _) = hungarian_max(&w);
            // Brute force over permutations.
            let mut perm: Vec<usize> = (0..n).collect();
            let mut best = f64::NEG_INFINITY;
            permute(&mut perm, 0, &mut |p| {
                let s: f64 = p.iter().enumerate().map(|(r, &c)| w[r][c]).sum();
                if s > best {
                    best = s;
                }
            });
            assert!((got - best).abs() < 1e-9, "n={n}: {got} vs {best}");
        }
    }

    fn permute(xs: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == xs.len() {
            f(xs);
            return;
        }
        for i in k..xs.len() {
            xs.swap(k, i);
            permute(xs, k + 1, f);
            xs.swap(k, i);
        }
    }
}
