//! LEAP-style discriminative-pattern classifier baseline (Yan et al.,
//! SIGMOD'08).
//!
//! LEAP mines subgraph patterns that maximize an objective contrasting
//! their frequency in the positive vs the negative class, converts each
//! training graph into a binary pattern-containment vector, and trains an
//! SVM on those features. We reproduce that pipeline: gSpan enumerates
//! frequent candidates over the combined training set, each candidate is
//! scored by its *frequency leap* `|freq_pos - freq_neg|`, the top-k
//! patterns become features, and a linear SVM classifies. As in the paper,
//! the pattern-mining phase dominates the running time.

use crate::frequent::vectorize_over;
use crate::svm::{Kernel, Svm, SvmConfig};
use graphsig_graph::{Graph, GraphDb, MatcherKind};
use graphsig_gspan::{GSpan, MinerConfig, Pattern};

/// LEAP-style classifier parameters.
#[derive(Debug, Clone, Copy)]
pub struct LeapConfig {
    /// Candidate-mining frequency threshold over the combined training set.
    pub min_freq: f64,
    /// Candidate pattern size cap (edges).
    pub max_edges: usize,
    /// Safety cap on enumerated candidates.
    pub max_candidates: usize,
    /// Number of top-leap patterns kept as features.
    pub top_k: usize,
    /// SVM parameters (linear kernel).
    pub svm: SvmConfig,
    /// Isomorphism engine for feature containment tests.
    pub matcher: MatcherKind,
}

impl Default for LeapConfig {
    fn default() -> Self {
        Self {
            min_freq: 0.1,
            max_edges: 8,
            max_candidates: 5_000,
            top_k: 50,
            svm: SvmConfig::default(),
            matcher: MatcherKind::default(),
        }
    }
}

/// A pattern feature with its class frequencies.
#[derive(Debug, Clone)]
pub struct LeapFeature {
    /// The subgraph pattern.
    pub graph: Graph,
    /// Frequency among positive training graphs.
    pub freq_pos: f64,
    /// Frequency among negative training graphs.
    pub freq_neg: f64,
}

impl LeapFeature {
    /// The discrimination score: `|freq_pos - freq_neg|`.
    pub fn leap(&self) -> f64 {
        (self.freq_pos - self.freq_neg).abs()
    }
}

/// The trained LEAP-style classifier.
pub struct LeapClassifier {
    features: Vec<LeapFeature>,
    svm: Svm,
    train_vectors: Vec<Vec<f64>>,
    matcher: MatcherKind,
}

impl LeapClassifier {
    /// Train on `(db, labels)`.
    pub fn train(db: &GraphDb, labels: &[bool], cfg: LeapConfig) -> Self {
        assert_eq!(db.len(), labels.len(), "label count mismatch");
        assert!(!db.is_empty(), "empty training set");
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "need both classes to train");

        // Candidate mining over the whole training set.
        let support = ((cfg.min_freq * db.len() as f64).ceil() as usize).max(1);
        let patterns: Vec<Pattern> = GSpan::new(
            MinerConfig::new(support)
                .with_max_edges(cfg.max_edges)
                .with_max_patterns(cfg.max_candidates),
        )
        .mine(db);

        // Score by frequency leap between classes (computed from the gids
        // gSpan already tracked — no extra isomorphism tests).
        let mut scored: Vec<LeapFeature> = patterns
            .into_iter()
            .map(|p| {
                let pos = p.gids.iter().filter(|&&g| labels[g as usize]).count();
                let neg = p.gids.len() - pos;
                LeapFeature {
                    graph: p.graph,
                    freq_pos: pos as f64 / n_pos as f64,
                    freq_neg: neg as f64 / n_neg as f64,
                }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.leap()
                .partial_cmp(&a.leap())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.graph.edge_count().cmp(&a.graph.edge_count()))
        });
        scored.truncate(cfg.top_k);

        // Binary containment features for the training graphs.
        let train_vectors: Vec<Vec<f64>> = db
            .graphs()
            .iter()
            .map(|g| Self::vectorize_graph(g, &scored, cfg.matcher))
            .collect();
        let y: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let gram = Kernel::Linear.gram(&train_vectors);
        let svm = Svm::train(&gram, &y, cfg.svm);
        Self {
            features: scored,
            svm,
            train_vectors,
            matcher: cfg.matcher,
        }
    }

    fn vectorize_graph(g: &Graph, features: &[LeapFeature], matcher: MatcherKind) -> Vec<f64> {
        vectorize_over(g, features.iter().map(|f| &f.graph), matcher)
    }

    /// The selected pattern features, best leap first.
    pub fn features(&self) -> &[LeapFeature] {
        &self.features
    }

    /// Decision value (`> 0` ⇒ positive).
    pub fn score(&self, query: &Graph) -> f64 {
        let x = Self::vectorize_graph(query, &self.features, self.matcher);
        let k_row: Vec<f64> = self
            .train_vectors
            .iter()
            .map(|t| Kernel::Linear.eval(&x, t))
            .collect();
        self.svm.decision(&k_row)
    }

    /// Hard classification.
    pub fn classify(&self, query: &Graph) -> bool {
        self.score(query) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_graph::parse_transactions;

    /// Positives contain a C-N edge; negatives don't.
    fn db_and_labels() -> (GraphDb, Vec<bool>) {
        let db = parse_transactions(
            "t # 0\nv 0 C\nv 1 N\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 C\nv 1 N\ne 0 1 s\n\
             t # 2\nv 0 C\nv 1 N\nv 2 C\ne 0 1 s\ne 1 2 s\n\
             t # 3\nv 0 C\nv 1 O\ne 0 1 s\n\
             t # 4\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 5\nv 0 O\nv 1 C\nv 2 C\ne 0 1 s\ne 1 2 s\n",
        )
        .unwrap();
        (db, vec![true, true, true, false, false, false])
    }

    #[test]
    fn discriminative_pattern_becomes_top_feature() {
        let (db, labels) = db_and_labels();
        let clf = LeapClassifier::train(
            &db,
            &labels,
            LeapConfig {
                min_freq: 0.3,
                top_k: 5,
                ..Default::default()
            },
        );
        let top = &clf.features()[0];
        assert!((top.leap() - 1.0).abs() < 1e-12, "top leap {}", top.leap());
        // The top feature must involve N (the class marker).
        assert!(top
            .graph
            .node_labels()
            .iter()
            .any(|&l| { db.labels().node_name(l) == Some("N") }));
    }

    #[test]
    fn classifier_separates_training_classes() {
        let (db, labels) = db_and_labels();
        let clf = LeapClassifier::train(&db, &labels, LeapConfig::default());
        for (i, &l) in labels.iter().enumerate() {
            assert_eq!(clf.classify(db.graph(i)), l, "graph {i}");
        }
    }

    #[test]
    fn generalizes_to_unseen_graphs() {
        let (db, labels) = db_and_labels();
        let clf = LeapClassifier::train(&db, &labels, LeapConfig::default());
        let test = parse_transactions(
            "t # 0\nv 0 N\nv 1 C\nv 2 C\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 O\nv 1 C\ne 0 1 s\n",
        )
        .unwrap();
        assert!(clf.classify(test.graph(0))); // has C-N
        assert!(!clf.classify(test.graph(1))); // no C-N
    }

    #[test]
    fn leap_scores_are_frequencies() {
        let (db, labels) = db_and_labels();
        let clf = LeapClassifier::train(&db, &labels, LeapConfig::default());
        for f in clf.features() {
            assert!((0.0..=1.0).contains(&f.freq_pos));
            assert!((0.0..=1.0).contains(&f.freq_neg));
        }
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        let (db, _) = db_and_labels();
        LeapClassifier::train(&db, &[true; 6], LeapConfig::default());
    }
}
