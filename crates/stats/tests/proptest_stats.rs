//! Property-based tests for the numerical substrate.

use proptest::prelude::*;

use graphsig_stats::{betainc_regularized, binomial_tail_upper, ln_choose, ln_gamma, normal_cdf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn gamma_recurrence(x in 0.1f64..1e5) {
        // ln Γ(x+1) = ln Γ(x) + ln x.
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn choose_symmetry(n in 0u64..1000, k in 0u64..1000) {
        prop_assume!(k <= n);
        let a = ln_choose(n, k);
        let b = ln_choose(n, n - k);
        prop_assert!((a - b).abs() < 1e-8 * a.abs().max(1.0));
    }

    #[test]
    fn choose_pascal_rule(n in 1u64..300, k in 1u64..300) {
        prop_assume!(k <= n);
        // C(n+1, k) = C(n, k) + C(n, k-1), verified in linear space via
        // log-sum-exp.
        let lhs = ln_choose(n + 1, k);
        let a = ln_choose(n, k);
        let b = ln_choose(n, k - 1);
        let m = a.max(b);
        let rhs = m + ((a - m).exp() + (b - m).exp()).ln();
        prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn betainc_bounds_and_symmetry(x in 0.0f64..=1.0, a in 0.1f64..50.0, b in 0.1f64..50.0) {
        let v = betainc_regularized(x, a, b);
        prop_assert!((0.0..=1.0).contains(&v));
        let w = betainc_regularized(1.0 - x, b, a);
        prop_assert!((v + w - 1.0).abs() < 1e-9);
    }

    #[test]
    fn betainc_monotone_in_x(a in 0.2f64..20.0, b in 0.2f64..20.0, x in 0.0f64..0.99) {
        let dx = 0.01;
        prop_assert!(
            betainc_regularized(x, a, b) <= betainc_regularized(x + dx, a, b) + 1e-12
        );
    }

    #[test]
    fn binomial_tail_complements_cdf(n in 1u64..200, p in 0.0f64..1.0, k in 1u64..200) {
        prop_assume!(k <= n);
        // P(X >= k) + P(X <= k-1) = 1; compute the lower side by summation.
        let upper = binomial_tail_upper(n, p, k);
        let lower: f64 = (0..k).map(|i| graphsig_stats::binomial::pmf(n, p, i)).sum();
        prop_assert!((upper + lower - 1.0).abs() < 1e-6);
    }

    #[test]
    fn binomial_tail_antimonotone_in_k(n in 1u64..500, p in 0.0f64..1.0, k in 0u64..499) {
        prop_assert!(
            binomial_tail_upper(n, p, k + 1) <= binomial_tail_upper(n, p, k) + 1e-12
        );
    }

    #[test]
    fn binomial_tail_monotone_in_p(n in 1u64..500, k in 1u64..500, p in 0.0f64..0.99) {
        prop_assume!(k <= n);
        prop_assert!(
            binomial_tail_upper(n, p, k) <= binomial_tail_upper(n, p + 0.01, k) + 1e-9
        );
    }

    #[test]
    fn normal_cdf_monotone(x in -6.0f64..6.0) {
        prop_assert!(normal_cdf(x) <= normal_cdf(x + 0.01) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&normal_cdf(x)));
    }
}
