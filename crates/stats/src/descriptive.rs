//! Descriptive statistics for experiment reporting.
//!
//! The evaluation harness reports means and standard deviations per fold
//! (Table VI's `0.78 ± 0.02` cells) and the Criterion-independent
//! experiment binaries summarize timing series. This module centralizes
//! those computations with a numerically stable one-pass implementation
//! (Welford's algorithm).

/// One-pass accumulator for mean/variance (Welford) plus min/max.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (division by `n`; 0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Accumulator::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

/// Linear-interpolation percentile of a sample (`q` in `[0, 1]`).
/// Sorts a copy; intended for small experiment series.
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let acc: Accumulator = xs.iter().copied().collect();
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.variance() - 4.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        let one: Accumulator = std::iter::once(3.5).collect();
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn numerically_stable_at_large_offsets() {
        // Same variance after a huge shift — the Welford property.
        let base = [1.0, 2.0, 3.0, 4.0];
        let a: Accumulator = base.iter().copied().collect();
        let b: Accumulator = base.iter().map(|x| x + 1e12).collect();
        assert!((a.variance() - b.variance()).abs() < 1e-3);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_percentile_panics() {
        percentile(&[], 0.5);
    }
}
