//! Standard normal CDF / survival function.
//!
//! Used for the normal approximation of the binomial tail that the paper
//! invokes "when both `m P(x)` and `m (1 - P(x))` are large" (Sec. III-B).
//! Implemented via the complementary error function with the W. J. Cody-style
//! rational approximation used by `erfc` in many math libraries; absolute
//! error below 1.2e-7 everywhere, which is far tighter than the CLT error of
//! the approximation it serves.

/// Complementary error function `erfc(x)`.
///
/// Uses the Numerical Recipes rational Chebyshev fit; accurate to ~1.2e-7
/// absolute error over the real line.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// # Examples
///
/// ```
/// use graphsig_stats::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
/// assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `1 - Φ(x)`, computed without
/// catastrophic cancellation in the upper tail.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn erfc_reference_points() {
        close(erfc(0.0), 1.0, 1e-7);
        close(erfc(1.0), 0.157_299_2, 2e-7);
        close(erfc(-1.0), 1.842_700_8, 2e-7);
        close(erfc(2.0), 0.004_677_735, 1e-7);
    }

    #[test]
    fn cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.5, 4.0] {
            close(normal_cdf(x) + normal_cdf(-x), 1.0, 5e-7);
        }
    }

    #[test]
    fn cdf_reference_points() {
        close(normal_cdf(0.0), 0.5, 2e-7);
        close(normal_cdf(1.0), 0.841_344_7, 1e-6);
        close(normal_cdf(-1.6448536), 0.05, 1e-5);
        close(normal_cdf(3.0), 0.998_650_1, 1e-6);
    }

    #[test]
    fn sf_complements_cdf() {
        for &x in &[-3.0, -0.2, 0.0, 0.7, 2.2, 5.0] {
            close(normal_sf(x), 1.0 - normal_cdf(x), 5e-7);
        }
    }

    #[test]
    fn sf_deep_tail_positive() {
        // Must stay positive and monotone decreasing out in the tail.
        let mut prev = f64::INFINITY;
        for i in 0..40 {
            let v = normal_sf(i as f64 * 0.5);
            assert!(v >= 0.0);
            assert!(v <= prev);
            prev = v;
        }
    }
}
