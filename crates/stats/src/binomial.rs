//! Binomial distribution and its upper tail — the GraphSig p-value kernel.
//!
//! Section III-B of the paper: the support of a sub-feature vector `x` in a
//! random database of `m` vectors is `Bin(m, P(x))`; the p-value of an
//! observed support `mu0` is `P(support >= mu0)` (Eqn. 6). This module owns
//! that computation and its numerical strategy.

use crate::beta::betainc_regularized;
use crate::gamma::ln_choose;
use crate::normal::normal_sf;

/// Which numerical route [`binomial_tail_upper`] took; exposed for tests and
/// for the benchmark harness to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailMethod {
    /// Direct summation of the pmf (small `n`).
    ExactSum,
    /// Regularized incomplete beta reduction (the paper's `I(P(x); mu0, m)`).
    Beta,
    /// Normal approximation with continuity correction (huge `n`, central p).
    Normal,
}

/// Threshold below which exact summation is used.
const EXACT_N: u64 = 64;
/// `n * p * (1 - p)` above which the normal approximation is allowed.
const NORMAL_VARIANCE_MIN: f64 = 1_000.0;

/// Upper tail `P(X >= k)` for `X ~ Bin(n, p)`.
///
/// This is GraphSig's Eqn. 6. Returns 1 for `k == 0` and 0 for `k > n`.
///
/// # Examples
///
/// ```
/// use graphsig_stats::binomial_tail_upper;
/// // Fair coin, 2 flips: P(X >= 1) = 3/4.
/// assert!((binomial_tail_upper(2, 0.5, 1) - 0.75).abs() < 1e-12);
/// ```
pub fn binomial_tail_upper(n: u64, p: f64, k: u64) -> f64 {
    let (v, _) = binomial_tail_upper_with_method(n, p, k);
    v
}

/// Like [`binomial_tail_upper`] but also reports which method was used.
pub fn binomial_tail_upper_with_method(n: u64, p: f64, k: u64) -> (f64, TailMethod) {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if k == 0 {
        return (1.0, TailMethod::ExactSum);
    }
    if k > n {
        return (0.0, TailMethod::ExactSum);
    }
    if p == 0.0 {
        // k >= 1 successes impossible.
        return (0.0, TailMethod::ExactSum);
    }
    if p == 1.0 {
        return (1.0, TailMethod::ExactSum);
    }
    if n <= EXACT_N {
        return (exact_tail(n, p, k), TailMethod::ExactSum);
    }
    let mean = n as f64 * p;
    let var = mean * (1.0 - p);
    // The normal path is only worthwhile when the beta continued fraction
    // would need many terms AND the CLT error is negligible; we keep the
    // beta reduction as the default because it is exact.
    if var > NORMAL_VARIANCE_MIN && (k as f64 - mean).abs() < 8.0 * var.sqrt() {
        let z = (k as f64 - 0.5 - mean) / var.sqrt();
        return (normal_sf(z).clamp(0.0, 1.0), TailMethod::Normal);
    }
    // P(X >= k) = I_p(k, n - k + 1).
    let v = betainc_regularized(p, k as f64, (n - k) as f64 + 1.0);
    (v, TailMethod::Beta)
}

/// Exact tail by summing the pmf from the smaller side.
fn exact_tail(n: u64, p: f64, k: u64) -> f64 {
    // Sum whichever side has fewer terms, in log space per term.
    if k <= n / 2 {
        let mut lower = 0.0;
        for i in 0..k {
            lower += pmf(n, p, i);
        }
        (1.0 - lower).clamp(0.0, 1.0)
    } else {
        let mut upper = 0.0;
        for i in k..=n {
            upper += pmf(n, p, i);
        }
        upper.clamp(0.0, 1.0)
    }
}

/// Binomial pmf `P(X = k)` computed in log space.
pub fn pmf(n: u64, p: f64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// A binomial distribution `Bin(n, p)` with convenience accessors.
///
/// This is the object the fvmine crate holds per candidate vector: `n` is the
/// feature-vector database size and `p` the probability of the vector
/// occurring in a random vector (Eqn. 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create `Bin(n, p)`. Panics if `p` is outside `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        Self { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Expected support `n * p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n p (1 - p)`.
    pub fn variance(&self) -> f64 {
        self.mean() * (1.0 - self.p)
    }

    /// `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        pmf(self.n, self.p, k)
    }

    /// `P(X <= k)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        1.0 - binomial_tail_upper(self.n, self.p, k + 1)
    }

    /// `P(X >= k)` — the GraphSig p-value of observed support `k`.
    pub fn tail_upper(&self, k: u64) -> f64 {
        binomial_tail_upper(self.n, self.p, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    /// Reference: brute-force summation with 128-bit-safe log pmf.
    fn brute_tail(n: u64, p: f64, k: u64) -> f64 {
        (k..=n).map(|i| pmf(n, p, i)).sum()
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(binomial_tail_upper(10, 0.3, 0), 1.0);
        assert_eq!(binomial_tail_upper(10, 0.3, 11), 0.0);
        assert_eq!(binomial_tail_upper(10, 0.0, 1), 0.0);
        assert_eq!(binomial_tail_upper(10, 1.0, 10), 1.0);
    }

    #[test]
    fn exact_small_cases() {
        close(binomial_tail_upper(2, 0.5, 1), 0.75, 1e-12);
        close(binomial_tail_upper(2, 0.5, 2), 0.25, 1e-12);
        // From the paper's sample computation style: Bin(4, 3/16).
        close(
            binomial_tail_upper(4, 3.0 / 16.0, 1),
            1.0 - (13.0f64 / 16.0).powi(4),
            1e-12,
        );
    }

    #[test]
    fn beta_reduction_matches_brute_force() {
        for &n in &[100u64, 345, 1000] {
            for &p in &[0.001, 0.05, 0.3, 0.9] {
                for &frac in &[0.0, 0.01, 0.2, 0.5, 0.99] {
                    let k = ((n as f64) * frac).round() as u64;
                    let got = binomial_tail_upper(n, p, k.max(1));
                    let want = brute_tail(n, p, k.max(1));
                    close(got, want, 1e-6);
                }
            }
        }
    }

    #[test]
    fn normal_path_close_to_beta() {
        // Force a regime where the normal path triggers and compare against
        // the beta reduction directly.
        let n = 1_000_000u64;
        let p = 0.01;
        for &k in &[9_500u64, 10_000, 10_500] {
            let (got, method) = binomial_tail_upper_with_method(n, p, k);
            assert_eq!(method, TailMethod::Normal);
            let want = betainc_regularized(p, k as f64, (n - k) as f64 + 1.0);
            close(got, want, 2e-3);
        }
    }

    #[test]
    fn tail_monotone_in_k() {
        let mut prev = 2.0;
        for k in 0..=200 {
            let v = binomial_tail_upper(200, 0.37, k);
            assert!(v <= prev + 1e-12, "k={k}");
            prev = v;
        }
    }

    #[test]
    fn tail_monotone_in_p() {
        let mut prev = -1.0;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let v = binomial_tail_upper(500, p, 100);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn distribution_object() {
        let b = Binomial::new(100, 0.2);
        close(b.mean(), 20.0, 1e-12);
        close(b.variance(), 16.0, 1e-12);
        close(b.cdf(100), 1.0, 1e-12);
        close(b.cdf(19) + b.tail_upper(20), 1.0, 1e-9);
        let total: f64 = (0..=100).map(|k| b.pmf(k)).sum();
        close(total, 1.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn rejects_bad_p() {
        binomial_tail_upper(10, 1.5, 1);
    }
}
