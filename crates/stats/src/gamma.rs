//! Log-gamma and log-binomial-coefficient functions.
//!
//! The binomial pmf in GraphSig's significance model (Eqn. 5) involves
//! `C(m, mu)` with `m` up to the number of feature vectors in the database
//! (millions for the AIDS screen), so coefficients must be computed in log
//! space. We use the classic Lanczos approximation with g = 7 and 9
//! coefficients, accurate to ~15 significant digits for real `x > 0`.

/// Lanczos coefficients for g = 7, n = 9 (Godfrey / Numerical Recipes).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function `ln Γ(x)` for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection-formula branch is not needed by this
/// crate and deliberately unsupported to keep the domain honest).
///
/// # Examples
///
/// ```
/// use graphsig_stats::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos is formulated for Γ(z + 1); shift by 1.
    let z = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `-inf` for `k > n`. Exact for small values, Lanczos-accurate for
/// large ones.
///
/// # Examples
///
/// ```
/// use graphsig_stats::ln_choose;
/// assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
/// assert_eq!(ln_choose(3, 7), f64::NEG_INFINITY);
/// ```
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// `ln Γ(x)` continued into a factorial helper: `ln(n!)`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn gamma_small_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, f) in facts.iter().enumerate() {
            close(ln_gamma((i + 1) as f64), f64::ln(*f), 1e-10);
        }
    }

    #[test]
    fn gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2,
            1e-12,
        );
    }

    #[test]
    fn gamma_large_argument_stirling_consistency() {
        // ln Γ(x+1) - ln Γ(x) = ln x
        for &x in &[10.0, 100.0, 1e4, 1e6] {
            close(ln_gamma(x + 1.0) - ln_gamma(x), f64::ln(x), 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn choose_matches_pascal() {
        for n in 0..25u64 {
            let mut row = vec![1u128];
            for _ in 0..n {
                let mut next = vec![1u128];
                for w in row.windows(2) {
                    next.push(w[0] + w[1]);
                }
                next.push(1);
                row = next;
            }
            for (k, &c) in row.iter().enumerate() {
                close(ln_choose(n, k as u64), (c as f64).ln(), 1e-9);
            }
        }
    }

    #[test]
    fn choose_edges() {
        assert_eq!(ln_choose(10, 0), 0.0);
        assert_eq!(ln_choose(10, 10), 0.0);
        assert_eq!(ln_choose(4, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn factorial_helper() {
        close(ln_factorial(10), (3_628_800f64).ln(), 1e-9);
    }
}
