//! Regularized incomplete beta function.
//!
//! GraphSig's p-value (Eqn. 6 of the paper) is the upper tail of a binomial
//! distribution, which "reduces to the regularized Beta function
//! `I(P(x); mu0, m)`" — precisely, for `X ~ Bin(n, p)`:
//!
//! ```text
//! P(X >= k) = I_p(k, n - k + 1)        for 1 <= k <= n
//! ```
//!
//! We evaluate `I_x(a, b)` with the modified Lentz continued-fraction
//! algorithm (Numerical Recipes §6.4), using the symmetry
//! `I_x(a, b) = 1 - I_{1-x}(b, a)` to stay in the rapidly-converging region
//! `x < (a + 1) / (a + b + 2)`.

use crate::gamma::ln_gamma;

const MAX_ITER: usize = 400;
const EPS: f64 = 3e-16;
const FPMIN: f64 = 1e-300;

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Defined for `a > 0`, `b > 0` and `x` in `[0, 1]`; returns values in
/// `[0, 1]`, with `I_0 = 0` and `I_1 = 1`.
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or either shape parameter is
/// non-positive.
///
/// # Examples
///
/// ```
/// use graphsig_stats::betainc_regularized;
/// // I_x(1, 1) is the uniform CDF.
/// assert!((betainc_regularized(0.3, 1.0, 1.0) - 0.3).abs() < 1e-12);
/// ```
pub fn betainc_regularized(x: f64, a: f64, b: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a B(a,b)) in log space.
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        (front * beta_cf(x, a, b) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - front * beta_cf(1.0 - x, b, a) / b).clamp(0.0, 1.0)
    }
}

/// Continued-fraction evaluation for the incomplete beta (modified Lentz).
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn endpoints() {
        assert_eq!(betainc_regularized(0.0, 2.5, 3.5), 0.0);
        assert_eq!(betainc_regularized(1.0, 2.5, 3.5), 1.0);
    }

    #[test]
    fn uniform_case() {
        for &x in &[0.0, 0.1, 0.25, 0.5, 0.9, 1.0] {
            close(betainc_regularized(x, 1.0, 1.0), x, 1e-13);
        }
    }

    #[test]
    fn symmetry_identity() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(x, a, b) in &[(0.3, 2.0, 5.0), (0.7, 4.5, 1.25), (0.01, 10.0, 3.0)] {
            close(
                betainc_regularized(x, a, b),
                1.0 - betainc_regularized(1.0 - x, b, a),
                1e-12,
            );
        }
    }

    #[test]
    fn closed_form_small_integer_shapes() {
        // I_x(1, b) = 1 - (1-x)^b ; I_x(a, 1) = x^a
        for &x in &[0.05, 0.3, 0.6, 0.95] {
            for &s in &[1.0, 2.0, 3.0, 7.0] {
                close(
                    betainc_regularized(x, 1.0, s),
                    1.0 - (1.0 - x).powf(s),
                    1e-12,
                );
                close(betainc_regularized(x, s, 1.0), x.powf(s), 1e-12);
            }
        }
    }

    #[test]
    fn reference_values() {
        // Cross-checked with scipy.special.betainc.
        close(betainc_regularized(0.5, 2.0, 2.0), 0.5, 1e-13);
        close(betainc_regularized(0.4, 2.0, 3.0), 0.5248, 1e-10);
        // I_0.2(5,5) = P(X >= 5), X ~ Bin(9, 0.2) = 0.01958144 exactly.
        close(betainc_regularized(0.2, 5.0, 5.0), 0.01958144, 1e-10);
    }

    #[test]
    fn monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let v = betainc_regularized(x, 3.3, 4.4);
            assert!(v >= prev - 1e-14);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn rejects_bad_x() {
        betainc_regularized(1.5, 1.0, 1.0);
    }
}
