//! Numerical statistics substrate for GraphSig.
//!
//! GraphSig (Ranu & Singh, ICDE 2009) measures the statistical significance
//! of a sub-feature vector by modelling its support in a random database of
//! `m` feature vectors as a binomial random variable (Eqn. 5 of the paper)
//! and computing the upper tail beyond the observed support (Eqn. 6):
//!
//! ```text
//! p-value(x, mu0) = sum_{i=mu0}^{m} C(m, i) P(x)^i (1 - P(x))^(m-i)
//! ```
//!
//! The paper notes that this sum reduces to the regularized incomplete beta
//! function `I(P(x); mu0, m - mu0 + 1)` and that a normal approximation is
//! adequate when both `m P(x)` and `m (1 - P(x))` are large. This crate
//! provides exactly those primitives, implemented from scratch:
//!
//! * [`ln_gamma`] — Lanczos approximation of `ln Γ(x)`.
//! * [`ln_choose`] — log binomial coefficients.
//! * [`betainc_regularized`] — the regularized incomplete beta function
//!   `I_x(a, b)` via the Lentz continued-fraction expansion.
//! * [`binomial_tail_upper`] — `P(X ≥ k)` for `X ~ Bin(n, p)`, choosing among
//!   exact summation, the beta reduction, and the normal approximation.
//! * [`Binomial`] — a small distribution type bundling pmf/cdf/tails.
//! * [`normal_cdf`] / [`normal_sf`] — standard normal CDF / survival via a
//!   high-accuracy `erfc` approximation.
//!
//! All functions are deterministic, allocation-free, and tested against
//! exact summation and published reference values.

pub mod beta;
pub mod binomial;
pub mod descriptive;
pub mod gamma;
pub mod normal;

pub use beta::betainc_regularized;
pub use binomial::{binomial_tail_upper, Binomial, TailMethod};
pub use descriptive::{median, percentile, Accumulator};
pub use gamma::{ln_choose, ln_gamma};
pub use normal::{normal_cdf, normal_sf};

/// Clamp a probability-like value into `[0, 1]`, guarding against tiny
/// negative round-off or overshoot from series evaluation.
#[inline]
pub fn clamp_prob(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_prob_bounds() {
        assert_eq!(clamp_prob(-1e-17), 0.0);
        assert_eq!(clamp_prob(1.0 + 1e-15), 1.0);
        assert_eq!(clamp_prob(0.25), 0.25);
    }
}
