//! Property-based tests for the graph substrate.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;

use graphsig_graph::{
    cut_graph, neighborhood::bfs_ball, parse_transactions, write_transactions, Graph, GraphBuilder,
    GraphDb, LabelTable,
};

/// Strategy: a connected labeled graph (random tree plus optional extras).
fn connected_graph() -> impl Strategy<Value = Graph> {
    (1usize..12, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(next(5) as u16);
        }
        let mut edges = std::collections::HashSet::new();
        for i in 1..n as u32 {
            let p = next(i as u64) as u32;
            b.add_edge(p, i, next(3) as u16);
            edges.insert((p.min(i), p.max(i)));
        }
        for _ in 0..next(4) {
            if n < 2 {
                break;
            }
            let u = next(n as u64) as u32;
            let v = next(n as u64) as u32;
            if u != v && !edges.contains(&(u.min(v), u.max(v))) {
                edges.insert((u.min(v), u.max(v)));
                b.add_edge(u, v, next(3) as u16);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn adjacency_is_symmetric_and_consistent(g in connected_graph()) {
        for n in g.nodes() {
            for a in g.neighbors(n) {
                // The reverse half-edge exists with the same label/edge id.
                let back = g
                    .neighbors(a.to)
                    .iter()
                    .find(|x| x.to == n && x.edge == a.edge);
                prop_assert!(back.is_some());
                prop_assert_eq!(back.unwrap().label, a.label);
            }
        }
        // Degree sum = 2 |E|.
        let degree_sum: usize = g.nodes().map(|n| g.degree(n)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn generated_graphs_are_connected(g in connected_graph()) {
        prop_assert!(g.is_connected());
    }

    #[test]
    fn bfs_distances_are_metric(g in connected_graph()) {
        let ball = bfs_ball(&g, 0, usize::MAX);
        prop_assert_eq!(ball.len(), g.node_count());
        let mut dist = vec![usize::MAX; g.node_count()];
        for &(n, d) in &ball {
            dist[n as usize] = d;
        }
        // Every edge changes distance by at most 1.
        for e in g.edges() {
            let (du, dv) = (dist[e.u as usize], dist[e.v as usize]);
            prop_assert!(du.abs_diff(dv) <= 1);
        }
        prop_assert_eq!(dist[0], 0);
    }

    #[test]
    fn cut_graph_is_monotone_in_radius(g in connected_graph(), r in 0usize..4) {
        let (small, _) = cut_graph(&g, 0, r);
        let (big, _) = cut_graph(&g, 0, r + 1);
        prop_assert!(small.node_count() <= big.node_count());
        prop_assert!(small.edge_count() <= big.edge_count());
        // Full radius covers everything (graph is connected).
        let (all, map) = cut_graph(&g, 0, g.node_count());
        prop_assert_eq!(all.node_count(), g.node_count());
        prop_assert_eq!(all.edge_count(), g.edge_count());
        // Mapping preserves labels.
        for (new, &old) in map.iter().enumerate() {
            prop_assert_eq!(all.node_label(new as u32), g.node_label(old));
        }
    }

    #[test]
    fn io_roundtrip_preserves_structure(g in connected_graph()) {
        let mut labels = LabelTable::new();
        for i in 0..5 {
            labels.intern_node(&format!("N{i}"));
        }
        for i in 0..3 {
            labels.intern_edge(&format!("E{i}"));
        }
        let db = GraphDb::from_parts(vec![g.clone()], labels);
        let text = write_transactions(&db);
        let back = parse_transactions(&text).unwrap();
        prop_assert_eq!(back.len(), 1);
        let h = back.graph(0);
        prop_assert_eq!(h.node_count(), g.node_count());
        prop_assert_eq!(h.edge_count(), g.edge_count());
        // Parsing re-interns label ids in first-seen order, so ids may be
        // renumbered while names are preserved: the roundtrip must be
        // textually idempotent.
        prop_assert_eq!(write_transactions(&back), text);
        // And structure modulo label renaming is intact: per-node label
        // NAMES match position by position (node ids are preserved).
        for n in g.nodes() {
            let original = db.labels().node_name(g.node_label(n)).unwrap();
            let reparsed = back.labels().node_name(h.node_label(n)).unwrap();
            prop_assert_eq!(original, reparsed);
        }
    }

    #[test]
    fn edge_signature_is_an_isomorphism_invariant(g in connected_graph(), seed in any::<u64>()) {
        // Permute node ids; the sorted signatures must match.
        let n = g.node_count();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = ((state >> 33) as usize) % (i + 1);
            perm.swap(i, j);
        }
        let mut b = GraphBuilder::new();
        let mut inv = vec![0usize; n];
        for (old, &new) in perm.iter().enumerate() {
            inv[new] = old;
        }
        for new in 0..n {
            b.add_node(g.node_label(inv[new] as u32));
        }
        for e in g.edges() {
            b.add_edge(perm[e.u as usize] as u32, perm[e.v as usize] as u32, e.label);
        }
        let p = b.build();
        prop_assert_eq!(g.sorted_node_labels(), p.sorted_node_labels());
        prop_assert_eq!(g.sorted_edge_signature(), p.sorted_edge_signature());
    }
}
