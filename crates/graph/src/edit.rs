//! Structural edit operations producing new graphs.
//!
//! Immutable-graph ergonomics: deleting an edge or node, or taking an
//! induced subgraph, yields a fresh [`Graph`] with densely renumbered node
//! ids. Used by the FSG miner's apriori sub-pattern checks and the dataset
//! generator's motif erosion, and exported for downstream consumers.

use crate::graph::{Graph, GraphBuilder, NodeId};

/// The subgraph induced on `keep` (old node ids): all kept nodes plus every
/// edge whose endpoints are both kept. Returns the subgraph and the
/// mapping `new_id -> old_id` (kept order preserved).
///
/// # Panics
/// Panics if `keep` contains an out-of-range or duplicate id.
pub fn induced_subgraph(g: &Graph, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut new_id = vec![u32::MAX; g.node_count()];
    let mut b = GraphBuilder::with_capacity(keep.len(), g.edge_count());
    for &old in keep {
        assert!((old as usize) < g.node_count(), "node {old} out of range");
        assert_eq!(new_id[old as usize], u32::MAX, "duplicate node {old}");
        new_id[old as usize] = b.add_node(g.node_label(old));
    }
    for e in g.edges() {
        let (u, v) = (new_id[e.u as usize], new_id[e.v as usize]);
        if u != u32::MAX && v != u32::MAX {
            b.add_edge(u, v, e.label);
        }
    }
    (b.build(), keep.to_vec())
}

/// `g` minus the edge at index `edge`, optionally dropping endpoints that
/// become isolated. Node ids are renumbered densely when nodes are
/// dropped; the mapping `new_id -> old_id` is returned.
///
/// # Panics
/// Panics if `edge` is out of range.
pub fn remove_edge(g: &Graph, edge: usize, drop_isolated: bool) -> (Graph, Vec<NodeId>) {
    assert!(edge < g.edge_count(), "edge {edge} out of range");
    let mut degree = vec![0usize; g.node_count()];
    for (i, e) in g.edges().iter().enumerate() {
        if i != edge {
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
        }
    }
    let keep: Vec<NodeId> = g
        .nodes()
        .filter(|&n| !drop_isolated || degree[n as usize] > 0 || g.degree(n) == 0)
        .collect();
    let mut new_id = vec![u32::MAX; g.node_count()];
    let mut b = GraphBuilder::new();
    for &old in &keep {
        new_id[old as usize] = b.add_node(g.node_label(old));
    }
    for (i, e) in g.edges().iter().enumerate() {
        if i != edge {
            b.add_edge(new_id[e.u as usize], new_id[e.v as usize], e.label);
        }
    }
    (b.build(), keep)
}

/// `g` minus node `node` and all its incident edges, with dense
/// renumbering; returns the mapping `new_id -> old_id`.
///
/// # Panics
/// Panics if `node` is out of range.
pub fn remove_node(g: &Graph, node: NodeId) -> (Graph, Vec<NodeId>) {
    assert!((node as usize) < g.node_count(), "node {node} out of range");
    let keep: Vec<NodeId> = g.nodes().filter(|&n| n != node).collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_node(i as u16)).collect();
        b.add_edge(n[0], n[1], 0);
        b.add_edge(n[1], n[2], 1);
        b.add_edge(n[2], n[3], 2);
        b.build()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = path4();
        let (sub, map) = induced_subgraph(&g, &[1, 2]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.edges()[0].label, 1);
        assert_eq!(map, vec![1, 2]);
        assert_eq!(sub.node_label(0), 1);
    }

    #[test]
    fn remove_middle_edge_splits() {
        let g = path4();
        let (out, map) = remove_edge(&g, 1, false);
        assert_eq!(out.node_count(), 4);
        assert_eq!(out.edge_count(), 2);
        assert!(!out.is_connected());
        assert_eq!(map.len(), 4);
    }

    #[test]
    fn remove_end_edge_drops_isolated_leaf() {
        let g = path4();
        let (out, map) = remove_edge(&g, 0, true);
        assert_eq!(out.node_count(), 3); // node 0 became isolated and dropped
        assert_eq!(out.edge_count(), 2);
        assert!(!map.contains(&0));
    }

    #[test]
    fn originally_isolated_nodes_survive_drop_isolated() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        let v = b.add_node(1);
        b.add_node(2); // isolated from the start
        b.add_edge(u, v, 0);
        let g = b.build();
        let (out, _) = remove_edge(&g, 0, true);
        // u and v became isolated by the removal and are dropped; the
        // originally isolated node is kept (it was never an endpoint).
        assert_eq!(out.node_count(), 1);
        assert_eq!(out.node_label(0), 2);
    }

    #[test]
    fn remove_node_takes_incident_edges() {
        let g = path4();
        let (out, map) = remove_node(&g, 1);
        assert_eq!(out.node_count(), 3);
        assert_eq!(out.edge_count(), 1); // only 2-3 survives
        assert_eq!(map, vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_keep_rejected() {
        induced_subgraph(&path4(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_rejected() {
        remove_edge(&path4(), 9, false);
    }
}
