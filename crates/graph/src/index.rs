//! Database-wide label-pair edge index.
//!
//! Both baseline miners start from the same question: *which
//! (node-label, edge-label, node-label) edge types exist, in which graphs,
//! and where?* gSpan needs the answer to enumerate frequent 1-edge seeds
//! and their initial embedding lists; FSG needs it to build level 1 and its
//! TID lists. [`LabelPairIndex`] answers it with one scan of the database,
//! so neither miner rescans every graph, and a prebuilt index can be shared
//! across repeated mining runs (threshold sweeps over the same database).
//!
//! Keys are canonicalized with the smaller node label first (the graphs are
//! undirected). Occurrences are stored oriented so that `from` carries the
//! smaller label, in `(gid, edge id)` scan order — ascending by graph id —
//! which is exactly the order the miners' sequential database scans would
//! produce. The derived `tids` list (distinct graph ids, ascending) gives
//! each edge type's support for free.

use crate::compiled::CompiledDb;
use crate::database::GraphDb;
use crate::graph::NodeId;
use crate::labels::{EdgeLabel, NodeLabel};
use std::sync::{Arc, OnceLock};

/// A canonical edge-type key `(la, le, lb)` with `la <= lb`.
pub type LabelTriple = (NodeLabel, EdgeLabel, NodeLabel);

/// One occurrence of an edge type: graph `gid`, edge `edge`, traversed
/// `from -> to` where `from` carries the smaller node label of the key
/// (for equal labels, the edge's stored orientation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeOccurrence {
    /// Graph id within the database.
    pub gid: u32,
    /// Edge index within that graph.
    pub edge: u32,
    /// Endpoint carrying the key's first (smaller) label.
    pub from: NodeId,
    /// Endpoint carrying the key's second label.
    pub to: NodeId,
}

/// All occurrences of one edge type across the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelPairEntry {
    /// The canonical `(la, le, lb)` key, `la <= lb`.
    pub key: LabelTriple,
    /// Occurrences in `(gid, edge)` ascending order.
    pub occurrences: Vec<EdgeOccurrence>,
    /// Distinct graph ids containing the edge type, ascending. The length
    /// is the edge type's support.
    pub tids: Vec<u32>,
}

impl LabelPairEntry {
    /// Number of distinct graphs containing this edge type.
    pub fn support(&self) -> usize {
        self.tids.len()
    }
}

/// Index from canonical label triples to their occurrence lists, ordered
/// by key. See the module docs for the ordering guarantees.
#[derive(Debug, Clone, Default)]
pub struct LabelPairIndex {
    entries: Vec<LabelPairEntry>,
    /// Lazily compiled bitset form of the indexed database, shared by every
    /// fast-matcher support-counting pass over this index (FSG levels,
    /// threshold sweeps, warm server requests). Cloning the index shares
    /// the cached compilation.
    compiled: OnceLock<Arc<CompiledDb>>,
}

impl LabelPairIndex {
    /// Build the index with one scan over `db` (graphs in id order, edges
    /// in edge-id order).
    pub fn build(db: &GraphDb) -> Self {
        Self::build_range(db, 0..db.len())
    }

    /// Build the index over one contiguous gid range of `db` (a shard of a
    /// larger store). Occurrences and tids carry *database-global* gids, so
    /// per-shard indexes built over adjacent ranges can be concatenated by
    /// [`LabelPairIndex::merge`] into exactly the index a full
    /// [`build`](Self::build) would have produced.
    pub fn build_range(db: &GraphDb, range: std::ops::Range<usize>) -> Self {
        let mut map: std::collections::BTreeMap<LabelTriple, LabelPairEntry> =
            std::collections::BTreeMap::new();
        for gid in range {
            let g = db.graph(gid);
            for (eid, e) in g.edges().iter().enumerate() {
                let (lu, lv) = (g.node_label(e.u), g.node_label(e.v));
                // Orient so `from` carries the smaller label; keep the
                // stored orientation on ties.
                let (key, from, to) = if lu <= lv {
                    ((lu, e.label, lv), e.u, e.v)
                } else {
                    ((lv, e.label, lu), e.v, e.u)
                };
                let entry = map.entry(key).or_insert_with(|| LabelPairEntry {
                    key,
                    occurrences: Vec::new(),
                    tids: Vec::new(),
                });
                entry.occurrences.push(EdgeOccurrence {
                    gid: gid as u32,
                    edge: eid as u32,
                    from,
                    to,
                });
                if entry.tids.last() != Some(&(gid as u32)) {
                    entry.tids.push(gid as u32);
                }
            }
        }
        Self {
            entries: map.into_values().collect(),
            compiled: OnceLock::new(),
        }
    }

    /// Merge per-shard indexes into one database-wide index.
    ///
    /// `parts` must have been built over adjacent ascending gid ranges, in
    /// range order (shard order). Keys are already sorted within each part,
    /// and each part's occurrences carry global gids, so the merge is a
    /// k-way key merge with per-key concatenation in part order — producing
    /// byte-for-byte the index a single [`build`](Self::build) over the
    /// whole database yields. The compiled-database cache starts empty.
    pub fn merge(parts: &[&LabelPairIndex]) -> Self {
        let mut map: std::collections::BTreeMap<LabelTriple, LabelPairEntry> =
            std::collections::BTreeMap::new();
        for part in parts {
            for entry in part.entries() {
                let merged = map.entry(entry.key).or_insert_with(|| LabelPairEntry {
                    key: entry.key,
                    occurrences: Vec::new(),
                    tids: Vec::new(),
                });
                merged.occurrences.extend_from_slice(&entry.occurrences);
                merged.tids.extend_from_slice(&entry.tids);
            }
        }
        Self {
            entries: map.into_values().collect(),
            compiled: OnceLock::new(),
        }
    }

    /// The compiled bitset form of `db` (which must be the database this
    /// index was built from), compiling it on first use and returning the
    /// shared copy afterwards.
    pub fn compiled_db(&self, db: &GraphDb) -> Arc<CompiledDb> {
        Arc::clone(
            self.compiled
                .get_or_init(|| Arc::new(CompiledDb::build(db))),
        )
    }

    /// All entries, ascending by key.
    pub fn entries(&self) -> &[LabelPairEntry] {
        &self.entries
    }

    /// Approximate heap bytes held by the index: occurrence and tid
    /// arrays, plus the compiled bitset database if it has been built.
    /// Estimate for admission control.
    pub fn approx_resident_bytes(&self) -> u64 {
        let entries: usize = self
            .entries
            .iter()
            .map(|e| {
                std::mem::size_of::<LabelPairEntry>()
                    + e.occurrences.len() * std::mem::size_of::<EdgeOccurrence>()
                    + e.tids.len() * 4
            })
            .sum();
        let compiled = self.compiled.get().map_or(0, |c| c.approx_resident_bytes());
        entries as u64 + compiled
    }

    /// The entry for a canonical key, if present.
    pub fn get(&self, key: LabelTriple) -> Option<&LabelPairEntry> {
        self.entries
            .binary_search_by(|e| e.key.cmp(&key))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Entries whose edge type occurs in at least `min_support` distinct
    /// graphs, ascending by key.
    pub fn frequent(&self, min_support: usize) -> impl Iterator<Item = &LabelPairEntry> {
        self.entries
            .iter()
            .filter(move |e| e.support() >= min_support)
    }

    /// Number of distinct edge types.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database had no edges at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total edge occurrences across all entries — exactly the number of
    /// edges in the indexed database. Long-lived servers sharing one index
    /// across requests report this (with [`LabelPairIndex::len`]) so cache
    /// reuse is observable without rescanning the database.
    pub fn total_occurrences(&self) -> usize {
        self.entries.iter().map(|e| e.occurrences.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::parse_transactions;

    fn tiny_db() -> GraphDb {
        // Graph 0: C-C-O path; graph 1: C-C-O path; graph 2: C-N edge.
        parse_transactions(
            "t # 0\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 1\nv 0 C\nv 1 C\nv 2 O\ne 0 1 s\ne 1 2 s\n\
             t # 2\nv 0 C\nv 1 N\ne 0 1 s\n",
        )
        .unwrap()
    }

    #[test]
    fn keys_are_canonical_and_sorted() {
        let idx = LabelPairIndex::build(&tiny_db());
        assert_eq!(idx.len(), 3); // C-C, C-O, C-N (labels interned in order)
        for e in idx.entries() {
            assert!(e.key.0 <= e.key.2, "non-canonical key {:?}", e.key);
        }
        for w in idx.entries().windows(2) {
            assert!(w[0].key < w[1].key, "entries out of key order");
        }
    }

    #[test]
    fn supports_and_tids() {
        let db = tiny_db();
        let idx = LabelPairIndex::build(&db);
        let c = db.labels().node_id("C").unwrap();
        let o = db.labels().node_id("O").unwrap();
        let n = db.labels().node_id("N").unwrap();
        let s = db.labels().edge_id("s").unwrap();
        let cc = idx.get((c, s, c)).unwrap();
        assert_eq!(cc.tids, vec![0, 1]);
        assert_eq!(cc.support(), 2);
        let co = idx.get((c.min(o), s, c.max(o))).unwrap();
        assert_eq!(co.tids, vec![0, 1]);
        let cn = idx.get((c.min(n), s, c.max(n))).unwrap();
        assert_eq!(cn.tids, vec![2]);
        assert!(idx.get((o, s, o)).is_none());
    }

    #[test]
    fn occurrences_are_oriented_and_scan_ordered() {
        let db = tiny_db();
        let idx = LabelPairIndex::build(&db);
        for entry in idx.entries() {
            let mut prev: Option<(u32, u32)> = None;
            for occ in &entry.occurrences {
                let g = db.graph(occ.gid as usize);
                assert_eq!(g.node_label(occ.from), entry.key.0);
                assert_eq!(g.node_label(occ.to), entry.key.2);
                assert_eq!(g.edges()[occ.edge as usize].label, entry.key.1);
                let pos = (occ.gid, occ.edge);
                assert!(prev.is_none_or(|p| p < pos), "occurrences out of order");
                prev = Some(pos);
            }
            // tids = distinct gids of the occurrence list.
            let mut gids: Vec<u32> = entry.occurrences.iter().map(|o| o.gid).collect();
            gids.dedup();
            assert_eq!(gids, entry.tids);
        }
    }

    #[test]
    fn frequent_filters_by_support() {
        let idx = LabelPairIndex::build(&tiny_db());
        assert_eq!(idx.frequent(1).count(), 3);
        assert_eq!(idx.frequent(2).count(), 2);
        assert_eq!(idx.frequent(3).count(), 0);
    }

    #[test]
    fn empty_database() {
        let idx = LabelPairIndex::build(&GraphDb::new());
        assert!(idx.is_empty());
        assert_eq!(idx.frequent(1).count(), 0);
    }

    #[test]
    fn merged_shard_indexes_equal_the_full_build() {
        let db = tiny_db();
        let full = LabelPairIndex::build(&db);
        // Every way of cutting the 3-graph db into contiguous shards.
        for cuts in [vec![0..1, 1..2, 2..3], vec![0..2, 2..3], vec![0..1, 1..3]] {
            let parts: Vec<LabelPairIndex> = cuts
                .iter()
                .map(|r| LabelPairIndex::build_range(&db, r.clone()))
                .collect();
            let refs: Vec<&LabelPairIndex> = parts.iter().collect();
            let merged = LabelPairIndex::merge(&refs);
            assert_eq!(merged.entries(), full.entries(), "cuts {cuts:?}");
        }
        // Degenerate merges.
        assert_eq!(LabelPairIndex::merge(&[]).entries(), [].as_slice());
        assert_eq!(LabelPairIndex::merge(&[&full]).entries(), full.entries());
    }

    #[test]
    fn build_range_records_global_gids() {
        let db = tiny_db();
        let tail = LabelPairIndex::build_range(&db, 2..3);
        assert!(tail
            .entries()
            .iter()
            .all(|e| e.tids == vec![2] && e.occurrences.iter().all(|o| o.gid == 2)));
    }

    #[test]
    fn total_occurrences_count_every_edge_once() {
        let db = tiny_db();
        let idx = LabelPairIndex::build(&db);
        let total: usize = idx.entries().iter().map(|e| e.occurrences.len()).sum();
        let edges: usize = db.graphs().iter().map(|g| g.edge_count()).sum();
        assert_eq!(total, edges);
    }
}
