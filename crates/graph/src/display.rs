//! Human-readable graph rendering with label names.
//!
//! Graphs store interned label ids; this adapter borrows a [`LabelTable`]
//! to print atoms and bonds by name — the form used by the experiment
//! binaries and the CLI when showing mined structures.

use std::fmt;

use crate::graph::Graph;
use crate::labels::LabelTable;

/// Borrowing wrapper implementing [`fmt::Display`] for a graph + table.
pub struct DisplayWith<'a> {
    graph: &'a Graph,
    labels: &'a LabelTable,
}

impl fmt::Display for DisplayWith<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |l| self.labels.node_name(l).unwrap_or("?");
        write!(f, "atoms [")?;
        for (i, &l) in self.graph.node_labels().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", name(l))?;
        }
        write!(f, "] bonds [")?;
        for (i, e) in self.graph.edges().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}{}({}){}{}",
                name(self.graph.node_label(e.u)),
                e.u,
                self.labels.edge_name(e.label).unwrap_or("?"),
                name(self.graph.node_label(e.v)),
                e.v
            )?;
        }
        write!(f, "]")
    }
}

/// Render `g` with label names from `labels`.
///
/// # Example
///
/// ```
/// use graphsig_graph::{display_with, parse_transactions};
/// let db = parse_transactions("t # 0\nv 0 C\nv 1 O\ne 0 1 d\n").unwrap();
/// let text = display_with(db.graph(0), db.labels()).to_string();
/// assert_eq!(text, "atoms [C O] bonds [C0(d)O1]");
/// ```
pub fn display_with<'a>(graph: &'a Graph, labels: &'a LabelTable) -> DisplayWith<'a> {
    DisplayWith { graph, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::parse_transactions;

    #[test]
    fn renders_names_and_ids() {
        let db = parse_transactions("t # 0\nv 0 C\nv 1 N\nv 2 O\ne 0 1 s\ne 1 2 d\n").unwrap();
        let s = display_with(db.graph(0), db.labels()).to_string();
        assert_eq!(s, "atoms [C N O] bonds [C0(s)N1, N1(d)O2]");
    }

    #[test]
    fn unknown_labels_degrade_gracefully() {
        let mut b = crate::graph::GraphBuilder::new();
        let u = b.add_node(42);
        let v = b.add_node(43);
        b.add_edge(u, v, 9);
        let g = b.build();
        let empty = LabelTable::new();
        let s = display_with(&g, &empty).to_string();
        assert_eq!(s, "atoms [? ?] bonds [?0(?)?1]");
    }

    #[test]
    fn empty_graph() {
        let g = crate::graph::GraphBuilder::new().build();
        let s = display_with(&g, &LabelTable::new()).to_string();
        assert_eq!(s, "atoms [] bonds []");
    }
}
