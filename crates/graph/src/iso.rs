//! Subgraph isomorphism (VF2-style backtracking with label pruning).
//!
//! Frequent-subgraph semantics in gSpan/FSG — and hence in GraphSig's
//! `MaximalFSM` step — are *subgraph monomorphism*: an injective mapping of
//! pattern nodes into target nodes that preserves node labels and maps every
//! pattern edge onto a target edge with the same label (extra target edges
//! are allowed). The paper relies on this for support counting, for the
//! classifier baselines' pattern features, and for pruning non-maximal
//! patterns.
//!
//! The matcher orders pattern nodes so that each node after the first is
//! adjacent to an already-matched node, restricting candidates to neighbors
//! of already-matched images — the core VF2 idea — with degree and label
//! look-ahead pruning.

use crate::compiled::CompiledGraph;
use crate::graph::{Graph, NodeId};
use crate::labels::{EdgeLabel, NodeLabel};
use std::fmt;

/// Which matching engine a [`MultiMatcher`] uses.
///
/// Both engines implement the same subgraph-monomorphism semantics and the
/// same [`MatchOutcome`] contract under step budgets; they differ in how the
/// search is executed and therefore in how many steps a given search costs.
/// `Fast` is the default; `Vf2` is kept as the reference fallback and for
/// agreement testing (`--matcher vf2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatcherKind {
    /// The original VF2-style engine: vertex-at-a-time, candidates from the
    /// anchor's adjacency list, per-candidate label/degree/back-edge checks.
    Vf2,
    /// The compiled engine: path-at-a-time matching order over
    /// [`CompiledGraph`] bitset targets, candidate sets propagated by
    /// bitset intersection.
    #[default]
    Fast,
}

impl MatcherKind {
    /// Parse a CLI/protocol name (`"vf2"` or `"fast"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "vf2" => Some(MatcherKind::Vf2),
            "fast" => Some(MatcherKind::Fast),
            _ => None,
        }
    }

    /// The CLI/protocol name.
    pub fn as_str(&self) -> &'static str {
        match self {
            MatcherKind::Vf2 => "vf2",
            MatcherKind::Fast => "fast",
        }
    }
}

impl fmt::Display for MatcherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for MatcherKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("unknown matcher '{s}' (expected vf2 or fast)"))
    }
}

/// Result of a *bounded* isomorphism search ([`SubgraphMatcher::exists_within`],
/// [`MultiMatcher::exists_in_counted`]).
///
/// Dense pathological pairs — e.g. label-uniform cliques — can make the
/// backtracking search take exponentially long. Bounded searches charge one
/// step per candidate trial and give up with [`MatchOutcome::Indeterminate`]
/// once the step cap is hit: the pattern may or may not occur, the search
/// could not afford to decide. Callers under a budget typically treat
/// `Indeterminate` conservatively (e.g. "not supported") and mark the
/// result truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOutcome {
    /// An embedding was found within the step cap.
    Matched,
    /// The full search space was exhausted without finding an embedding.
    Unmatched,
    /// The step cap was hit before the search could decide.
    Indeterminate,
}

impl MatchOutcome {
    /// `true` iff an embedding was definitely found.
    pub fn is_match(&self) -> bool {
        matches!(self, MatchOutcome::Matched)
    }
}

/// Per-search step counter for bounded searches: one unit per candidate
/// trial. `u64::MAX` means effectively unbounded (the unbudgeted paths use
/// it, making governance-off searches behave exactly as before).
struct StepGauge {
    remaining: u64,
    exhausted: bool,
}

impl StepGauge {
    fn new(limit: u64) -> Self {
        Self {
            remaining: limit,
            exhausted: false,
        }
    }

    #[inline]
    fn consume(&mut self) -> bool {
        if self.remaining == 0 {
            self.exhausted = true;
            return false;
        }
        self.remaining -= 1;
        true
    }
}

/// A reusable pattern-against-target matcher.
///
/// # Example
///
/// ```
/// use graphsig_graph::{GraphBuilder, SubgraphMatcher};
/// // Target: triangle of label-0 nodes; pattern: single edge.
/// let mut b = GraphBuilder::new();
/// let n: Vec<_> = (0..3).map(|_| b.add_node(0)).collect();
/// b.add_edge(n[0], n[1], 7);
/// b.add_edge(n[1], n[2], 7);
/// b.add_edge(n[0], n[2], 7);
/// let target = b.build();
/// let mut b = GraphBuilder::new();
/// let u = b.add_node(0);
/// let v = b.add_node(0);
/// b.add_edge(u, v, 7);
/// let pattern = b.build();
/// let m = SubgraphMatcher::new(&pattern, &target);
/// assert!(m.exists());
/// assert_eq!(m.count_embeddings(usize::MAX), 6); // 3 edges x 2 directions
/// ```
pub struct SubgraphMatcher<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    /// Pattern nodes in matching order; every node after position 0 of its
    /// connected component has at least one earlier neighbor.
    order: Vec<NodeId>,
    /// `anchor[i]`: index `< i` in `order` of an already-matched neighbor of
    /// `order[i]`, or `None` for component roots.
    anchor: Vec<Option<usize>>,
}

impl<'a> SubgraphMatcher<'a> {
    /// Prepare a matcher for `pattern` against `target`.
    pub fn new(pattern: &'a Graph, target: &'a Graph) -> Self {
        let (order, anchor) = matching_order(pattern);
        Self {
            pattern,
            target,
            order,
            anchor,
        }
    }

    /// Whether at least one embedding exists.
    pub fn exists(&self) -> bool {
        let mut found = false;
        self.search(&mut |_| {
            found = true;
            false // stop
        });
        found
    }

    /// Count embeddings (distinct injective node maps), stopping early once
    /// `limit` is reached.
    pub fn count_embeddings(&self, limit: usize) -> usize {
        let mut count = 0usize;
        self.search(&mut |_| {
            count += 1;
            count < limit
        });
        count
    }

    /// The first embedding found, as `map[pattern_node] = target_node`.
    pub fn first_embedding(&self) -> Option<Vec<NodeId>> {
        let mut result = None;
        self.search(&mut |m| {
            result = Some(m.to_vec());
            false
        });
        result
    }

    /// Visit every embedding; the callback returns `false` to stop the
    /// enumeration. The slice is `map[pattern_node] = target_node`.
    pub fn for_each_embedding(&self, f: &mut dyn FnMut(&[NodeId]) -> bool) {
        self.search(f);
    }

    /// Collect the set of target nodes that node `p` of the pattern can map
    /// to across all embeddings. Used by GraphSig to locate "regions of
    /// interest" for a pattern.
    pub fn images_of(&self, p: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.target.node_count()];
        self.search(&mut |m| {
            seen[m[p as usize] as usize] = true;
            true
        });
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// Bounded existence test: at most `max_steps` candidate trials, then
    /// [`MatchOutcome::Indeterminate`]. Guards against dense pathological
    /// pairs (label-uniform cliques) where the backtracking search is
    /// exponential.
    pub fn exists_within(&self, max_steps: u64) -> MatchOutcome {
        let mut found = false;
        let exhausted = self.search_bounded(max_steps, &mut |_| {
            found = true;
            false // stop
        });
        if found {
            MatchOutcome::Matched
        } else if exhausted {
            MatchOutcome::Indeterminate
        } else {
            MatchOutcome::Unmatched
        }
    }

    fn search(&self, visit: &mut dyn FnMut(&[NodeId]) -> bool) {
        self.search_bounded(u64::MAX, visit);
    }

    /// Run the search with a step cap; returns whether the cap was hit.
    fn search_bounded(&self, max_steps: u64, visit: &mut dyn FnMut(&[NodeId]) -> bool) -> bool {
        let pn = self.pattern.node_count();
        if pn == 0 {
            visit(&[]);
            return false;
        }
        if pn > self.target.node_count() || self.pattern.edge_count() > self.target.edge_count() {
            return false;
        }
        let mut map = vec![u32::MAX; pn];
        let mut used = vec![false; self.target.node_count()];
        let ctx = SearchCtx {
            pattern: self.pattern,
            target: self.target,
            order: &self.order,
            anchor: &self.anchor,
        };
        let mut steps = StepGauge::new(max_steps);
        ctx.extend(0, &mut map, &mut used, &mut steps, visit);
        steps.exhausted
    }
}

/// One pattern matched against many targets, reusing the matching order and
/// the backtracking scratch buffers across calls.
///
/// [`SubgraphMatcher`] recomputes the pattern's matching order and
/// reallocates its `map`/`used` buffers per `(pattern, target)` pair; in
/// support-counting loops (one candidate against every TID-list graph) that
/// allocation dominates. `MultiMatcher` computes the order once per pattern
/// and keeps the buffers warm — the backtracking search restores them to
/// their cleared state on exit, so consecutive calls need no reset.
///
/// # Example
///
/// ```
/// use graphsig_graph::{GraphBuilder, MultiMatcher};
/// let mut b = GraphBuilder::new();
/// let u = b.add_node(0);
/// let v = b.add_node(0);
/// b.add_edge(u, v, 7);
/// let pattern = b.build();
/// let mut b = GraphBuilder::new();
/// let n: Vec<_> = (0..3).map(|_| b.add_node(0)).collect();
/// b.add_edge(n[0], n[1], 7);
/// b.add_edge(n[1], n[2], 7);
/// let target = b.build();
/// let mut m = MultiMatcher::new(&pattern);
/// assert!(m.exists_in(&target));
/// assert!(m.exists_in(&target)); // buffers reused, same answer
/// ```
pub struct MultiMatcher<'p> {
    pattern: &'p Graph,
    kind: MatcherKind,
    // VF2 engine state (built only for `MatcherKind::Vf2`).
    order: Vec<NodeId>,
    anchor: Vec<Option<usize>>,
    map: Vec<NodeId>,
    used: Vec<bool>,
    // Fast engine state (built only for `MatcherKind::Fast`).
    plan: MatchPlan,
    compiled: CompiledGraph,
    fast: FastScratch,
}

impl<'p> MultiMatcher<'p> {
    /// Prepare a matcher with the default engine ([`MatcherKind::Fast`]).
    pub fn new(pattern: &'p Graph) -> Self {
        Self::with_kind(pattern, MatcherKind::default())
    }

    /// Prepare a matcher with an explicit engine. The pattern-side
    /// compilation (matching order for VF2, match plan for the fast
    /// engine) happens once here and is reused across all targets.
    pub fn with_kind(pattern: &'p Graph, kind: MatcherKind) -> Self {
        let (order, anchor, map, plan) = match kind {
            MatcherKind::Vf2 => {
                let (order, anchor) = matching_order(pattern);
                let map = vec![u32::MAX; pattern.node_count()];
                (order, anchor, map, MatchPlan::default())
            }
            MatcherKind::Fast => (Vec::new(), Vec::new(), Vec::new(), MatchPlan::new(pattern)),
        };
        Self {
            pattern,
            kind,
            order,
            anchor,
            map,
            used: Vec::new(),
            plan,
            compiled: CompiledGraph::default(),
            fast: FastScratch::default(),
        }
    }

    /// The engine this matcher runs.
    pub fn kind(&self) -> MatcherKind {
        self.kind
    }

    /// Whether the pattern occurs in `target` (subgraph monomorphism).
    pub fn exists_in(&mut self, target: &Graph) -> bool {
        self.exists_in_counted(target, u64::MAX).0.is_match()
    }

    /// Bounded existence test against `target`: at most `max_steps`
    /// candidate trials, then [`MatchOutcome::Indeterminate`]. Also
    /// returns how many trials were used, so budgeted support-counting
    /// loops can charge the cost of each match against their
    /// [`crate::control::Meter`].
    ///
    /// Step counts are engine-specific: VF2 charges one step per candidate
    /// trial drawn from adjacency lists, the fast engine one step per
    /// candidate popped from its *filtered* bitsets (fewer trials for the
    /// same search is the point of the engine). Both are deterministic for
    /// a given `(pattern, target, max_steps)`, and both preserve the
    /// trivial-case contract: empty pattern `(Matched, 0)`, size
    /// fast-reject `(Unmatched, 0)`.
    pub fn exists_in_counted(&mut self, target: &Graph, max_steps: u64) -> (MatchOutcome, u64) {
        match self.kind {
            MatcherKind::Vf2 => self.vf2_exists_in_counted(target, max_steps),
            MatcherKind::Fast => {
                if let Some(trivial) =
                    trivial_outcome(self.pattern, target.node_count(), target.edge_count())
                {
                    return trivial;
                }
                self.compiled.compile_from(target);
                fast_search(&self.plan, &self.compiled, &mut self.fast, max_steps)
            }
        }
    }

    /// Whether the pattern occurs in the pre-compiled `target`.
    ///
    /// Only valid on fast matchers — see [`Self::exists_in_counted_compiled`].
    pub fn exists_in_compiled(&mut self, target: &CompiledGraph) -> bool {
        self.exists_in_counted_compiled(target, u64::MAX)
            .0
            .is_match()
    }

    /// [`Self::exists_in_counted`] against a pre-compiled target, skipping
    /// the per-call compilation. This is the hot path for support counting
    /// over a [`crate::compiled::CompiledDb`].
    ///
    /// # Panics
    /// Panics if the matcher was built with [`MatcherKind::Vf2`]; compiled
    /// targets carry no adjacency lists for the VF2 engine to walk, so
    /// callers holding compiled targets must construct a fast matcher.
    pub fn exists_in_counted_compiled(
        &mut self,
        target: &CompiledGraph,
        max_steps: u64,
    ) -> (MatchOutcome, u64) {
        assert_eq!(
            self.kind,
            MatcherKind::Fast,
            "compiled targets require MatcherKind::Fast"
        );
        if let Some(trivial) =
            trivial_outcome(self.pattern, target.node_count(), target.edge_count())
        {
            return trivial;
        }
        fast_search(&self.plan, target, &mut self.fast, max_steps)
    }

    fn vf2_exists_in_counted(&mut self, target: &Graph, max_steps: u64) -> (MatchOutcome, u64) {
        if let Some(trivial) =
            trivial_outcome(self.pattern, target.node_count(), target.edge_count())
        {
            return trivial;
        }
        if self.used.len() < target.node_count() {
            self.used.resize(target.node_count(), false);
        }
        let ctx = SearchCtx {
            pattern: self.pattern,
            target,
            order: &self.order,
            anchor: &self.anchor,
        };
        let mut found = false;
        let mut steps = StepGauge::new(max_steps);
        ctx.extend(0, &mut self.map, &mut self.used, &mut steps, &mut |_| {
            found = true;
            false // stop at the first embedding
        });
        let used = max_steps - steps.remaining;
        let outcome = if found {
            MatchOutcome::Matched
        } else if steps.exhausted {
            MatchOutcome::Indeterminate
        } else {
            MatchOutcome::Unmatched
        };
        (outcome, used)
    }
}

/// The zero-cost early decisions both engines share: an empty pattern
/// matches anything, and a pattern larger than the target (nodes or edges)
/// matches nothing. Returns `None` when a real search is needed.
fn trivial_outcome(
    pattern: &Graph,
    target_nodes: usize,
    target_edges: usize,
) -> Option<(MatchOutcome, u64)> {
    let pn = pattern.node_count();
    if pn == 0 {
        return Some((MatchOutcome::Matched, 0));
    }
    if pn > target_nodes || pattern.edge_count() > target_edges {
        return Some((MatchOutcome::Unmatched, 0));
    }
    None
}

/// Pattern-side compilation for the fast engine: a connected
/// path-at-a-time matching order plus, per position, everything the inner
/// loop needs — the node label (candidate bucket), a degree lower bound,
/// and *all* back edges to earlier positions (bitset intersection masks).
///
/// Order heuristic: each component is rooted at its highest-degree node;
/// growth extends from the most recently placed node that still has an
/// unplaced neighbor, preferring neighbors with more placed pattern
/// neighbors (more intersection masks sooner), then higher degree. Ties
/// break toward lower node ids so the plan — and therefore the engine's
/// step counts — are deterministic.
#[derive(Debug, Clone, Default)]
struct MatchPlan {
    /// Node label per position (selects the target's candidate bucket).
    labels: Vec<NodeLabel>,
    /// Pattern degree per position (candidate lower bound).
    degrees: Vec<u32>,
    /// Back edges per position: `(earlier position, edge label)`, ascending
    /// by position. Component roots have none.
    back: Vec<Vec<(usize, EdgeLabel)>>,
}

impl MatchPlan {
    fn new(pattern: &Graph) -> Self {
        let n = pattern.node_count();
        let mut placed = vec![false; n];
        let mut pos_of = vec![usize::MAX; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        while order.len() < n {
            let root = (0..n as NodeId)
                .filter(|&v| !placed[v as usize])
                .max_by_key(|&v| (pattern.degree(v), std::cmp::Reverse(v)))
                .expect("unplaced node must exist");
            placed[root as usize] = true;
            pos_of[root as usize] = order.len();
            order.push(root);
            loop {
                // Path-at-a-time: walk back from the most recently placed
                // node and extend from the first that still has an
                // unplaced neighbor, keeping the order chain-like.
                let mut chosen: Option<NodeId> = None;
                'from_recent: for &u in order.iter().rev() {
                    let mut best_key = None;
                    for a in pattern.neighbors(u) {
                        if placed[a.to as usize] {
                            continue;
                        }
                        let placed_nbrs = pattern
                            .neighbors(a.to)
                            .iter()
                            .filter(|b| placed[b.to as usize])
                            .count();
                        let key = (placed_nbrs, pattern.degree(a.to), std::cmp::Reverse(a.to));
                        if best_key.is_none_or(|b| key > b) {
                            best_key = Some(key);
                            chosen = Some(a.to);
                        }
                    }
                    if chosen.is_some() {
                        break 'from_recent;
                    }
                }
                let Some(v) = chosen else { break };
                placed[v as usize] = true;
                pos_of[v as usize] = order.len();
                order.push(v);
            }
        }
        let labels = order.iter().map(|&v| pattern.node_label(v)).collect();
        let degrees = order.iter().map(|&v| pattern.degree(v) as u32).collect();
        let back = order
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let mut b: Vec<(usize, EdgeLabel)> = pattern
                    .neighbors(v)
                    .iter()
                    .filter(|a| pos_of[a.to as usize] < i)
                    .map(|a| (pos_of[a.to as usize], a.label))
                    .collect();
                b.sort_unstable();
                b
            })
            .collect();
        Self {
            labels,
            degrees,
            back,
        }
    }

    fn len(&self) -> usize {
        self.labels.len()
    }
}

/// Reusable buffers for the fast engine's backtracking loop: one candidate
/// bitset frame per plan position, the used-node bitset, and the partial
/// map (target node per position). All are resized per target and fully
/// rewritten per search, so no cross-call reset is needed.
#[derive(Debug, Clone, Default)]
struct FastScratch {
    frames: Vec<u64>,
    used: Vec<u64>,
    map: Vec<NodeId>,
}

/// Pop the lowest set bit of `frame`, returning its index.
#[inline]
fn pop_lowest(frame: &mut [u64]) -> Option<NodeId> {
    for (wi, w) in frame.iter_mut().enumerate() {
        if *w != 0 {
            let b = w.trailing_zeros();
            *w &= *w - 1;
            return Some(wi as NodeId * 64 + b);
        }
    }
    None
}

/// Build the candidate frame for plan position `pos`: the target's bucket
/// for the position's node label, AND the adjacency row of every back
/// edge's image, AND-NOT the used set. A label or edge label absent from
/// the target zeroes the frame (no candidates, zero steps charged).
fn build_frame(
    plan: &MatchPlan,
    target: &CompiledGraph,
    frames: &mut [u64],
    used: &[u64],
    map: &[NodeId],
    pos: usize,
) {
    let words = target.word_count();
    let frame = &mut frames[pos * words..(pos + 1) * words];
    match target.bucket(plan.labels[pos]) {
        Some(bucket) => frame.copy_from_slice(bucket),
        None => {
            frame.fill(0);
            return;
        }
    }
    for &(bpos, el) in &plan.back[pos] {
        match target.adj_row(map[bpos], el) {
            Some(row) => {
                for (f, r) in frame.iter_mut().zip(row) {
                    *f &= r;
                }
            }
            None => {
                frame.fill(0);
                return;
            }
        }
    }
    for (f, u) in frame.iter_mut().zip(used) {
        *f &= !u;
    }
}

/// The fast engine's search loop: pop candidates from filtered bitset
/// frames, descending a position on success and backtracking when a frame
/// runs dry. Charges one step per popped candidate — an empty frame costs
/// nothing — and reports `(outcome, steps used)` under the same contract
/// as the VF2 path.
fn fast_search(
    plan: &MatchPlan,
    target: &CompiledGraph,
    scratch: &mut FastScratch,
    max_steps: u64,
) -> (MatchOutcome, u64) {
    let n = plan.len();
    let words = target.word_count();
    scratch.frames.clear();
    scratch.frames.resize(n * words, 0);
    scratch.used.clear();
    scratch.used.resize(words, 0);
    scratch.map.clear();
    scratch.map.resize(n, u32::MAX);
    let FastScratch { frames, used, map } = scratch;

    let mut steps = StepGauge::new(max_steps);
    let mut depth = 0usize;
    build_frame(plan, target, frames, used, map, 0);
    let outcome = loop {
        match pop_lowest(&mut frames[depth * words..(depth + 1) * words]) {
            Some(v) => {
                if !steps.consume() {
                    break MatchOutcome::Indeterminate;
                }
                if target.degree(v) < plan.degrees[depth] {
                    continue;
                }
                map[depth] = v;
                if depth + 1 == n {
                    break MatchOutcome::Matched;
                }
                used[v as usize / 64] |= 1u64 << (v % 64);
                build_frame(plan, target, frames, used, map, depth + 1);
                depth += 1;
            }
            None => {
                if depth == 0 {
                    break MatchOutcome::Unmatched;
                }
                depth -= 1;
                let v = map[depth];
                used[v as usize / 64] &= !(1u64 << (v % 64));
            }
        }
    };
    (outcome, max_steps - steps.remaining)
}

/// The backtracking search shared by [`SubgraphMatcher`] and
/// [`MultiMatcher`]: pattern, target, and the precomputed matching order.
struct SearchCtx<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    order: &'a [NodeId],
    anchor: &'a [Option<usize>],
}

impl SearchCtx<'_> {
    /// Depth-first extension; returns `false` when enumeration should stop
    /// (the visitor declined to continue, or the step gauge ran dry).
    /// `map` and `used` are restored to their entry state before returning.
    fn extend(
        &self,
        depth: usize,
        map: &mut [NodeId],
        used: &mut [bool],
        steps: &mut StepGauge,
        visit: &mut dyn FnMut(&[NodeId]) -> bool,
    ) -> bool {
        if depth == self.order.len() {
            return visit(map);
        }
        let p = self.order[depth];
        let p_label = self.pattern.node_label(p);
        let p_deg = self.pattern.degree(p);

        // Candidates: neighbors of the anchor's image, or all target nodes
        // for a component root. Each candidate trial costs one step.
        let try_candidate = |cand: NodeId,
                             map: &mut [NodeId],
                             used: &mut [bool],
                             steps: &mut StepGauge,
                             visit: &mut dyn FnMut(&[NodeId]) -> bool,
                             this: &Self|
         -> bool {
            if !steps.consume() {
                return false; // step cap hit: abandon the whole search
            }
            if used[cand as usize]
                || this.target.node_label(cand) != p_label
                || this.target.degree(cand) < p_deg
            {
                return true; // infeasible, keep enumerating
            }
            // Every pattern edge from p to an already-matched node must map
            // to a target edge with the same label.
            for a in this.pattern.neighbors(p) {
                let img = map[a.to as usize];
                if img == u32::MAX {
                    continue;
                }
                match this.target.edge_label_between(cand, img) {
                    Some(l) if l == a.label => {}
                    _ => return true,
                }
            }
            map[p as usize] = cand;
            used[cand as usize] = true;
            let keep_going = this.extend(depth + 1, map, used, steps, visit);
            used[cand as usize] = false;
            map[p as usize] = u32::MAX;
            keep_going
        };

        match self.anchor[depth] {
            Some(anchor_idx) => {
                let anchor_img = map[self.order[anchor_idx] as usize];
                debug_assert_ne!(anchor_img, u32::MAX);
                for a in self.target.neighbors(anchor_img) {
                    if !try_candidate(a.to, map, used, steps, visit, self) {
                        return false;
                    }
                }
            }
            None => {
                for cand in 0..self.target.node_count() as NodeId {
                    if !try_candidate(cand, map, used, steps, visit, self) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Compute a connected matching order and per-node anchors.
fn matching_order(pattern: &Graph) -> (Vec<NodeId>, Vec<Option<usize>>) {
    let n = pattern.node_count();
    let mut order = Vec::with_capacity(n);
    let mut anchor = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut pos_in_order = vec![usize::MAX; n];

    while order.len() < n {
        // Component root: highest-degree unplaced node (most constrained
        // first shrinks the branching factor).
        let root = (0..n as NodeId)
            .filter(|&i| !placed[i as usize])
            .max_by_key(|&i| pattern.degree(i))
            .expect("unplaced node must exist");
        placed[root as usize] = true;
        pos_in_order[root as usize] = order.len();
        order.push(root);
        anchor.push(None);
        // Grow the component greedily: repeatedly pick the unplaced node
        // with the most placed neighbors (ties by degree).
        loop {
            let mut best: Option<(NodeId, usize, usize)> = None;
            for v in 0..n as NodeId {
                if placed[v as usize] {
                    continue;
                }
                let matched_nbrs = pattern
                    .neighbors(v)
                    .iter()
                    .filter(|a| placed[a.to as usize])
                    .count();
                if matched_nbrs == 0 {
                    continue;
                }
                let key = (v, matched_nbrs, pattern.degree(v));
                if best.is_none_or(|(_, m, d)| (matched_nbrs, pattern.degree(v)) > (m, d)) {
                    best = Some(key);
                }
            }
            let Some((v, _, _)) = best else { break };
            placed[v as usize] = true;
            let anchor_node = pattern
                .neighbors(v)
                .iter()
                .find(|a| placed[a.to as usize] && pos_in_order[a.to as usize] != usize::MAX)
                .map(|a| pos_in_order[a.to as usize]);
            pos_in_order[v as usize] = order.len();
            order.push(v);
            anchor.push(anchor_node);
        }
    }
    (order, anchor)
}

/// Whether `pattern` occurs in `target` (subgraph monomorphism).
pub fn contains(target: &Graph, pattern: &Graph) -> bool {
    SubgraphMatcher::new(pattern, target).exists()
}

/// Whole-graph isomorphism test.
///
/// Two graphs with equal node and edge counts are isomorphic iff a
/// monomorphism exists from one into the other (an injective node map that
/// covers all nodes and whose edge image covers all edges). Cheap invariant
/// checks reject most non-isomorphic pairs before the search.
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if a.sorted_node_labels() != b.sorted_node_labels() {
        return false;
    }
    if a.sorted_edge_signature() != b.sorted_edge_signature() {
        return false;
    }
    contains(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn edge_graph(ul: u16, el: u16, vl: u16) -> Graph {
        let mut b = GraphBuilder::new();
        let u = b.add_node(ul);
        let v = b.add_node(vl);
        b.add_edge(u, v, el);
        b.build()
    }

    fn labeled_path(labels: &[u16], elabels: &[u16]) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = labels.iter().map(|&l| b.add_node(l)).collect();
        for (i, &el) in elabels.iter().enumerate() {
            b.add_edge(n[i], n[i + 1], el);
        }
        b.build()
    }

    fn cycle(labels: &[u16], el: u16) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = labels.iter().map(|&l| b.add_node(l)).collect();
        for i in 0..n.len() {
            b.add_edge(n[i], n[(i + 1) % n.len()], el);
        }
        b.build()
    }

    #[test]
    fn single_edge_in_path() {
        let target = labeled_path(&[0, 1, 2], &[5, 6]);
        assert!(contains(&target, &edge_graph(0, 5, 1)));
        assert!(contains(&target, &edge_graph(1, 5, 0))); // symmetric
        assert!(!contains(&target, &edge_graph(0, 6, 1))); // wrong edge label
        assert!(!contains(&target, &edge_graph(0, 5, 2))); // wrong node label
    }

    #[test]
    fn monomorphism_not_induced() {
        // Pattern path a-b-c embeds in triangle a-b-c even though the
        // triangle has the extra closing edge (non-induced semantics).
        let target = cycle(&[0, 1, 2], 9);
        let pattern = labeled_path(&[0, 1, 2], &[9, 9]);
        assert!(contains(&target, &pattern));
    }

    #[test]
    fn triangle_not_in_path() {
        let target = labeled_path(&[0, 0, 0], &[9, 9]);
        let pattern = cycle(&[0, 0, 0], 9);
        assert!(!contains(&target, &pattern));
    }

    #[test]
    fn count_automorphic_embeddings() {
        // Unlabeled (same-label) triangle inside itself: 3! = 6 embeddings.
        let t = cycle(&[0, 0, 0], 9);
        assert_eq!(SubgraphMatcher::new(&t, &t).count_embeddings(usize::MAX), 6);
        // Limit short-circuits.
        assert_eq!(SubgraphMatcher::new(&t, &t).count_embeddings(2), 2);
    }

    #[test]
    fn empty_pattern_always_matches() {
        let t = cycle(&[0, 0, 0], 9);
        let empty = GraphBuilder::new().build();
        assert!(contains(&t, &empty));
        assert_eq!(SubgraphMatcher::new(&empty, &t).count_embeddings(10), 1);
    }

    #[test]
    fn pattern_larger_than_target_fails_fast() {
        let small = edge_graph(0, 0, 0);
        let big = cycle(&[0, 0, 0, 0], 0);
        assert!(!contains(&small, &big));
    }

    #[test]
    fn first_embedding_is_consistent() {
        let target = labeled_path(&[3, 4, 5, 4, 3], &[1, 1, 1, 1]);
        let pattern = labeled_path(&[4, 5], &[1]);
        let m = SubgraphMatcher::new(&pattern, &target);
        let emb = m.first_embedding().unwrap();
        assert_eq!(emb.len(), 2);
        assert_eq!(target.node_label(emb[0]), 4);
        assert_eq!(target.node_label(emb[1]), 5);
        assert!(target.edge_label_between(emb[0], emb[1]) == Some(1));
    }

    #[test]
    fn images_of_pattern_node() {
        let target = labeled_path(&[3, 4, 5, 4, 3], &[1, 1, 1, 1]);
        let pattern = edge_graph(4, 1, 5);
        let m = SubgraphMatcher::new(&pattern, &target);
        // Node 0 of the pattern (label 4) can land on target nodes 1 and 3.
        assert_eq!(m.images_of(0), vec![1, 3]);
        assert_eq!(m.images_of(1), vec![2]);
    }

    #[test]
    fn disconnected_pattern() {
        // Two isolated label-0 nodes must map to distinct target nodes.
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        let pattern = b.build();
        let mut b = GraphBuilder::new();
        b.add_node(0);
        let one = b.build();
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        let two = b.build();
        assert!(!contains(&one, &pattern));
        assert!(contains(&two, &pattern));
        assert_eq!(SubgraphMatcher::new(&pattern, &two).count_embeddings(10), 2);
    }

    #[test]
    fn isomorphism_positive_under_relabeling_of_ids() {
        // Same cycle built in different node orders.
        let a = cycle(&[1, 2, 3, 4], 7);
        let mut b = GraphBuilder::new();
        let n3 = b.add_node(3);
        let n4 = b.add_node(4);
        let n1 = b.add_node(1);
        let n2 = b.add_node(2);
        b.add_edge(n1, n2, 7);
        b.add_edge(n2, n3, 7);
        b.add_edge(n3, n4, 7);
        b.add_edge(n4, n1, 7);
        let c = b.build();
        assert!(are_isomorphic(&a, &c));
    }

    #[test]
    fn isomorphism_negative_cases() {
        let tri = cycle(&[0, 0, 0], 9);
        let path = labeled_path(&[0, 0, 0], &[9, 9]);
        assert!(!are_isomorphic(&tri, &path)); // edge count differs
        let c4 = cycle(&[0, 0, 0, 0], 9);
        let mut b = GraphBuilder::new();
        // Star K_{1,3}: same node count/labels, same edge count as C4? No,
        // star has 3 edges and C4 has 4, so build a "paw" instead: triangle
        // plus pendant (4 nodes, 4 edges) — degree sequence differs from C4.
        let n: Vec<_> = (0..4).map(|_| b.add_node(0)).collect();
        b.add_edge(n[0], n[1], 9);
        b.add_edge(n[1], n[2], 9);
        b.add_edge(n[0], n[2], 9);
        b.add_edge(n[2], n[3], 9);
        let paw = b.build();
        assert!(!are_isomorphic(&c4, &paw));
    }

    #[test]
    fn multi_matcher_agrees_with_subgraph_matcher() {
        let targets = [
            labeled_path(&[0, 1, 2], &[5, 6]),
            cycle(&[0, 1, 2], 5),
            labeled_path(&[3, 4, 5, 4, 3], &[1, 1, 1, 1]),
            cycle(&[0, 0, 0, 0], 9),
            GraphBuilder::new().build(),
        ];
        let patterns = [
            edge_graph(0, 5, 1),
            edge_graph(1, 5, 0),
            edge_graph(0, 6, 1),
            labeled_path(&[0, 1, 2], &[5, 6]),
            cycle(&[0, 0, 0], 9),
            GraphBuilder::new().build(),
        ];
        for kind in [MatcherKind::Vf2, MatcherKind::Fast] {
            for p in &patterns {
                // One matcher per pattern, reused across targets of varying
                // size — must agree with the fresh per-pair matcher every
                // time, whichever engine backs it.
                let mut m = MultiMatcher::with_kind(p, kind);
                for t in &targets {
                    assert_eq!(m.exists_in(t), contains(t, p), "kind={kind}");
                }
                // Second sweep over the same targets: buffers must have
                // been restored, answers unchanged.
                for t in &targets {
                    assert_eq!(m.exists_in(t), contains(t, p), "kind={kind}");
                }
            }
        }
    }

    #[test]
    fn fast_matcher_is_the_default_and_kinds_parse() {
        let e = edge_graph(0, 5, 1);
        assert_eq!(MultiMatcher::new(&e).kind(), MatcherKind::Fast);
        assert_eq!(MatcherKind::parse("vf2"), Some(MatcherKind::Vf2));
        assert_eq!(MatcherKind::parse("fast"), Some(MatcherKind::Fast));
        assert_eq!(MatcherKind::parse("FAST"), None);
        assert_eq!("vf2".parse::<MatcherKind>(), Ok(MatcherKind::Vf2));
        assert!("x".parse::<MatcherKind>().is_err());
        assert_eq!(MatcherKind::Fast.to_string(), "fast");
    }

    #[test]
    fn compiled_targets_agree_with_plain_targets() {
        use crate::compiled::CompiledGraph;
        let targets = [
            labeled_path(&[0, 1, 2], &[5, 6]),
            cycle(&[0, 1, 2], 5),
            cycle(&[0, 0, 0, 0], 9),
        ];
        let patterns = [
            edge_graph(0, 5, 1),
            edge_graph(0, 6, 1),
            labeled_path(&[0, 1, 2], &[5, 6]),
            cycle(&[0, 0, 0], 9),
        ];
        for p in &patterns {
            let mut m = MultiMatcher::new(p);
            for t in &targets {
                let compiled = CompiledGraph::compile(t);
                assert_eq!(m.exists_in_compiled(&compiled), m.exists_in(t));
                assert_eq!(
                    m.exists_in_counted_compiled(&compiled, u64::MAX),
                    m.exists_in_counted(t, u64::MAX),
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "MatcherKind::Fast")]
    fn compiled_targets_reject_vf2_matchers() {
        use crate::compiled::CompiledGraph;
        let p = edge_graph(0, 5, 1);
        let t = labeled_path(&[0, 1, 2], &[5, 6]);
        let compiled = CompiledGraph::compile(&t);
        MultiMatcher::with_kind(&p, MatcherKind::Vf2).exists_in_compiled(&compiled);
    }

    fn clique(n: usize) -> Graph {
        // Label-uniform clique: the VF2 worst case (every node is a
        // candidate for every pattern node).
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..n).map(|_| b.add_node(0)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge(nodes[i], nodes[j], 0);
            }
        }
        b.build()
    }

    fn complete_tripartite(part: usize) -> Graph {
        // K(part,part,part): dense and label-uniform but K4-free, so a K4
        // pattern forces the search to exhaust a large space and fail.
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..3 * part).map(|_| b.add_node(0)).collect();
        for i in 0..3 * part {
            for j in (i + 1)..3 * part {
                if i / part != j / part {
                    b.add_edge(n[i], n[j], 0);
                }
            }
        }
        b.build()
    }

    #[test]
    fn bounded_search_on_pathological_clique_pair() {
        let k4 = clique(4);
        let k9 = clique(9);
        let k333 = complete_tripartite(3);

        // Positive pair: found well within a generous cap.
        let m = SubgraphMatcher::new(&k4, &k9);
        assert_eq!(m.exists_within(u64::MAX), MatchOutcome::Matched);
        // Negative pair: the unbounded search proves absence...
        let m = SubgraphMatcher::new(&k4, &k333);
        assert_eq!(m.exists_within(u64::MAX), MatchOutcome::Unmatched);
        // ...but a tight step cap gives up instead of grinding.
        assert_eq!(m.exists_within(10), MatchOutcome::Indeterminate);
        assert_eq!(m.exists_within(0), MatchOutcome::Indeterminate);

        // MultiMatcher agrees and reports steps used — whichever engine
        // backs it. (Step *counts* are engine-specific; the outcome
        // classification and determinism rules are not.)
        for kind in [MatcherKind::Vf2, MatcherKind::Fast] {
            let mut mm = MultiMatcher::with_kind(&k4, kind);
            let (out, used) = mm.exists_in_counted(&k9, u64::MAX);
            assert_eq!(out, MatchOutcome::Matched, "kind={kind}");
            assert!(used > 0, "kind={kind}");
            let (out, used) = mm.exists_in_counted(&k333, 10);
            assert_eq!(out, MatchOutcome::Indeterminate, "kind={kind}");
            assert_eq!(used, 10, "kind={kind}");
            let (out, full) = mm.exists_in_counted(&k333, u64::MAX);
            assert_eq!(out, MatchOutcome::Unmatched, "kind={kind}");
            assert!(full > 10, "kind={kind}");
            // Bounded runs are deterministic: same cap, same outcome, and
            // the scratch buffers are restored after an aborted search.
            let (out2, used2) = mm.exists_in_counted(&k333, 10);
            assert_eq!(
                (out2, used2),
                (MatchOutcome::Indeterminate, 10),
                "kind={kind}"
            );
            assert!(mm.exists_in(&k9), "kind={kind}");
        }
    }

    #[test]
    fn fast_engine_filters_harder_than_vf2() {
        // The fast engine only pops candidates that already satisfy every
        // back-edge constraint, so the K4-in-K(3,3,3) refutation costs
        // strictly fewer steps than VF2's try-all-neighbors search.
        let k4 = clique(4);
        let k333 = complete_tripartite(3);
        let (_, vf2_steps) =
            MultiMatcher::with_kind(&k4, MatcherKind::Vf2).exists_in_counted(&k333, u64::MAX);
        let (_, fast_steps) =
            MultiMatcher::with_kind(&k4, MatcherKind::Fast).exists_in_counted(&k333, u64::MAX);
        assert!(
            fast_steps < vf2_steps,
            "fast used {fast_steps} steps, vf2 {vf2_steps}"
        );
    }

    #[test]
    fn bounded_search_trivial_cases_cost_zero() {
        let empty = GraphBuilder::new().build();
        let e = edge_graph(0, 1, 0);
        let k4 = clique(4);
        for kind in [MatcherKind::Vf2, MatcherKind::Fast] {
            let mut mm = MultiMatcher::with_kind(&empty, kind);
            assert_eq!(mm.exists_in_counted(&e, 0), (MatchOutcome::Matched, 0));
            // Pattern larger than target: rejected before any search step.
            let mut mm = MultiMatcher::with_kind(&k4, kind);
            assert_eq!(mm.exists_in_counted(&e, 0), (MatchOutcome::Unmatched, 0));
        }
    }

    #[test]
    fn isomorphism_respects_edge_labels() {
        let a = labeled_path(&[0, 0, 0], &[1, 2]);
        let b = labeled_path(&[0, 0, 0], &[2, 1]);
        // These ARE isomorphic (reverse the path).
        assert!(are_isomorphic(&a, &b));
        let c = labeled_path(&[0, 0, 0], &[1, 1]);
        assert!(!are_isomorphic(&a, &c));
    }
}
