//! Line-oriented graph transaction I/O.
//!
//! The de-facto interchange format of the frequent-subgraph-mining
//! literature (used by the original gSpan and FSG tools):
//!
//! ```text
//! t # 0
//! v 0 C
//! v 1 O
//! e 0 1 double
//! t # 1
//! ...
//! ```
//!
//! `v` lines give `node_id label`; `e` lines give `u v label`. Node ids must
//! be dense per transaction. Labels are arbitrary non-whitespace tokens and
//! are interned into the database's [`LabelTable`].

use std::fmt;

use crate::database::GraphDb;
use crate::graph::{GraphBuilder, NodeId};
use crate::labels::LabelTable;

/// Error from [`parse_transactions`], with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a transaction file into a [`GraphDb`].
///
/// Blank lines and lines starting with `#` are ignored. Each graph must be
/// introduced by a `t` line before any `v`/`e` lines.
pub fn parse_transactions(input: &str) -> Result<GraphDb, ParseError> {
    let mut db = GraphDb::new();
    parse_transactions_into(&mut db, input)?;
    Ok(db)
}

/// Parse a transaction file *appending* into an existing database.
///
/// New graphs get the next ids after the current contents and labels are
/// interned into the database's existing table, so loading file A then
/// appending file B is indistinguishable from one parse of `A + B`
/// (incremental server ingestion relies on this). On error the database is
/// left with the graphs that parsed completely before the bad line.
pub fn parse_transactions_into(db: &mut GraphDb, input: &str) -> Result<(), ParseError> {
    let mut current: Option<GraphBuilder> = None;
    // Undirected (min, max) endpoint pairs of the current transaction, to
    // reject duplicate edges (which silently corrupt support counts).
    let mut seen_edges: std::collections::HashSet<(NodeId, NodeId)> =
        std::collections::HashSet::new();

    let flush = |builder: Option<GraphBuilder>, db: &mut GraphDb| {
        if let Some(b) = builder {
            db.push(b.build());
        }
    };

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("t") => {
                flush(current.take(), db);
                current = Some(GraphBuilder::new());
                seen_edges.clear();
            }
            Some("v") => {
                let b = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "'v' line before any 't' line"))?;
                let id: usize = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing node id"))?
                    .parse()
                    .map_err(|_| err(lineno, "bad node id"))?;
                let label = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing node label"))?;
                if id != b.node_count() {
                    return Err(err(
                        lineno,
                        format!(
                            "node ids must be dense; expected {}, got {id}",
                            b.node_count()
                        ),
                    ));
                }
                let l = db.labels_mut().intern_node(label);
                b.add_node(l);
            }
            Some("e") => {
                let b = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "'e' line before any 't' line"))?;
                let u: NodeId = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing edge endpoint"))?
                    .parse()
                    .map_err(|_| err(lineno, "bad edge endpoint"))?;
                let v: NodeId = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing edge endpoint"))?
                    .parse()
                    .map_err(|_| err(lineno, "bad edge endpoint"))?;
                let label = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing edge label"))?;
                if (u as usize) >= b.node_count() || (v as usize) >= b.node_count() {
                    return Err(err(lineno, "edge endpoint out of range"));
                }
                if u == v {
                    return Err(err(lineno, "self-loops are not supported"));
                }
                if !seen_edges.insert((u.min(v), u.max(v))) {
                    return Err(err(
                        lineno,
                        format!("duplicate edge between nodes {} and {}", u.min(v), u.max(v)),
                    ));
                }
                let l = db.labels_mut().intern_edge(label);
                b.add_edge(u, v, l);
            }
            Some(tok) => return Err(err(lineno, format!("unknown record type '{tok}'"))),
            None => unreachable!("empty lines filtered above"),
        }
    }
    flush(current.take(), db);
    Ok(())
}

/// Serialize a database back into the transaction format. Labels are written
/// by name when the table knows them, otherwise by numeric id.
pub fn write_transactions(db: &GraphDb) -> String {
    let mut out = String::new();
    let labels: &LabelTable = db.labels();
    for (gid, g) in db.graphs().iter().enumerate() {
        out.push_str(&format!("t # {gid}\n"));
        for n in g.nodes() {
            let l = g.node_label(n);
            match labels.node_name(l) {
                Some(name) => out.push_str(&format!("v {n} {name}\n")),
                None => out.push_str(&format!("v {n} {l}\n")),
            }
        }
        for e in g.edges() {
            match labels.edge_name(e.label) {
                Some(name) => out.push_str(&format!("e {} {} {name}\n", e.u, e.v)),
                None => out.push_str(&format!("e {} {} {}\n", e.u, e.v, e.label)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# water and carbon dioxide
t # 0
v 0 O
v 1 H
v 2 H
e 0 1 single
e 0 2 single

t # 1
v 0 C
v 1 O
v 2 O
e 0 1 double
e 0 2 double
";

    #[test]
    fn parse_sample() {
        let db = parse_transactions(SAMPLE).unwrap();
        assert_eq!(db.len(), 2);
        let water = db.graph(0);
        assert_eq!(water.node_count(), 3);
        assert_eq!(water.edge_count(), 2);
        assert_eq!(db.labels().node_name(water.node_label(0)), Some("O"));
        let co2 = db.graph(1);
        assert_eq!(db.labels().node_name(co2.node_label(0)), Some("C"));
        assert_eq!(db.labels().edge_label_count(), 2);
    }

    #[test]
    fn roundtrip() {
        let db = parse_transactions(SAMPLE).unwrap();
        let text = write_transactions(&db);
        let db2 = parse_transactions(&text).unwrap();
        assert_eq!(db2.len(), db.len());
        for (a, b) in db.graphs().iter().zip(db2.graphs()) {
            assert!(crate::iso::are_isomorphic(a, b));
        }
    }

    #[test]
    fn empty_input_is_empty_db() {
        let db = parse_transactions("").unwrap();
        assert!(db.is_empty());
    }

    #[test]
    fn vertex_before_transaction_is_error() {
        let e = parse_transactions("v 0 C\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("before any 't'"));
    }

    #[test]
    fn sparse_node_ids_are_error() {
        let e = parse_transactions("t # 0\nv 1 C\n").unwrap_err();
        assert!(e.message.contains("dense"));
    }

    #[test]
    fn dangling_edge_is_error() {
        let e = parse_transactions("t # 0\nv 0 C\ne 0 5 x\n").unwrap_err();
        assert!(e.message.contains("out of range"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn self_loop_is_error() {
        let e = parse_transactions("t # 0\nv 0 C\ne 0 0 x\n").unwrap_err();
        assert!(e.message.contains("self-loop"));
    }

    #[test]
    fn duplicate_edge_is_error() {
        // Same pair twice, second time with reversed endpoints and a
        // different label: still the same undirected edge.
        let e = parse_transactions("t # 0\nv 0 C\nv 1 O\ne 0 1 x\ne 1 0 y\n").unwrap_err();
        assert!(e.message.contains("duplicate edge"), "{}", e.message);
        assert_eq!(e.line, 5);
    }

    #[test]
    fn duplicate_edge_tracking_resets_per_transaction() {
        // The same edge in two different transactions is fine.
        let db = parse_transactions("t # 0\nv 0 C\nv 1 O\ne 0 1 x\nt # 1\nv 0 C\nv 1 O\ne 0 1 x\n")
            .unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn unknown_record_is_error() {
        let e = parse_transactions("q 1 2\n").unwrap_err();
        assert!(e.message.contains("unknown record"));
        assert_eq!(e.to_string(), "line 1: unknown record type 'q'");
    }

    #[test]
    fn append_parse_matches_one_shot_concatenation() {
        let a = "t # 0\nv 0 O\nv 1 H\ne 0 1 single\n";
        let b = "t # 0\nv 0 C\nv 1 O\ne 0 1 double\nt # 1\nv 0 N\n";
        let mut incremental = parse_transactions(a).unwrap();
        parse_transactions_into(&mut incremental, b).unwrap();
        let one_shot = parse_transactions(&format!("{a}{b}")).unwrap();
        assert_eq!(incremental.len(), one_shot.len());
        assert_eq!(
            write_transactions(&incremental),
            write_transactions(&one_shot),
            "append ingestion must be indistinguishable from one parse"
        );
    }

    #[test]
    fn append_parse_error_keeps_completed_graphs() {
        let mut db = parse_transactions("t # 0\nv 0 C\n").unwrap();
        let e = parse_transactions_into(&mut db, "t # 0\nv 0 O\nt # 1\nv 1 O\n").unwrap_err();
        assert!(e.message.contains("dense"), "{e}");
        // Graph 0 (old) survives; the complete appended graph before the
        // bad line was flushed too.
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn trailing_graph_without_newline_is_kept() {
        let db = parse_transactions("t # 0\nv 0 C").unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.graph(0).node_count(), 1);
    }
}
