//! BFS neighborhoods and `CutGraph` (Algorithm 2, line 12).
//!
//! After FVMine identifies a significant sub-feature vector, GraphSig
//! locates each node described by it and "isolates the subgraph centered at
//! each node by using a user-specified radius". That isolation is
//! [`cut_graph`]: the subgraph induced on all nodes within `radius` hops of
//! a center node.

use crate::graph::{Graph, GraphBuilder, NodeId};

/// Nodes within `radius` hops of `center` (including `center`), in BFS
/// discovery order, together with their hop distance.
pub fn bfs_ball(g: &Graph, center: NodeId, radius: usize) -> Vec<(NodeId, usize)> {
    assert!((center as usize) < g.node_count(), "center out of range");
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    dist[center as usize] = 0;
    queue.push_back(center);
    while let Some(n) = queue.pop_front() {
        let d = dist[n as usize];
        order.push((n, d));
        if d == radius {
            continue;
        }
        for a in g.neighbors(n) {
            if dist[a.to as usize] == usize::MAX {
                dist[a.to as usize] = d + 1;
                queue.push_back(a.to);
            }
        }
    }
    order
}

/// `CutGraph(center, radius)`: the induced subgraph on the BFS ball.
///
/// Returns the subgraph and the mapping from its node ids to the original
/// graph's node ids (`mapping[new_id] = old_id`). Node 0 of the result is
/// always the center. All edges of the original graph whose endpoints both
/// lie inside the ball are retained (induced semantics).
///
/// # Example
///
/// ```
/// use graphsig_graph::{GraphBuilder, cut_graph};
/// let mut b = GraphBuilder::new();
/// let n: Vec<_> = (0..4).map(|i| b.add_node(i)).collect();
/// b.add_edge(n[0], n[1], 0);
/// b.add_edge(n[1], n[2], 0);
/// b.add_edge(n[2], n[3], 0);
/// let g = b.build();
/// let (ball, map) = cut_graph(&g, 0, 2);
/// assert_eq!(ball.node_count(), 3); // nodes 0,1,2
/// assert_eq!(map[0], 0);
/// ```
pub fn cut_graph(g: &Graph, center: NodeId, radius: usize) -> (Graph, Vec<NodeId>) {
    let ball = bfs_ball(g, center, radius);
    let mut new_id = vec![u32::MAX; g.node_count()];
    let mut mapping = Vec::with_capacity(ball.len());
    let mut b = GraphBuilder::with_capacity(ball.len(), ball.len());
    for &(old, _) in &ball {
        let id = b.add_node(g.node_label(old));
        new_id[old as usize] = id;
        mapping.push(old);
    }
    // Induced edges: iterate original edges once.
    for e in g.edges() {
        let (nu, nv) = (new_id[e.u as usize], new_id[e.v as usize]);
        if nu != u32::MAX && nv != u32::MAX {
            b.add_edge(nu, nv, e.label);
        }
    }
    (b.build(), mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// A 6-cycle with a pendant node attached to vertex 0.
    fn ring_with_tail() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..7).map(|i| b.add_node(i as u16)).collect();
        for i in 0..6 {
            b.add_edge(n[i], n[(i + 1) % 6], 1);
        }
        b.add_edge(n[0], n[6], 2);
        b.build()
    }

    #[test]
    fn ball_distances() {
        let g = ring_with_tail();
        let ball = bfs_ball(&g, 0, 1);
        let mut ids: Vec<_> = ball.iter().map(|&(n, _)| n).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 5, 6]);
        assert!(ball
            .iter()
            .all(|&(n, d)| if n == 0 { d == 0 } else { d == 1 }));
    }

    #[test]
    fn radius_zero_is_single_node() {
        let g = ring_with_tail();
        let (sub, map) = cut_graph(&g, 3, 0);
        assert_eq!(sub.node_count(), 1);
        assert_eq!(sub.edge_count(), 0);
        assert_eq!(sub.node_label(0), 3);
        assert_eq!(map, vec![3]);
    }

    #[test]
    fn induced_edges_inside_ball_are_kept() {
        let g = ring_with_tail();
        // Radius 3 from node 3 covers the whole ring (the opposite vertex 0
        // is 3 hops away); the tail node 6 hangs off vertex 0 at distance 4
        // and stays outside. All 6 ring edges are induced, including the
        // closing edge between the two frontier vertices.
        let (sub, _) = cut_graph(&g, 3, 3);
        assert_eq!(sub.node_count(), 6);
        assert_eq!(sub.edge_count(), 6);
        assert!(sub.is_connected());
    }

    #[test]
    fn center_is_node_zero() {
        let g = ring_with_tail();
        let (sub, map) = cut_graph(&g, 4, 1);
        assert_eq!(map[0], 4);
        assert_eq!(sub.node_label(0), 4);
    }

    #[test]
    fn ring_closure_edge_is_induced() {
        // Ball of radius 1 around node 0 contains nodes 1 and 5; the ring
        // edges 0-1 and 0-5 are present but 1-5 is not an edge, so edge
        // count is 3 (including the tail edge 0-6).
        let g = ring_with_tail();
        let (sub, _) = cut_graph(&g, 0, 1);
        assert_eq!(sub.node_count(), 4);
        assert_eq!(sub.edge_count(), 3);
    }

    #[test]
    fn big_radius_captures_everything() {
        let g = ring_with_tail();
        let (sub, _) = cut_graph(&g, 2, 100);
        assert_eq!(sub.node_count(), g.node_count());
        assert_eq!(sub.edge_count(), g.edge_count());
    }

    #[test]
    #[should_panic(expected = "center out of range")]
    fn rejects_bad_center() {
        bfs_ball(&ring_with_tail(), 99, 1);
    }
}
