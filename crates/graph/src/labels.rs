//! Label interning.
//!
//! Chemical datasets carry string labels ("C", "O", "N", single/double/
//! aromatic bonds). All mining code in this workspace operates on dense
//! numeric ids; a [`LabelTable`] owns the id ↔ string mapping for one
//! database. Node and edge labels are separate namespaces, mirroring the
//! paper's distinction between atom-type features and edge-type features.

use std::collections::HashMap;
use std::fmt;

/// A vertex (atom-type) label id.
pub type NodeLabel = u16;
/// An edge (bond-type) label id.
pub type EdgeLabel = u16;

/// Bidirectional string ↔ id mapping for node and edge labels.
///
/// Interning is append-only; ids are assigned densely in first-seen order,
/// which keeps per-label arrays (e.g. prior-probability tables) compact.
#[derive(Debug, Clone, Default)]
pub struct LabelTable {
    node_names: Vec<String>,
    node_ids: HashMap<String, NodeLabel>,
    edge_names: Vec<String>,
    edge_ids: HashMap<String, EdgeLabel>,
}

impl LabelTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a node label, returning its id (existing or fresh).
    pub fn intern_node(&mut self, name: &str) -> NodeLabel {
        if let Some(&id) = self.node_ids.get(name) {
            return id;
        }
        let id =
            NodeLabel::try_from(self.node_names.len()).expect("more than u16::MAX node labels");
        self.node_names.push(name.to_owned());
        self.node_ids.insert(name.to_owned(), id);
        id
    }

    /// Intern an edge label, returning its id (existing or fresh).
    pub fn intern_edge(&mut self, name: &str) -> EdgeLabel {
        if let Some(&id) = self.edge_ids.get(name) {
            return id;
        }
        let id =
            EdgeLabel::try_from(self.edge_names.len()).expect("more than u16::MAX edge labels");
        self.edge_names.push(name.to_owned());
        self.edge_ids.insert(name.to_owned(), id);
        id
    }

    /// Look up a node label id by name without interning.
    pub fn node_id(&self, name: &str) -> Option<NodeLabel> {
        self.node_ids.get(name).copied()
    }

    /// Look up an edge label id by name without interning.
    pub fn edge_id(&self, name: &str) -> Option<EdgeLabel> {
        self.edge_ids.get(name).copied()
    }

    /// Name of a node label id, if in range.
    pub fn node_name(&self, id: NodeLabel) -> Option<&str> {
        self.node_names.get(id as usize).map(String::as_str)
    }

    /// Name of an edge label id, if in range.
    pub fn edge_name(&self, id: EdgeLabel) -> Option<&str> {
        self.edge_names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct node labels interned.
    pub fn node_label_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of distinct edge labels interned.
    pub fn edge_label_count(&self) -> usize {
        self.edge_names.len()
    }

    /// Iterate `(id, name)` pairs for node labels in id order.
    pub fn node_labels(&self) -> impl Iterator<Item = (NodeLabel, &str)> {
        self.node_names
            .iter()
            .enumerate()
            .map(|(i, s)| (i as NodeLabel, s.as_str()))
    }

    /// Iterate `(id, name)` pairs for edge labels in id order.
    pub fn edge_labels(&self) -> impl Iterator<Item = (EdgeLabel, &str)> {
        self.edge_names
            .iter()
            .enumerate()
            .map(|(i, s)| (i as EdgeLabel, s.as_str()))
    }
}

impl fmt::Display for LabelTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LabelTable({} node labels, {} edge labels)",
            self.node_label_count(),
            self.edge_label_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = LabelTable::new();
        let c1 = t.intern_node("C");
        let o = t.intern_node("O");
        let c2 = t.intern_node("C");
        assert_eq!(c1, c2);
        assert_ne!(c1, o);
        assert_eq!(t.node_label_count(), 2);
    }

    #[test]
    fn node_and_edge_namespaces_are_separate() {
        let mut t = LabelTable::new();
        let n = t.intern_node("1");
        let e = t.intern_edge("1");
        assert_eq!(n, 0);
        assert_eq!(e, 0);
        assert_eq!(t.node_name(n), Some("1"));
        assert_eq!(t.edge_name(e), Some("1"));
        assert_eq!(t.node_label_count(), 1);
        assert_eq!(t.edge_label_count(), 1);
    }

    #[test]
    fn lookup_without_interning() {
        let mut t = LabelTable::new();
        t.intern_node("N");
        assert_eq!(t.node_id("N"), Some(0));
        assert_eq!(t.node_id("P"), None);
        assert_eq!(t.edge_id("N"), None);
        assert_eq!(t.node_name(7), None);
    }

    #[test]
    fn iteration_in_id_order() {
        let mut t = LabelTable::new();
        for s in ["C", "O", "N"] {
            t.intern_node(s);
        }
        let got: Vec<_> = t.node_labels().collect();
        assert_eq!(got, vec![(0, "C"), (1, "O"), (2, "N")]);
    }

    #[test]
    fn display_is_compact() {
        let mut t = LabelTable::new();
        t.intern_node("C");
        t.intern_edge("-");
        assert_eq!(t.to_string(), "LabelTable(1 node labels, 1 edge labels)");
    }
}
