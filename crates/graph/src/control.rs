//! Request-level resource governance: budgets, cancellation, outcomes.
//!
//! The ROADMAP's north star — a long-lived server batching mine requests —
//! needs every request bounded. This module is the governance layer the
//! whole workspace shares: a [`Budget`] carries an optional wall-clock
//! deadline, an optional cooperative *step* budget, and a [`CancelToken`];
//! search loops (VF2 match steps, gSpan DFS extensions, FSG candidate
//! joins, FVMine branch expansions, RWR iterations) tick a [`Meter`] and
//! stop cooperatively when the budget is exhausted. Results are reported
//! as an [`Outcome`] whose [`Completion`] says whether the search ran to
//! completion or was truncated, and why.
//!
//! # Deterministic vs. best-effort truncation
//!
//! The workspace's parallel executor guarantees byte-identical output at
//! every thread count, and budget truncation must not break that. The two
//! stop conditions have different guarantees by design:
//!
//! * **Step budget — deterministic.** `max_steps` is a *per-work-unit
//!   allowance*, not a globally shared pool: each independent unit of work
//!   (a gSpan seed subtree, an FSG parent or candidate, an FVMine label
//!   group, a region set, one graph's RWR pass, one VF2 match) gets a
//!   fresh [`Meter`] counting from zero. Whether a unit exhausts its
//!   allowance is a property of the unit alone — independent of thread
//!   count and scheduling — so truncated results are byte-identical across
//!   thread counts. (A shared atomic pool would race: which unit drains
//!   the last step would depend on scheduling.) The shared
//!   [`Budget::steps_spent`] counter only *meters* total work for
//!   diagnostics; it is never used for limit checks.
//! * **Deadline / cancellation — best-effort, nondeterministic.** Wall
//!   clock and external cancellation are inherently scheduling-dependent.
//!   They are checked every [`EXTERNAL_CHECK_PERIOD`] ticks and at the
//!   start of each work unit; a run truncated by deadline or cancellation
//!   is well-formed and labeled, but its exact contents are not
//!   reproducible.
//!
//! # Example
//!
//! ```
//! use graphsig_graph::control::{Budget, Completion, StopReason};
//!
//! let budget = Budget::unlimited().with_max_steps(2);
//! let mut meter = budget.meter();
//! assert!(meter.tick());
//! assert!(meter.tick());
//! assert!(!meter.tick()); // third step exceeds the per-unit allowance
//! assert_eq!(meter.completion(), Completion::Truncated(StopReason::StepBudget));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in ticks) a [`Meter`] polls the wall clock and the cancel
/// flag. Step-budget checks are exact (every tick); external conditions
/// are best-effort and only need coarse latency.
pub const EXTERNAL_CHECK_PERIOD: u64 = 1024;

/// Why a search stopped before exhausting its search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StopReason {
    /// The per-work-unit step allowance ran out (deterministic).
    StepBudget,
    /// The wall-clock deadline passed (best-effort, nondeterministic).
    Deadline,
    /// The [`CancelToken`] was triggered (best-effort, nondeterministic).
    Cancelled,
    /// A result cap such as `max_patterns` was hit (deterministic).
    PatternCap,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::StepBudget => "step budget exhausted",
            StopReason::Deadline => "deadline exceeded",
            StopReason::Cancelled => "cancelled",
            StopReason::PatternCap => "pattern cap reached",
        })
    }
}

impl StopReason {
    /// Whether truncation for this reason is reproducible across thread
    /// counts (step budgets and pattern caps) or scheduling-dependent
    /// (deadlines and cancellation).
    pub fn is_deterministic(&self) -> bool {
        matches!(self, StopReason::StepBudget | StopReason::PatternCap)
    }
}

/// Whether a result covers the full search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// The search ran to the end; the result is exact.
    Complete,
    /// The search stopped early; the result is a well-formed prefix of the
    /// complete answer.
    Truncated(StopReason),
}

impl Completion {
    /// `true` iff the search was not truncated.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// Combine two completions: the first truncation (in merge order)
    /// wins, so merging in deterministic unit order yields a
    /// deterministic overall reason.
    pub fn merge(self, other: Completion) -> Completion {
        match self {
            Completion::Complete => other,
            truncated => truncated,
        }
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completion::Complete => f.write_str("complete"),
            Completion::Truncated(r) => write!(f, "truncated ({r})"),
        }
    }
}

/// A result plus whether it is complete. Truncated results are always
/// well-formed partial answers, never garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome<T> {
    /// The (possibly partial) result.
    pub result: T,
    /// Whether `result` covers the full search space.
    pub completion: Completion,
}

impl<T> Outcome<T> {
    /// An exact result.
    pub fn complete(result: T) -> Self {
        Self {
            result,
            completion: Completion::Complete,
        }
    }

    /// A partial result truncated for `reason`.
    pub fn truncated(result: T, reason: StopReason) -> Self {
        Self {
            result,
            completion: Completion::Truncated(reason),
        }
    }

    /// Pair a result with an explicit completion.
    pub fn new(result: T, completion: Completion) -> Self {
        Self { result, completion }
    }

    /// Transform the result, keeping the completion.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        Outcome {
            result: f(self.result),
            completion: self.completion,
        }
    }
}

/// Cooperative cancellation handle. Cloning shares the flag; any clone can
/// cancel, and all meters drawing on a [`Budget`] carrying the token
/// observe it (best-effort — see the module docs).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resource limits for one mining request. Cheap to clone; clones share
/// the cancel flag and the spent-steps diagnostic counter.
///
/// The default ([`Budget::unlimited`]) imposes no limits, and every meter
/// drawn from it is a near-free no-op — governance off means zero
/// behavior change.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    cancel: CancelToken,
    spent: Arc<AtomicU64>,
    match_spent: Arc<AtomicU64>,
    canon_spent: Arc<AtomicU64>,
    cert_hit_spent: Arc<AtomicU64>,
}

impl Budget {
    /// A budget with no limits attached.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limit wall-clock time to `timeout` from now (best-effort).
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Limit wall-clock time to an absolute instant (best-effort).
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Limit each work unit to `max_steps` search steps (deterministic;
    /// see the module docs for what counts as a work unit).
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Attach an externally held cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The per-work-unit step allowance, if any.
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// The cancellation token carried by this budget.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Whether any limit is attached. Unlimited budgets short-circuit to
    /// the ungoverned fast path everywhere.
    pub fn is_governed(&self) -> bool {
        self.deadline.is_some() || self.max_steps.is_some() || self.cancel.is_cancelled()
    }

    /// Total steps flushed back by finished meters, across all threads.
    /// Diagnostic only — never used for limit checks (a shared pool would
    /// make truncation scheduling-dependent).
    pub fn steps_spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// The portion of [`Budget::steps_spent`] that was isomorphism-matcher
    /// work ([`Meter::consume_match`]). Diagnostic only: completion reports
    /// use it to say whether a truncated run was dominated by match steps
    /// or by other search work.
    pub fn match_steps_spent(&self) -> u64 {
        self.match_spent.load(Ordering::Relaxed)
    }

    /// Number of full `min_dfs_code` canonicalizations flushed back by
    /// finished meters ([`Meter::note_canon`]). Diagnostic only: the
    /// certificate layer exists to drive this number down, and reports
    /// surface it next to matcher steps so the win is attributable.
    pub fn canon_calls(&self) -> u64 {
        self.canon_spent.load(Ordering::Relaxed)
    }

    /// Number of canonicalizations *avoided* because an
    /// isomorphism-invariant certificate resolved the question first
    /// ([`Meter::note_cert_hit`]). Diagnostic only.
    pub fn cert_hits(&self) -> u64 {
        self.cert_hit_spent.load(Ordering::Relaxed)
    }

    /// Check the best-effort external conditions (deadline, cancellation)
    /// before starting a work unit, so that once a deadline passes,
    /// remaining units are skipped instead of started.
    pub fn check_start(&self) -> Option<StopReason> {
        if self.cancel.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(StopReason::Deadline);
            }
        }
        None
    }

    /// Draw a fresh per-work-unit meter on this budget.
    pub fn meter(&self) -> Meter<'_> {
        Meter {
            budget: Some(self),
            local: 0,
            local_match: 0,
            local_canon: 0,
            local_cert_hit: 0,
            stop: None,
        }
    }
}

/// Convenience: the start-of-unit check for an optional budget.
pub fn check_start(budget: Option<&Budget>) -> Option<StopReason> {
    budget.and_then(|b| b.check_start())
}

/// A per-work-unit step counter drawing on a [`Budget`].
///
/// Search loops call [`Meter::tick`] once per elementary step and stop
/// (well-formed, partial) when it returns `false`. The step-limit check is
/// exact and purely local — deterministic across thread counts — while
/// deadline/cancellation are polled every [`EXTERNAL_CHECK_PERIOD`] ticks.
/// Once stopped, a meter stays stopped. On drop, the local count is
/// flushed into the budget's diagnostic [`Budget::steps_spent`] counter.
#[derive(Debug)]
pub struct Meter<'b> {
    budget: Option<&'b Budget>,
    local: u64,
    local_match: u64,
    local_canon: u64,
    local_cert_hit: u64,
    stop: Option<StopReason>,
}

impl Meter<'static> {
    /// A meter with no budget: every tick succeeds, nothing is recorded.
    /// Lets governed and ungoverned callers share one code path.
    pub fn unbudgeted() -> Self {
        Meter {
            budget: None,
            local: 0,
            local_match: 0,
            local_canon: 0,
            local_cert_hit: 0,
            stop: None,
        }
    }
}

impl<'b> Meter<'b> {
    /// A meter on an optional budget (`None` = unbudgeted).
    pub fn new(budget: Option<&'b Budget>) -> Meter<'b> {
        Meter {
            budget,
            local: 0,
            local_match: 0,
            local_canon: 0,
            local_cert_hit: 0,
            stop: None,
        }
    }

    /// Record one search step. Returns `false` when the work unit must
    /// stop; the decision is sticky.
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.consume(1)
    }

    /// Record `n` search steps at once (e.g. a bounded VF2 match reports
    /// how many candidate trials it used). Returns `false` when the work
    /// unit must stop; the decision is sticky.
    #[inline]
    pub fn consume(&mut self, n: u64) -> bool {
        let Some(budget) = self.budget else {
            return true;
        };
        if self.stop.is_some() {
            return false;
        }
        let before = self.local;
        self.local = self.local.saturating_add(n);
        if let Some(limit) = budget.max_steps {
            if self.local > limit {
                self.stop = Some(StopReason::StepBudget);
                return false;
            }
        }
        // Poll best-effort external conditions at most once per
        // EXTERNAL_CHECK_PERIOD steps.
        if before / EXTERNAL_CHECK_PERIOD != self.local / EXTERNAL_CHECK_PERIOD {
            if let Some(reason) = budget.check_start() {
                self.stop = Some(reason);
                return false;
            }
        }
        true
    }

    /// Record `n` steps of *isomorphism-matcher* work — identical to
    /// [`Meter::consume`] for budgeting, but the count is additionally
    /// attributed to the budget's [`Budget::match_steps_spent`] diagnostic
    /// so truncation reports can name the dominant phase. Support-counting
    /// loops charge each `exists_in_counted` bill through this.
    #[inline]
    pub fn consume_match(&mut self, n: u64) -> bool {
        if self.budget.is_some() {
            self.local_match = self.local_match.saturating_add(n);
        }
        self.consume(n)
    }

    /// Note one full `min_dfs_code` canonicalization. Pure diagnostics
    /// (attributed to [`Budget::canon_calls`] on drop) — never consumes
    /// budget, so adding the counter changes no truncation point.
    #[inline]
    pub fn note_canon(&mut self) {
        if self.budget.is_some() {
            self.local_canon += 1;
        }
    }

    /// Note one canonicalization avoided by a certificate (cache hit or
    /// certificate-only decision). Pure diagnostics, attributed to
    /// [`Budget::cert_hits`] on drop.
    #[inline]
    pub fn note_cert_hit(&mut self) {
        if self.budget.is_some() {
            self.local_cert_hit += 1;
        }
    }

    /// Steps left in this unit's allowance (`u64::MAX` when unlimited).
    /// Used to hand a sub-search (one VF2 match) a hard cap.
    pub fn remaining_steps(&self) -> u64 {
        match self.budget.and_then(|b| b.max_steps) {
            Some(limit) if self.stop.is_none() => limit.saturating_sub(self.local),
            Some(_) => 0,
            None => u64::MAX,
        }
    }

    /// Why this unit stopped, if it did.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop
    }

    /// Whether this unit was stopped early.
    pub fn truncated(&self) -> bool {
        self.stop.is_some()
    }

    /// This unit's completion status.
    pub fn completion(&self) -> Completion {
        match self.stop {
            None => Completion::Complete,
            Some(reason) => Completion::Truncated(reason),
        }
    }
}

impl Drop for Meter<'_> {
    fn drop(&mut self) {
        if let Some(budget) = self.budget {
            if self.local > 0 {
                budget.spent.fetch_add(self.local, Ordering::Relaxed);
            }
            if self.local_match > 0 {
                budget
                    .match_spent
                    .fetch_add(self.local_match, Ordering::Relaxed);
            }
            if self.local_canon > 0 {
                budget
                    .canon_spent
                    .fetch_add(self.local_canon, Ordering::Relaxed);
            }
            if self.local_cert_hit > 0 {
                budget
                    .cert_hit_spent
                    .fetch_add(self.local_cert_hit, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbudgeted_meter_never_stops() {
        let mut m = Meter::unbudgeted();
        for _ in 0..10_000 {
            assert!(m.tick());
        }
        assert_eq!(m.completion(), Completion::Complete);
        assert_eq!(m.remaining_steps(), u64::MAX);
    }

    #[test]
    fn unlimited_budget_meter_never_stops() {
        let b = Budget::unlimited();
        let mut m = b.meter();
        for _ in 0..10_000 {
            assert!(m.tick());
        }
        drop(m);
        assert_eq!(b.steps_spent(), 10_000);
        assert!(!b.is_governed());
    }

    #[test]
    fn step_budget_is_exact_and_sticky() {
        let b = Budget::unlimited().with_max_steps(3);
        let mut m = b.meter();
        assert!(m.tick());
        assert_eq!(m.remaining_steps(), 2);
        assert!(m.tick());
        assert!(m.tick());
        assert!(!m.tick());
        assert!(!m.tick()); // sticky
        assert_eq!(m.stop_reason(), Some(StopReason::StepBudget));
        assert_eq!(m.remaining_steps(), 0);
        // A fresh meter on the same budget starts a fresh allowance.
        let mut m2 = b.meter();
        assert!(m2.tick());
    }

    #[test]
    fn zero_step_budget_stops_immediately() {
        let b = Budget::unlimited().with_max_steps(0);
        let mut m = b.meter();
        assert!(!m.tick());
        assert_eq!(
            m.completion(),
            Completion::Truncated(StopReason::StepBudget)
        );
    }

    #[test]
    fn match_steps_are_attributed_separately() {
        let b = Budget::unlimited();
        let mut m = b.meter();
        assert!(m.consume(5));
        assert!(m.consume_match(7));
        drop(m);
        assert_eq!(b.steps_spent(), 12);
        assert_eq!(b.match_steps_spent(), 7);
        // consume_match obeys the same limit as consume.
        let b = Budget::unlimited().with_max_steps(3);
        let mut m = b.meter();
        assert!(!m.consume_match(4));
        assert_eq!(m.stop_reason(), Some(StopReason::StepBudget));
        // Unbudgeted meters record nothing, as with plain consume.
        let mut m = Meter::unbudgeted();
        assert!(m.consume_match(100));
    }

    #[test]
    fn canon_counters_are_attributed_and_budget_neutral() {
        let b = Budget::unlimited().with_max_steps(2);
        let mut m = b.meter();
        // Notes never consume budget: many notes, still two ticks left.
        for _ in 0..100 {
            m.note_canon();
            m.note_cert_hit();
        }
        assert!(m.tick());
        assert!(m.tick());
        assert!(!m.tick());
        drop(m);
        assert_eq!(b.canon_calls(), 100);
        assert_eq!(b.cert_hits(), 100);
        // Unbudgeted meters record nothing.
        let mut m = Meter::unbudgeted();
        m.note_canon();
        m.note_cert_hit();
        assert!(m.tick());
    }

    #[test]
    fn bulk_consume_matches_ticks() {
        let b = Budget::unlimited().with_max_steps(10);
        let mut m = b.meter();
        assert!(m.consume(10));
        assert!(!m.consume(1));
        let mut m2 = b.meter();
        assert!(!m2.consume(11));
    }

    #[test]
    fn expired_deadline_is_seen_at_unit_start_and_at_poll_period() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert!(b.is_governed());
        assert_eq!(b.check_start(), Some(StopReason::Deadline));
        let mut m = b.meter();
        let mut stopped_at = None;
        for i in 0..=EXTERNAL_CHECK_PERIOD {
            if !m.tick() {
                stopped_at = Some(i);
                break;
            }
        }
        // The poll fires within one EXTERNAL_CHECK_PERIOD of ticks.
        assert!(stopped_at.is_some());
        assert_eq!(m.stop_reason(), Some(StopReason::Deadline));
    }

    #[test]
    fn cancel_token_is_shared_and_observed() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        assert_eq!(b.check_start(), None);
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(b.check_start(), Some(StopReason::Cancelled));
        let mut m = b.meter();
        let mut stopped = false;
        for _ in 0..=EXTERNAL_CHECK_PERIOD {
            if !m.tick() {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
        assert_eq!(m.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn completion_merge_keeps_first_truncation() {
        use Completion::*;
        use StopReason::*;
        assert_eq!(Complete.merge(Complete), Complete);
        assert_eq!(Complete.merge(Truncated(Deadline)), Truncated(Deadline));
        assert_eq!(
            Truncated(StepBudget).merge(Truncated(Deadline)),
            Truncated(StepBudget)
        );
        assert_eq!(Truncated(PatternCap).merge(Complete), Truncated(PatternCap));
    }

    #[test]
    fn outcome_constructors_and_map() {
        let o = Outcome::complete(3).map(|x| x * 2);
        assert_eq!(o.result, 6);
        assert!(o.completion.is_complete());
        let t = Outcome::truncated(vec![1], StopReason::StepBudget);
        assert_eq!(t.completion, Completion::Truncated(StopReason::StepBudget));
        assert!(!StopReason::Deadline.is_deterministic());
        assert!(StopReason::StepBudget.is_deterministic());
    }

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(Completion::Complete.to_string(), "complete");
        assert_eq!(
            Completion::Truncated(StopReason::Deadline).to_string(),
            "truncated (deadline exceeded)"
        );
        assert_eq!(
            Completion::Truncated(StopReason::StepBudget).to_string(),
            "truncated (step budget exhausted)"
        );
    }
}
