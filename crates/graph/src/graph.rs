//! The core labeled undirected graph type.
//!
//! Graphs in GraphSig's setting are small (a typical molecule has ~25
//! vertices) but number in the tens of thousands per database, and miners
//! visit them in hot loops. The representation is therefore flat and
//! cache-friendly: node labels in one `Vec`, edges in one `Vec`, and a
//! per-node adjacency list of `(neighbor, edge label, edge id)` triples.

use crate::labels::{EdgeLabel, NodeLabel};

/// Index of a node within a single [`Graph`].
pub type NodeId = u32;

/// An undirected labeled edge. `u < v` is not required, but each edge is
/// stored exactly once; adjacency lists carry both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Bond-type label.
    pub label: EdgeLabel,
}

/// One adjacency entry: a half-edge leaving a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adjacent {
    /// Neighbor node.
    pub to: NodeId,
    /// Label of the connecting edge.
    pub label: EdgeLabel,
    /// Index into [`Graph::edges`].
    pub edge: u32,
}

/// An immutable labeled undirected graph.
///
/// Construct via [`GraphBuilder`]. Node ids are dense `0..node_count()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    node_labels: Vec<NodeLabel>,
    adj: Vec<Vec<Adjacent>>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Label of node `n`.
    ///
    /// # Panics
    /// Panics if `n` is out of range.
    #[inline]
    pub fn node_label(&self, n: NodeId) -> NodeLabel {
        self.node_labels[n as usize]
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn node_labels(&self) -> &[NodeLabel] {
        &self.node_labels
    }

    /// All edges, each reported once.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Adjacency list of node `n`.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[Adjacent] {
        &self.adj[n as usize]
    }

    /// Degree of node `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n as usize].len()
    }

    /// Iterator over node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Approximate heap bytes held by this graph: label and edge arrays
    /// plus one adjacency `Vec` per node. An estimate for admission
    /// control, not an allocator audit — headers and rounding are ignored.
    pub fn approx_resident_bytes(&self) -> u64 {
        let labels = self.node_labels.len() * std::mem::size_of::<NodeLabel>();
        let edges = self.edges.len() * std::mem::size_of::<Edge>();
        let adj: usize = self
            .adj
            .iter()
            .map(|a| {
                std::mem::size_of::<Vec<Adjacent>>() + a.len() * std::mem::size_of::<Adjacent>()
            })
            .sum();
        (labels + edges + adj) as u64
    }

    /// Label of the edge between `u` and `v`, if one exists.
    pub fn edge_label_between(&self, u: NodeId, v: NodeId) -> Option<EdgeLabel> {
        self.adj[u as usize]
            .iter()
            .find(|a| a.to == v)
            .map(|a| a.label)
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for a in self.neighbors(n) {
                if !seen[a.to as usize] {
                    seen[a.to as usize] = true;
                    count += 1;
                    stack.push(a.to);
                }
            }
        }
        count == self.node_count()
    }

    /// Multiset of node labels, sorted ascending. Useful as a cheap
    /// isomorphism-rejection invariant.
    pub fn sorted_node_labels(&self) -> Vec<NodeLabel> {
        let mut v = self.node_labels.clone();
        v.sort_unstable();
        v
    }

    /// Multiset of `(min endpoint label, edge label, max endpoint label)`
    /// triples, sorted. A stronger cheap isomorphism-rejection invariant.
    pub fn sorted_edge_signature(&self) -> Vec<(NodeLabel, EdgeLabel, NodeLabel)> {
        let mut v: Vec<_> = self
            .edges
            .iter()
            .map(|e| {
                let (a, b) = (self.node_label(e.u), self.node_label(e.v));
                (a.min(b), e.label, a.max(b))
            })
            .collect();
        v.sort_unstable();
        v
    }
}

/// Incremental builder for [`Graph`].
///
/// # Example
///
/// ```
/// use graphsig_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let c = b.add_node(0);
/// let o = b.add_node(1);
/// b.add_edge(c, o, 2);
/// let g = b.build();
/// assert_eq!(g.degree(c), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    node_labels: Vec<NodeLabel>,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            node_labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a node with the given label; returns its id.
    pub fn add_node(&mut self, label: NodeLabel) -> NodeId {
        let id = NodeId::try_from(self.node_labels.len()).expect("too many nodes");
        self.node_labels.push(label);
        id
    }

    /// Add an undirected edge. Self-loops and duplicate edges are rejected.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or a self-loop. Duplicate edges are
    /// detected at [`build`](Self::build) time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, label: EdgeLabel) {
        assert!(
            (u as usize) < self.node_labels.len() && (v as usize) < self.node_labels.len(),
            "edge endpoint out of range"
        );
        assert_ne!(u, v, "self-loops are not supported");
        self.edges.push(Edge { u, v, label });
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Finalize into an immutable [`Graph`].
    ///
    /// # Panics
    /// Panics if the same unordered node pair was added twice (chemical
    /// graphs are simple graphs).
    pub fn build(self) -> Graph {
        let mut adj: Vec<Vec<Adjacent>> = vec![Vec::new(); self.node_labels.len()];
        for (i, e) in self.edges.iter().enumerate() {
            let dup = adj[e.u as usize].iter().any(|a| a.to == e.v);
            assert!(!dup, "duplicate edge between {} and {}", e.u, e.v);
            adj[e.u as usize].push(Adjacent {
                to: e.v,
                label: e.label,
                edge: i as u32,
            });
            adj[e.v as usize].push(Adjacent {
                to: e.u,
                label: e.label,
                edge: i as u32,
            });
        }
        Graph {
            node_labels: self.node_labels,
            adj,
            edges: self.edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path a-b-c with distinct labels.
    fn path3() -> Graph {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(1);
        let n2 = b.add_node(2);
        b.add_edge(n0, n1, 5);
        b.add_edge(n1, n2, 6);
        b.build()
    }

    #[test]
    fn basic_structure() {
        let g = path3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_label(1), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.edge_label_between(0, 1), Some(5));
        assert_eq!(g.edge_label_between(1, 0), Some(5));
        assert_eq!(g.edge_label_between(0, 2), None);
    }

    #[test]
    fn adjacency_is_bidirectional_with_shared_edge_id() {
        let g = path3();
        let fwd = g.neighbors(0)[0];
        let back = g.neighbors(1).iter().find(|a| a.to == 0).unwrap();
        assert_eq!(fwd.edge, back.edge);
        assert_eq!(g.edges()[fwd.edge as usize].label, 5);
    }

    #[test]
    fn connectivity() {
        let g = path3();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        assert!(!b.build().is_connected());
        assert!(GraphBuilder::new().build().is_connected());
    }

    #[test]
    fn invariants_sorted() {
        let g = path3();
        assert_eq!(g.sorted_node_labels(), vec![0, 1, 2]);
        assert_eq!(g.sorted_edge_signature(), vec![(0, 5, 1), (1, 6, 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let n = b.add_node(0);
        b.add_edge(n, n, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_parallel_edges() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        let v = b.add_node(1);
        b.add_edge(u, v, 0);
        b.add_edge(v, u, 1);
        b.build();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_dangling_edge() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        b.add_edge(u, 3, 0);
    }
}
