//! Small structural algorithms over labeled graphs.
//!
//! Used by the dataset statistics (Table V-style reporting), the CLI's
//! `stats` command, and tests that need structural ground truth.

use crate::graph::{Graph, NodeId};

/// Connected components: returns `component[node] = component id`, ids
/// dense in discovery order, plus the number of components.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for start in 0..n as NodeId {
        if comp[start as usize] != usize::MAX {
            continue;
        }
        comp[start as usize] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for a in g.neighbors(v) {
                if comp[a.to as usize] == usize::MAX {
                    comp[a.to as usize] = count;
                    stack.push(a.to);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Eccentricity of a node: the longest shortest-path distance from it, or
/// `None` if the graph is disconnected from the node's perspective.
pub fn eccentricity(g: &Graph, source: NodeId) -> Option<usize> {
    let n = g.node_count();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    let mut seen = 1;
    let mut max = 0;
    while let Some(v) = queue.pop_front() {
        for a in g.neighbors(v) {
            if dist[a.to as usize] == usize::MAX {
                dist[a.to as usize] = dist[v as usize] + 1;
                max = max.max(dist[a.to as usize]);
                seen += 1;
                queue.push_back(a.to);
            }
        }
    }
    (seen == n).then_some(max)
}

/// Diameter (longest shortest path) of a connected graph; `None` when
/// disconnected or empty. O(V·E) — fine for molecule-sized graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 {
        return None;
    }
    let mut best = 0;
    for v in g.nodes() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// Cycle rank (circuit rank): `|E| - |V| + components` — the number of
/// independent cycles. Zero for forests; molecules report their ring count
/// here.
pub fn cycle_rank(g: &Graph) -> usize {
    let (_, c) = connected_components(g);
    g.edge_count() + c - g.node_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..n).map(|_| b.add_node(0)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 0);
        }
        b.build()
    }

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..n).map(|_| b.add_node(0)).collect();
        for i in 0..n {
            b.add_edge(ids[i], ids[(i + 1) % n], 0);
        }
        b.build()
    }

    #[test]
    fn components_of_disjoint_union() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(0);
        let a1 = b.add_node(0);
        b.add_edge(a0, a1, 0);
        b.add_node(1); // isolated
        let g = b.build();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn diameter_of_paths_and_cycles() {
        assert_eq!(diameter(&path(1)), Some(0));
        assert_eq!(diameter(&path(5)), Some(4));
        assert_eq!(diameter(&cycle(6)), Some(3));
        assert_eq!(diameter(&cycle(7)), Some(3));
    }

    #[test]
    fn diameter_of_disconnected_is_none() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        assert_eq!(diameter(&b.build()), None);
        assert_eq!(diameter(&GraphBuilder::new().build()), None);
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = path(5);
        assert_eq!(eccentricity(&g, 2), Some(2)); // center
        assert_eq!(eccentricity(&g, 0), Some(4)); // leaf
    }

    #[test]
    fn cycle_rank_counts_rings() {
        assert_eq!(cycle_rank(&path(7)), 0);
        assert_eq!(cycle_rank(&cycle(6)), 1);
        // Two fused rings: benzene + one chord.
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..6).map(|_| b.add_node(0)).collect();
        for i in 0..6 {
            b.add_edge(ids[i], ids[(i + 1) % 6], 0);
        }
        b.add_edge(ids[0], ids[3], 0);
        assert_eq!(cycle_rank(&b.build()), 2);
    }
}
