//! Isomorphism-invariant certificates via 1-WL partition refinement.
//!
//! `min_dfs_code` canonicalization is the FSG baseline's dominant cost once
//! matching is cheap (DESIGN §5d/§5e): every candidate — and, in the
//! downward-closure check, every (k−1)-edge subgraph of every candidate —
//! pays for a full restricted self-projection. Almost all of those calls
//! answer a much weaker question than "what is the canonical code": they
//! ask "have I seen this structure before?". This module answers that
//! question with a *certificate*: iterative label/degree partition
//! refinement (one-dimensional Weisfeiler–Leman color refinement) run to a
//! fixed point and hashed into a single `u64`.
//!
//! Properties the rest of the workspace relies on:
//!
//! * **Isomorphism-invariant.** Colors are computed from node labels and
//!   the multiset of `(edge label, neighbor color)` pairs only — never from
//!   node ids — so isomorphic graphs get identical certificates and
//!   identical color multisets. Consequently *different* certificates prove
//!   non-isomorphism, which is the direction the miners exploit.
//! * **One-sided.** Equal certificates do *not* prove isomorphism (1-WL
//!   cannot distinguish certain regular graphs, and the hash itself could
//!   collide). Every consumer treats certificate equality as "possibly
//!   isomorphic — verify exactly" (via [`crate::are_isomorphic`] or a full
//!   `min_dfs_code`), never as a final answer.
//! * **Deterministic.** Hashing is a fixed splitmix64-style mix — no
//!   `RandomState`, no per-process seeds — so certificates are stable
//!   across runs, threads, and platforms, and safe to persist in bench
//!   JSON or compare across processes.
//!
//! The per-node stable colors are exposed too: within one graph, two nodes
//! with different colors provably lie in different automorphism orbits,
//! which lets the min-code search discard duplicate starting embeddings
//! ([`pinned_automorphism`] supplies the exact verification step).

use crate::control::Meter;
use crate::graph::{Graph, NodeId};

/// A deterministic isomorphism-invariant hash of a labeled graph.
///
/// Equal certificates mean *possibly* isomorphic; different certificates
/// mean *provably not* isomorphic. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Certificate(pub u64);

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The result of running color refinement to its fixed point.
#[derive(Debug, Clone)]
pub struct Refinement {
    /// Stable color per node (indexed by node id). Equal colors ⇒ possibly
    /// same orbit; different colors ⇒ provably different orbits.
    pub colors: Vec<u64>,
    /// Number of refinement rounds until the partition stabilized.
    pub rounds: usize,
    /// The graph's certificate, derived from the stable colors.
    pub certificate: Certificate,
}

/// splitmix64 finalizer: the deterministic scrambling primitive all
/// certificate hashing is built from.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive combine; callers sort multisets before folding.
#[inline]
fn fold(h: u64, x: u64) -> u64 {
    mix(h.rotate_left(7) ^ x)
}

fn distinct_count(colors: &[u64], scratch: &mut Vec<u64>) -> usize {
    scratch.clear();
    scratch.extend_from_slice(colors);
    scratch.sort_unstable();
    scratch.dedup();
    scratch.len()
}

/// Run 1-WL color refinement to a fixed point, charging the meter one step
/// up front plus one per refinement round. Returns `None` iff the meter's
/// budget ran out mid-refinement (the certificate would be truncated at a
/// nondeterministic round count, so no partial answer is returned).
pub fn refine_metered(g: &Graph, meter: &mut Meter<'_>) -> Option<Refinement> {
    if !meter.tick() {
        return None;
    }
    let n = g.node_count();
    let mut colors: Vec<u64> = (0..n as NodeId)
        .map(|v| mix(0xC010_4EF1_4E5E_ED00 ^ u64::from(g.node_label(v))))
        .collect();
    let mut scratch = Vec::with_capacity(n);
    let mut distinct = distinct_count(&colors, &mut scratch);
    let mut rounds = 0usize;

    // Each round either splits at least one color class or stabilizes, so
    // at most n-1 productive rounds are possible (plus the round that
    // observes stability).
    let mut next = vec![0u64; n];
    let mut sig = Vec::new();
    while distinct < n {
        if !meter.tick() {
            return None;
        }
        rounds += 1;
        for v in 0..n as NodeId {
            sig.clear();
            for a in g.neighbors(v) {
                sig.push(mix(
                    u64::from(a.label).rotate_left(32) ^ colors[a.to as usize]
                ));
            }
            sig.sort_unstable();
            let mut h = mix(colors[v as usize]);
            for &s in &sig {
                h = fold(h, s);
            }
            next[v as usize] = h;
        }
        std::mem::swap(&mut colors, &mut next);
        let new_distinct = distinct_count(&colors, &mut scratch);
        if new_distinct == distinct {
            break;
        }
        distinct = new_distinct;
    }

    // Certificate: counts plus the sorted multiset of stable colors.
    let mut sorted = colors.clone();
    sorted.sort_unstable();
    let mut cert = fold(mix(n as u64), g.edge_count() as u64);
    for &c in &sorted {
        cert = fold(cert, c);
    }
    Some(Refinement {
        colors,
        rounds,
        certificate: Certificate(cert),
    })
}

/// [`refine_metered`] without a budget.
pub fn refine(g: &Graph) -> Refinement {
    refine_metered(g, &mut Meter::unbudgeted()).expect("unbudgeted refinement cannot stop")
}

/// The certificate of `g` (unbudgeted convenience form).
pub fn certificate(g: &Graph) -> Certificate {
    refine(g).certificate
}

/// Exact automorphism search with pinned endpoints: does `g` admit an
/// automorphism mapping `pins[i].0 → pins[i].1` for every pin?
///
/// Used by the min-code search to discard a starting embedding that is the
/// image of an already-kept one under some automorphism. The search is
/// exact but *bounded*: after `node_budget` backtracking assignments it
/// gives up and returns `false`, which callers must treat as "unknown —
/// keep both embeddings" (always sound, merely less pruning).
///
/// `colors` must be the stable WL colors of `g` (from [`refine`]); they
/// prune the candidate sets. Requires a connected graph reachable from the
/// pinned nodes (every caller passes endpoints of an edge of a connected
/// graph).
pub fn pinned_automorphism(
    g: &Graph,
    colors: &[u64],
    pins: &[(NodeId, NodeId)],
    node_budget: usize,
) -> bool {
    let n = g.node_count();
    debug_assert_eq!(colors.len(), n);
    let mut map: Vec<NodeId> = vec![NodeId::MAX; n];
    let mut used = vec![false; n];

    // A candidate image w for node v must agree on label, WL color, and
    // degree, and every already-mapped neighbor of v must map to a
    // neighbor of w joined by the same edge label. Injectivity plus equal
    // edge counts then make a completed mapping a full automorphism.
    let compatible = |map: &[NodeId], v: NodeId, w: NodeId| -> bool {
        if g.node_label(v) != g.node_label(w)
            || colors[v as usize] != colors[w as usize]
            || g.degree(v) != g.degree(w)
        {
            return false;
        }
        for a in g.neighbors(v) {
            let mu = map[a.to as usize];
            if mu != NodeId::MAX && g.edge_label_between(w, mu) != Some(a.label) {
                return false;
            }
        }
        true
    };

    for &(v, w) in pins {
        if !compatible(&map, v, w) || used[w as usize] {
            return false;
        }
        map[v as usize] = w;
        used[w as usize] = true;
    }

    // Assignment order: BFS from the pinned nodes so each new node has a
    // mapped neighbor constraining its candidates.
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue: std::collections::VecDeque<NodeId> = pins.iter().map(|&(v, _)| v).collect();
    for &(v, _) in pins {
        seen[v as usize] = true;
    }
    while let Some(v) = queue.pop_front() {
        for a in g.neighbors(v) {
            if !seen[a.to as usize] {
                seen[a.to as usize] = true;
                order.push(a.to);
                queue.push_back(a.to);
            }
        }
    }
    if order.len() + pins.len() < n {
        // Unreached nodes (disconnected from the pins): refuse rather than
        // guess. Callers only pass connected graphs.
        return false;
    }

    struct Search<'a> {
        g: &'a Graph,
        order: &'a [NodeId],
        budget: usize,
    }
    impl Search<'_> {
        fn go(
            &mut self,
            depth: usize,
            map: &mut [NodeId],
            used: &mut [bool],
            compatible: &dyn Fn(&[NodeId], NodeId, NodeId) -> bool,
        ) -> bool {
            if depth == self.order.len() {
                return true;
            }
            let v = self.order[depth];
            for w in self.g.nodes() {
                if used[w as usize] || !compatible(map, v, w) {
                    continue;
                }
                if self.budget == 0 {
                    return false;
                }
                self.budget -= 1;
                map[v as usize] = w;
                used[w as usize] = true;
                if self.go(depth + 1, map, used, compatible) {
                    return true;
                }
                map[v as usize] = NodeId::MAX;
                used[w as usize] = false;
            }
            false
        }
    }
    Search {
        g,
        order: &order,
        budget: node_budget,
    }
    .go(0, &mut map, &mut used, &compatible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::Budget;

    fn cycle(labels: &[u16], el: u16) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = labels.iter().map(|&l| b.add_node(l)).collect();
        for i in 0..n.len() {
            b.add_edge(n[i], n[(i + 1) % n.len()], el);
        }
        b.build()
    }

    fn path(labels: &[u16], elabels: &[u16]) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = labels.iter().map(|&l| b.add_node(l)).collect();
        for (i, &el) in elabels.iter().enumerate() {
            b.add_edge(n[i], n[i + 1], el);
        }
        b.build()
    }

    #[test]
    fn isomorphic_builds_share_certificate() {
        let a = cycle(&[3, 1, 2], 9);
        let b = cycle(&[1, 2, 3], 9);
        let c = cycle(&[2, 3, 1], 9);
        assert_eq!(certificate(&a), certificate(&b));
        assert_eq!(certificate(&a), certificate(&c));
    }

    #[test]
    fn structural_differences_change_certificate() {
        assert_ne!(
            certificate(&cycle(&[0, 0, 0], 1)),
            certificate(&path(&[0, 0, 0], &[1, 1]))
        );
        assert_ne!(
            certificate(&path(&[0, 0, 0], &[1, 2])),
            certificate(&path(&[0, 0, 0], &[1, 1]))
        );
        assert_ne!(
            certificate(&path(&[0, 1, 0], &[1, 1])),
            certificate(&path(&[0, 0, 1], &[1, 1]))
        );
    }

    #[test]
    fn colors_distinguish_orbits_on_labeled_path() {
        // Path 0-1-2 with distinct end labels: all three orbits singleton.
        let g = path(&[5, 1, 7], &[2, 2]);
        let r = refine(&g);
        assert_eq!(
            r.colors
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
        // Palindromic path: the two ends share an orbit, middle is alone.
        let g = path(&[5, 1, 5], &[2, 2]);
        let r = refine(&g);
        assert_eq!(r.colors[0], r.colors[2]);
        assert_ne!(r.colors[0], r.colors[1]);
    }

    #[test]
    fn refinement_rounds_are_metered() {
        let g = path(&[0, 0, 0, 0, 0], &[1, 1, 1, 1]);
        let budget = Budget::unlimited();
        let mut meter = budget.meter();
        let r = refine_metered(&g, &mut meter).unwrap();
        drop(meter);
        // One upfront step plus one per round.
        assert_eq!(budget.steps_spent(), 1 + r.rounds as u64);
        assert!(r.rounds >= 1);

        // An exhausted budget stops refinement instead of returning a
        // partial certificate.
        let tight = Budget::unlimited().with_max_steps(1);
        let mut meter = tight.meter();
        assert!(refine_metered(&g, &mut meter).is_none());
        assert!(meter.truncated());
    }

    #[test]
    fn empty_and_single_node_graphs_have_certificates() {
        let empty = GraphBuilder::new().build();
        let mut b = GraphBuilder::new();
        b.add_node(4);
        let single = b.build();
        assert_ne!(certificate(&empty), certificate(&single));
        let mut b2 = GraphBuilder::new();
        b2.add_node(5);
        assert_ne!(certificate(&single), certificate(&b2.build()));
    }

    #[test]
    fn pinned_automorphism_on_symmetric_cycle() {
        // Unlabeled square: rotation maps any directed edge onto any other.
        let g = cycle(&[0, 0, 0, 0], 1);
        let colors = refine(&g).colors;
        assert!(pinned_automorphism(&g, &colors, &[(0, 1), (1, 2)], 1000));
        assert!(pinned_automorphism(&g, &colors, &[(0, 2), (1, 3)], 1000));
        // Labeled square 0-1-0-1: node 0 cannot map onto node 1.
        let g = cycle(&[0, 1, 0, 1], 1);
        let colors = refine(&g).colors;
        assert!(!pinned_automorphism(&g, &colors, &[(0, 1)], 1000));
        assert!(pinned_automorphism(&g, &colors, &[(0, 2), (1, 3)], 1000));
    }

    #[test]
    fn pinned_automorphism_rejects_on_asymmetric_path() {
        let g = path(&[0, 0, 1], &[1, 1]);
        let colors = refine(&g).colors;
        // Reversal would need the two '0' ends to swap, but one is adjacent
        // to the '1' end — no automorphism moves node 0 to node 1.
        assert!(!pinned_automorphism(&g, &colors, &[(0, 1)], 1000));
        // Identity always exists.
        assert!(pinned_automorphism(&g, &colors, &[(0, 0), (1, 1)], 1000));
    }

    #[test]
    fn zero_budget_gives_up_conservatively() {
        let g = cycle(&[0; 6], 1);
        let colors = refine(&g).colors;
        assert!(!pinned_automorphism(&g, &colors, &[(0, 1), (1, 2)], 0));
    }
}
