//! Compiled bitset target representation for the fast matching engine.
//!
//! Transaction graphs in GraphSig's setting are small (~25 vertices), so a
//! whole adjacency row fits in one or two `u64` words. [`CompiledGraph`]
//! precomputes, per target graph:
//!
//! * **label buckets** — for each distinct node label, the bitset of nodes
//!   carrying it (candidate seed sets for pattern roots);
//! * **bitset adjacency rows** — for each `(node, edge label)` pair, the
//!   bitset of neighbors reached over an edge with that label (candidate
//!   filters for back edges).
//!
//! The fast engine in [`crate::iso`] intersects these rows to propagate
//! candidate sets one AND at a time instead of scanning adjacency lists and
//! re-checking labels per candidate. Compilation is linear in the graph and
//! done once; [`CompiledDb`] caches one compiled form per database graph so
//! repeated support counts (FSG levels, threshold sweeps, warm server
//! requests) never re-derive it — see
//! [`LabelPairIndex::compiled_db`](crate::index::LabelPairIndex::compiled_db).

use crate::database::GraphDb;
use crate::graph::{Graph, NodeId};
use crate::labels::{EdgeLabel, NodeLabel};

/// Number of `u64` words needed for a bitset over `n` nodes.
#[inline]
fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// A target graph compiled to label-bucketed bitsets.
///
/// Rows are dense `u64` words; all per-graph bitsets share the same width
/// (`word_count()` words). Lookup keys (node labels, edge labels) resolve
/// through sorted distinct-label tables, so labels absent from the target
/// yield `None` and the search can reject without touching any bits.
#[derive(Debug, Clone, Default)]
pub struct CompiledGraph {
    /// Node count of the source graph.
    n: usize,
    /// Edge count of the source graph (for the cheap size fast-reject).
    edges: usize,
    /// Bitset width in `u64` words.
    words: usize,
    /// Degree of each node, by node id.
    degrees: Vec<u32>,
    /// Sorted distinct node labels present in the graph.
    nlabels: Vec<NodeLabel>,
    /// One bitset row per entry of `nlabels`: nodes carrying that label.
    buckets: Vec<u64>,
    /// Sorted distinct edge labels present in the graph.
    elabels: Vec<EdgeLabel>,
    /// `n * elabels.len()` bitset rows: `adj[(v * |elabels| + li) * words ..]`
    /// is the set of neighbors of `v` over edges labeled `elabels[li]`.
    adj: Vec<u64>,
}

impl CompiledGraph {
    /// Compile `g` into a fresh compiled form.
    pub fn compile(g: &Graph) -> Self {
        let mut c = Self::default();
        c.compile_from(g);
        c
    }

    /// Recompile in place, reusing the existing buffers. This is the
    /// scratch-reuse path `MultiMatcher` uses when matching against plain
    /// [`Graph`] targets.
    pub fn compile_from(&mut self, g: &Graph) {
        let n = g.node_count();
        let words = words_for(n);
        self.n = n;
        self.edges = g.edge_count();
        self.words = words;

        self.degrees.clear();
        self.degrees.extend(g.nodes().map(|v| g.degree(v) as u32));

        self.nlabels.clear();
        self.nlabels.extend_from_slice(g.node_labels());
        self.nlabels.sort_unstable();
        self.nlabels.dedup();
        self.buckets.clear();
        self.buckets.resize(self.nlabels.len() * words, 0);
        for (v, &l) in g.node_labels().iter().enumerate() {
            let li = self
                .nlabels
                .binary_search(&l)
                .expect("label interned above");
            self.buckets[li * words + v / 64] |= 1u64 << (v % 64);
        }

        self.elabels.clear();
        self.elabels.extend(g.edges().iter().map(|e| e.label));
        self.elabels.sort_unstable();
        self.elabels.dedup();
        let el = self.elabels.len();
        self.adj.clear();
        self.adj.resize(n * el * words, 0);
        for e in g.edges() {
            let li = self
                .elabels
                .binary_search(&e.label)
                .expect("label interned above");
            let (u, v) = (e.u as usize, e.v as usize);
            self.adj[(u * el + li) * words + v / 64] |= 1u64 << (v % 64);
            self.adj[(v * el + li) * words + u / 64] |= 1u64 << (u % 64);
        }
    }

    /// Node count of the source graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Edge count of the source graph.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Bitset width in `u64` words.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> u32 {
        self.degrees[v as usize]
    }

    /// Bitset of nodes labeled `l`, or `None` when the label is absent.
    #[inline]
    pub fn bucket(&self, l: NodeLabel) -> Option<&[u64]> {
        let li = self.nlabels.binary_search(&l).ok()?;
        Some(&self.buckets[li * self.words..(li + 1) * self.words])
    }

    /// Bitset of neighbors of `v` over edges labeled `l`, or `None` when no
    /// edge in the graph carries that label.
    #[inline]
    pub fn adj_row(&self, v: NodeId, l: EdgeLabel) -> Option<&[u64]> {
        let li = self.elabels.binary_search(&l).ok()?;
        let start = ((v as usize) * self.elabels.len() + li) * self.words;
        Some(&self.adj[start..start + self.words])
    }
}

/// All graphs of a database in compiled form, indexed by graph id.
///
/// Built once per database and shared (via
/// [`LabelPairIndex::compiled_db`](crate::index::LabelPairIndex::compiled_db))
/// across every support-counting pass that uses the fast matcher.
#[derive(Debug, Clone, Default)]
pub struct CompiledDb {
    graphs: Vec<CompiledGraph>,
}

impl CompiledDb {
    /// Compile every graph of `db`.
    pub fn build(db: &GraphDb) -> Self {
        Self {
            graphs: db.graphs().iter().map(CompiledGraph::compile).collect(),
        }
    }

    /// The compiled form of graph `gid`.
    #[inline]
    pub fn graph(&self, gid: usize) -> &CompiledGraph {
        &self.graphs[gid]
    }

    /// Number of compiled graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Approximate heap bytes held by the compiled form (bitset rows,
    /// degree/label arrays). Estimate for admission control.
    pub fn approx_resident_bytes(&self) -> u64 {
        self.graphs
            .iter()
            .map(|g| {
                std::mem::size_of::<CompiledGraph>()
                    + g.degrees.len() * 4
                    + g.nlabels.len() * std::mem::size_of::<NodeLabel>()
                    + g.buckets.len() * 8
                    + g.elabels.len() * std::mem::size_of::<EdgeLabel>()
                    + g.adj.len() * 8
            })
            .sum::<usize>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn sample() -> Graph {
        // 0(C) -s- 1(C) -d- 2(O), plus 0 -s- 2.
        let mut b = GraphBuilder::new();
        let c0 = b.add_node(0);
        let c1 = b.add_node(0);
        let o2 = b.add_node(1);
        b.add_edge(c0, c1, 5);
        b.add_edge(c1, o2, 6);
        b.add_edge(c0, o2, 5);
        b.build()
    }

    #[test]
    fn buckets_and_rows() {
        let g = sample();
        let c = CompiledGraph::compile(&g);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.edge_count(), 3);
        assert_eq!(c.word_count(), 1);
        assert_eq!(c.bucket(0), Some(&[0b011u64][..])); // nodes 0, 1
        assert_eq!(c.bucket(1), Some(&[0b100u64][..])); // node 2
        assert_eq!(c.bucket(9), None);
        // Node 0 reaches 1 and 2 over label-5 edges, nothing over label 6.
        assert_eq!(c.adj_row(0, 5), Some(&[0b110u64][..]));
        assert_eq!(c.adj_row(0, 6), Some(&[0u64][..]));
        assert_eq!(c.adj_row(1, 6), Some(&[0b100u64][..]));
        assert_eq!(c.adj_row(0, 7), None);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(1), 2);
    }

    #[test]
    fn recompile_reuses_buffers_and_matches_fresh() {
        let g = sample();
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..70).map(|_| b.add_node(3)).collect();
        for i in 0..69 {
            b.add_edge(n[i], n[i + 1], 2);
        }
        let big = b.build();

        let mut c = CompiledGraph::compile(&big);
        assert_eq!(c.word_count(), 2);
        assert_eq!(
            c.bucket(3)
                .unwrap()
                .iter()
                .map(|w| w.count_ones())
                .sum::<u32>(),
            70
        );
        c.compile_from(&g);
        let fresh = CompiledGraph::compile(&g);
        assert_eq!(format!("{c:?}"), format!("{fresh:?}"));
    }

    #[test]
    fn empty_graph_compiles() {
        let g = GraphBuilder::new().build();
        let c = CompiledGraph::compile(&g);
        assert_eq!(c.node_count(), 0);
        assert_eq!(c.word_count(), 0);
        assert_eq!(c.bucket(0), None);
    }
}
