//! Graph databases: a collection of transactions plus shared labels.

use std::collections::HashMap;

use crate::graph::Graph;
use crate::labels::{EdgeLabel, LabelTable, NodeLabel};

/// A database of labeled graphs sharing one [`LabelTable`].
///
/// This is the `D = {G_1, ..., G_n}` of Definition 1 in the paper. Graph ids
/// are positions in the vector.
#[derive(Debug, Clone, Default)]
pub struct GraphDb {
    graphs: Vec<Graph>,
    labels: LabelTable,
}

/// Summary statistics, as reported for the paper's datasets
/// ("43,905 molecules ... 25.4 atoms and 27.3 bonds on average,
/// 58 distinct atoms").
#[derive(Debug, Clone, PartialEq)]
pub struct DbStats {
    /// Number of graphs.
    pub graph_count: usize,
    /// Total vertices across all graphs.
    pub total_nodes: usize,
    /// Total edges across all graphs.
    pub total_edges: usize,
    /// Mean vertices per graph.
    pub avg_nodes: f64,
    /// Mean edges per graph.
    pub avg_edges: f64,
    /// Number of distinct node labels actually used.
    pub distinct_node_labels: usize,
    /// Number of distinct edge labels actually used.
    pub distinct_edge_labels: usize,
}

impl GraphDb {
    /// Empty database with a fresh label table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from parts (e.g. after parsing or generation).
    pub fn from_parts(graphs: Vec<Graph>, labels: LabelTable) -> Self {
        Self { graphs, labels }
    }

    /// Append a graph; returns its id.
    pub fn push(&mut self, g: Graph) -> usize {
        self.graphs.push(g);
        self.graphs.len() - 1
    }

    /// The graphs, id-ordered.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// Graph by id.
    pub fn graph(&self, id: usize) -> &Graph {
        &self.graphs[id]
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the database has no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Shared label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Mutable label table (for incremental construction).
    pub fn labels_mut(&mut self) -> &mut LabelTable {
        &mut self.labels
    }

    /// A new database containing clones of the graphs at `ids`, sharing this
    /// database's label table. Used to subsample datasets (Fig. 11's
    /// size-scaling experiment draws random subsets of AIDS).
    pub fn subset(&self, ids: &[usize]) -> GraphDb {
        GraphDb {
            graphs: ids.iter().map(|&i| self.graphs[i].clone()).collect(),
            labels: self.labels.clone(),
        }
    }

    /// Append every graph of `other`, remapping its labels *by name* into
    /// this database's table (interning names first-seen, in graph order —
    /// the same order parsing the concatenated transaction files would
    /// produce). Labels `other`'s table has no name for are mapped through
    /// their decimal rendering, mirroring [`crate::io::write_transactions`].
    ///
    /// This is the incremental-ingestion primitive: absorbing a second
    /// store or text batch into a resident dataset yields a database
    /// indistinguishable from loading the concatenation in one shot.
    pub fn absorb(&mut self, other: &GraphDb) {
        use crate::graph::GraphBuilder;
        let mut node_map: HashMap<NodeLabel, NodeLabel> = HashMap::new();
        let mut edge_map: HashMap<EdgeLabel, EdgeLabel> = HashMap::new();
        for g in other.graphs() {
            let mut b = GraphBuilder::with_capacity(g.node_count(), g.edge_count());
            for n in g.nodes() {
                let l = g.node_label(n);
                let mapped = match node_map.get(&l) {
                    Some(&m) => m,
                    None => {
                        let m = match other.labels.node_name(l) {
                            Some(name) => self.labels.intern_node(name),
                            None => self.labels.intern_node(&l.to_string()),
                        };
                        node_map.insert(l, m);
                        m
                    }
                };
                b.add_node(mapped);
            }
            for e in g.edges() {
                let mapped = match edge_map.get(&e.label) {
                    Some(&m) => m,
                    None => {
                        let m = match other.labels.edge_name(e.label) {
                            Some(name) => self.labels.intern_edge(name),
                            None => self.labels.intern_edge(&e.label.to_string()),
                        };
                        edge_map.insert(e.label, m);
                        m
                    }
                };
                b.add_edge(e.u, e.v, mapped);
            }
            self.graphs.push(b.build());
        }
    }

    /// Frequency of each node label: `counts[l]` = number of vertices with
    /// label `l` across the whole database. The vector is indexed by label
    /// id and covers all interned labels.
    pub fn node_label_counts(&self) -> Vec<usize> {
        let mut counts = vec![
            0usize;
            self.labels
                .node_label_count()
                .max(self.max_node_label_used())
        ];
        for g in &self.graphs {
            for &l in g.node_labels() {
                if counts.len() <= l as usize {
                    counts.resize(l as usize + 1, 0);
                }
                counts[l as usize] += 1;
            }
        }
        counts
    }

    fn max_node_label_used(&self) -> usize {
        self.graphs
            .iter()
            .flat_map(|g| g.node_labels().iter().copied())
            .map(|l| l as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Approximate heap bytes held by the database: the sum of every
    /// graph's estimate plus a fixed per-graph struct overhead. Used by
    /// the server's memory admission governor; see
    /// [`Graph::approx_resident_bytes`] for the accounting policy.
    pub fn approx_resident_bytes(&self) -> u64 {
        let per_graph = std::mem::size_of::<Graph>() as u64;
        self.graphs
            .iter()
            .map(|g| per_graph + g.approx_resident_bytes())
            .sum()
    }

    /// Summary statistics.
    pub fn stats(&self) -> DbStats {
        let total_nodes: usize = self.graphs.iter().map(Graph::node_count).sum();
        let total_edges: usize = self.graphs.iter().map(Graph::edge_count).sum();
        let n = self.graphs.len();
        let mut node_seen = std::collections::HashSet::new();
        let mut edge_seen = std::collections::HashSet::new();
        for g in &self.graphs {
            node_seen.extend(g.node_labels().iter().copied());
            edge_seen.extend(g.edges().iter().map(|e| e.label));
        }
        DbStats {
            graph_count: n,
            total_nodes,
            total_edges,
            avg_nodes: if n == 0 {
                0.0
            } else {
                total_nodes as f64 / n as f64
            },
            avg_edges: if n == 0 {
                0.0
            } else {
                total_edges as f64 / n as f64
            },
            distinct_node_labels: node_seen.len(),
            distinct_edge_labels: edge_seen.len(),
        }
    }

    /// Cumulative coverage curve of node labels, most-frequent first —
    /// exactly the curve of the paper's Fig. 4. Returns
    /// `(label, count, cumulative_fraction)` tuples.
    pub fn atom_coverage_curve(&self) -> Vec<(NodeLabel, usize, f64)> {
        let counts = self.node_label_counts();
        let total: usize = counts.iter().sum();
        let mut order: Vec<(NodeLabel, usize)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(l, &c)| (l as NodeLabel, c))
            .collect();
        // Most frequent first; ties broken by label id for determinism.
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut cum = 0usize;
        order
            .into_iter()
            .map(|(l, c)| {
                cum += c;
                (
                    l,
                    c,
                    if total == 0 {
                        0.0
                    } else {
                        cum as f64 / total as f64
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn tiny_db() -> GraphDb {
        let mut db = GraphDb::new();
        let c = db.labels_mut().intern_node("C");
        let o = db.labels_mut().intern_node("O");
        let single = db.labels_mut().intern_edge("-");
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(c);
        let n1 = b.add_node(c);
        let n2 = b.add_node(o);
        b.add_edge(n0, n1, single);
        b.add_edge(n1, n2, single);
        db.push(b.build());
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(c);
        let n1 = b.add_node(o);
        b.add_edge(n0, n1, single);
        db.push(b.build());
        db
    }

    #[test]
    fn stats_are_correct() {
        let s = tiny_db().stats();
        assert_eq!(s.graph_count, 2);
        assert_eq!(s.total_nodes, 5);
        assert_eq!(s.total_edges, 3);
        assert!((s.avg_nodes - 2.5).abs() < 1e-12);
        assert!((s.avg_edges - 1.5).abs() < 1e-12);
        assert_eq!(s.distinct_node_labels, 2);
        assert_eq!(s.distinct_edge_labels, 1);
    }

    #[test]
    fn label_counts() {
        let db = tiny_db();
        let counts = db.node_label_counts();
        assert_eq!(counts[0], 3); // C
        assert_eq!(counts[1], 2); // O
    }

    #[test]
    fn coverage_curve_descends_and_accumulates_to_one() {
        let db = tiny_db();
        let curve = db.atom_coverage_curve();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].0, 0); // C most frequent
        assert!((curve[0].2 - 0.6).abs() < 1e-12);
        assert!((curve[1].2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subset_preserves_labels() {
        let db = tiny_db();
        let sub = db.subset(&[1]);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.graph(0).node_count(), 2);
        assert_eq!(sub.labels().node_name(0), Some("C"));
    }

    #[test]
    fn absorb_matches_concatenated_parse() {
        use crate::io::{parse_transactions, write_transactions};
        let a = "t # 0\nv 0 O\nv 1 H\ne 0 1 single\n";
        let b = "t # 0\nv 0 C\nv 1 O\ne 0 1 double\n";
        let mut db = parse_transactions(a).unwrap();
        db.absorb(&parse_transactions(b).unwrap());
        let one_shot = parse_transactions(&format!("{a}{b}")).unwrap();
        assert_eq!(write_transactions(&db), write_transactions(&one_shot));
        // Shared labels collapse: O interned once even though it is label 0
        // in one table and label 1 in the other.
        assert_eq!(db.labels().node_label_count(), 3);
    }

    #[test]
    fn empty_db_stats() {
        let s = GraphDb::new().stats();
        assert_eq!(s.graph_count, 0);
        assert_eq!(s.avg_nodes, 0.0);
        assert!(GraphDb::new().atom_coverage_curve().is_empty());
    }
}
