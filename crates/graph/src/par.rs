//! Deterministic dynamically-scheduled parallel execution.
//!
//! Every parallel phase of the workspace — the GraphSig pipeline (RWR
//! extraction, FVMine per label group, CutGraph + maximal FSM per region
//! set) and the baseline miners (gSpan per-seed DFS subtrees, FSG
//! per-parent candidate generation and per-candidate support counting) —
//! runs through this one executor. It lives in `graphsig-graph`, the
//! workspace's root crate, so both the pipeline (`graphsig-core`, which
//! re-exports it as `core::par`) and the miners it drives can share it
//! without a dependency cycle. The design is deliberately tiny —
//! `std::thread::scope` workers pulling item indices from a shared
//! `AtomicUsize` — and has two properties its users depend on:
//!
//! * **Dynamic scheduling.** Workers claim the next unprocessed index as
//!   they finish, so skewed item costs (a giant label group, one dense
//!   region set, one explosive gSpan seed subtree) do not leave threads
//!   idle the way static contiguous chunking does.
//! * **Determinism by index merge.** Each worker tags results with their
//!   item index and the executor reassembles them in index order, so the
//!   output of [`par_map`] is *identical* to the sequential map for any
//!   thread count — byte-for-byte, not just set-equal. Downstream
//!   dedup/sort passes therefore see the exact sequential order.
//!
//! The executor also provides **panic isolation**: every task runs under
//! `catch_unwind`, so one poisoned item surfaces as a structured
//! [`TaskPanicked`] error (carrying the *lowest* panicking index,
//! deterministically — see [`try_par_map_range`]) instead of tearing down
//! the process. The infallible [`par_map`]/[`par_map_range`] re-raise that
//! structured error as a panic on the caller's thread.
//!
//! No external dependencies (see DESIGN.md §6); scoped threads have been
//! stable since Rust 1.63.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A parallel task panicked. `index` is the lowest item index that
/// panicked — deterministic across thread counts — and `message` is its
/// panic payload (when it was a string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanicked {
    /// Lowest panicking item index.
    pub index: usize,
    /// The panic payload, if it was a `&str` or `String`.
    pub message: String,
}

impl std::fmt::Display for TaskPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parallel task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanicked {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolve a `threads` configuration value: `0` means "auto", i.e.
/// [`std::thread::available_parallelism`] (falling back to 1 if the
/// parallelism cannot be determined).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Map `f` over `0..n` with `threads` workers (`0` = auto) and return the
/// results in index order. Equivalent to
/// `(0..n).map(f).collect()` for every thread count.
///
/// Workers self-schedule over a shared atomic index (dynamic scheduling),
/// collect `(index, result)` pairs locally, and the caller's thread
/// merges them into index-ordered slots — no locks on the hot path, no
/// nondeterminism in the output.
pub fn par_map_range<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    match try_par_map_range(threads, n, f) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`par_map_range`]: each task runs under
/// `catch_unwind`, and a panicking task yields `Err(TaskPanicked)` instead
/// of unwinding through the executor.
///
/// The reported index is **deterministic**: it is always the lowest item
/// index that panics. Indices are claimed from the shared atomic counter in
/// strictly increasing order and workers stop claiming new items once a
/// panic is observed, so every item below the first panicker has already
/// been claimed and runs to completion — any panic among them is recorded,
/// and skipped items all lie above the first panicker. On `Err`, results of
/// successfully completed items are discarded.
pub fn try_par_map_range<U, F>(threads: usize, n: usize, f: F) -> Result<Vec<U>, TaskPanicked>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n < 2 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => out.push(v),
                Err(p) => {
                    return Err(TaskPanicked {
                        index: i,
                        message: panic_message(p),
                    })
                }
            }
        }
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut first_panic: Option<TaskPanicked> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let poisoned = &poisoned;
                let f = &f;
                s.spawn(move || {
                    let mut local: Vec<(usize, U)> = Vec::new();
                    let mut panicked: Option<TaskPanicked> = None;
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(v) => local.push((i, v)),
                            Err(p) => {
                                panicked = Some(TaskPanicked {
                                    index: i,
                                    message: panic_message(p),
                                });
                                poisoned.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    (local, panicked)
                })
            })
            .collect();
        for h in handles {
            let (local, panicked) = h.join().expect("parallel worker panicked");
            if let Some(p) = panicked {
                if first_panic.as_ref().is_none_or(|q| p.index < q.index) {
                    first_panic = Some(p);
                }
            }
            for (i, v) in local {
                debug_assert!(slots[i].is_none(), "index {i} produced twice");
                slots[i] = Some(v);
            }
        }
    });
    if let Some(p) = first_panic {
        return Err(p);
    }
    Ok(slots
        .into_iter()
        .map(|o| o.expect("all indices claimed exactly once"))
        .collect())
}

/// Map `f` over a slice with `threads` workers (`0` = auto), returning
/// results in item order. See [`par_map_range`] for the scheduling and
/// determinism guarantees.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_range(threads, items.len(), |i| f(&items[i]))
}

/// Fallible variant of [`par_map`]; see [`try_par_map_range`] for the
/// panic-isolation and determinism guarantees.
pub fn try_par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>, TaskPanicked>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    try_par_map_range(threads, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let got = par_map(threads, &items, |&x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn auto_threads_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn handles_empty_and_single_item() {
        assert_eq!(par_map_range(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_range(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn skewed_workloads_keep_order() {
        // Item cost varies by orders of magnitude; output order must not.
        let n = 40;
        let out = par_map_range(4, n, |i| {
            let spins = if i % 7 == 0 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (i, item) in out.iter().enumerate() {
            assert_eq!(item.0, i);
        }
        let seq = par_map_range(1, n, |i| {
            let spins = if i % 7 == 0 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        assert_eq!(out, seq);
    }

    #[test]
    fn more_threads_than_items_is_safe() {
        let got = par_map_range(16, 3, |i| i * 2);
        assert_eq!(got, vec![0, 2, 4]);
    }

    #[test]
    fn try_variants_match_infallible_on_success() {
        let items: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 4, 8] {
            let got = try_par_map(threads, &items, |&x| x + 1).unwrap();
            assert_eq!(got, (1..58).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn panicking_task_yields_lowest_index_at_every_thread_count() {
        for threads in [1, 2, 4, 8] {
            let err = try_par_map_range(threads, 64, |i| {
                if i == 13 || i == 40 {
                    panic!("boom at {i}");
                }
                i
            })
            .unwrap_err();
            assert_eq!(err.index, 13, "threads={threads}");
            assert_eq!(err.message, "boom at 13", "threads={threads}");
        }
    }

    #[test]
    fn infallible_map_reraises_structured_panic() {
        let caught = std::panic::catch_unwind(|| {
            par_map_range(4, 8, |i| {
                if i == 3 {
                    panic!("poisoned item");
                }
                i
            })
        })
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "parallel task 3 panicked: poisoned item");
    }

    #[test]
    fn task_panicked_display_and_error() {
        let e = TaskPanicked {
            index: 5,
            message: "oops".into(),
        };
        assert_eq!(e.to_string(), "parallel task 5 panicked: oops");
        let _: &dyn std::error::Error = &e;
    }
}
