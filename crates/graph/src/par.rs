//! Deterministic dynamically-scheduled parallel execution.
//!
//! Every parallel phase of the workspace — the GraphSig pipeline (RWR
//! extraction, FVMine per label group, CutGraph + maximal FSM per region
//! set) and the baseline miners (gSpan per-seed DFS subtrees, FSG
//! per-parent candidate generation and per-candidate support counting) —
//! runs through this one executor. It lives in `graphsig-graph`, the
//! workspace's root crate, so both the pipeline (`graphsig-core`, which
//! re-exports it as `core::par`) and the miners it drives can share it
//! without a dependency cycle. The design is deliberately tiny —
//! `std::thread::scope` workers pulling item indices from a shared
//! `AtomicUsize` — and has two properties its users depend on:
//!
//! * **Dynamic scheduling.** Workers claim the next unprocessed index as
//!   they finish, so skewed item costs (a giant label group, one dense
//!   region set, one explosive gSpan seed subtree) do not leave threads
//!   idle the way static contiguous chunking does.
//! * **Determinism by index merge.** Each worker tags results with their
//!   item index and the executor reassembles them in index order, so the
//!   output of [`par_map`] is *identical* to the sequential map for any
//!   thread count — byte-for-byte, not just set-equal. Downstream
//!   dedup/sort passes therefore see the exact sequential order.
//!
//! No external dependencies (see DESIGN.md §6); scoped threads have been
//! stable since Rust 1.63.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a `threads` configuration value: `0` means "auto", i.e.
/// [`std::thread::available_parallelism`] (falling back to 1 if the
/// parallelism cannot be determined).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Map `f` over `0..n` with `threads` workers (`0` = auto) and return the
/// results in index order. Equivalent to
/// `(0..n).map(f).collect()` for every thread count.
///
/// Workers self-schedule over a shared atomic index (dynamic scheduling),
/// collect `(index, result)` pairs locally, and the caller's thread
/// merges them into index-ordered slots — no locks on the hot path, no
/// nondeterminism in the output.
pub fn par_map_range<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                s.spawn(move || {
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("parallel worker panicked") {
                debug_assert!(slots[i].is_none(), "index {i} produced twice");
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("all indices claimed exactly once"))
        .collect()
}

/// Map `f` over a slice with `threads` workers (`0` = auto), returning
/// results in item order. See [`par_map_range`] for the scheduling and
/// determinism guarantees.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_range(threads, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let got = par_map(threads, &items, |&x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn auto_threads_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn handles_empty_and_single_item() {
        assert_eq!(par_map_range(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_range(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn skewed_workloads_keep_order() {
        // Item cost varies by orders of magnitude; output order must not.
        let n = 40;
        let out = par_map_range(4, n, |i| {
            let spins = if i % 7 == 0 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (i, item) in out.iter().enumerate() {
            assert_eq!(item.0, i);
        }
        let seq = par_map_range(1, n, |i| {
            let spins = if i % 7 == 0 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        assert_eq!(out, seq);
    }

    #[test]
    fn more_threads_than_items_is_safe() {
        let got = par_map_range(16, 3, |i| i * 2);
        assert_eq!(got, vec![0, 2, 4]);
    }
}
