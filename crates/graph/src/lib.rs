//! Labeled-graph substrate for GraphSig.
//!
//! GraphSig operates over *databases of small labeled undirected graphs* —
//! in the paper, chemical compounds where vertices carry atom types and
//! edges carry bond types. This crate is the shared foundation used by every
//! other crate in the workspace:
//!
//! * [`labels`] — string-interned vertex/edge label tables shared across a
//!   database, so miners work on dense `u16` ids.
//! * [`graph`] — the [`Graph`] type: compact adjacency representation,
//!   builder, and structural accessors.
//! * [`database`] — [`GraphDb`]: a collection of graphs plus the label
//!   table, with summary statistics (the paper's Table V reports these).
//! * [`neighborhood`] — BFS balls and `CutGraph(n, radius)` (Algorithm 2,
//!   line 12): extracting the induced subgraph within a hop radius.
//! * [`iso`] — subgraph isomorphism: existence, embedding enumeration, and
//!   whole-graph isomorphism tests, behind two engines (`MatcherKind`):
//!   the VF2-style reference matcher and the default fast path-at-a-time
//!   bitset matcher. Used for support counting in the FSG baseline,
//!   maximality filtering, classification features, and verifying that
//!   mined patterns really occur where claimed.
//! * [`compiled`] — [`CompiledGraph`]/[`CompiledDb`]: label-bucketed bitset
//!   target representation the fast matcher searches over, built once per
//!   database and cached on the [`LabelPairIndex`].
//! * [`invariant`] — isomorphism-invariant [`Certificate`]s via 1-WL
//!   label/degree partition refinement, plus per-node orbit colors and a
//!   bounded pinned automorphism search. The miners use certificates to
//!   avoid `min_dfs_code` canonicalization except on genuine collisions.
//! * [`index`] — [`LabelPairIndex`]: a database-wide index from
//!   (node-label, edge-label, node-label) triples to per-graph edge
//!   occurrence lists. Both baseline miners seed from it instead of
//!   rescanning the database.
//! * [`io`] — the line-oriented graph transaction format used by the
//!   original gSpan/FSG tools (`t # id` / `v id label` / `e u v label`).
//! * [`algorithms`] — components, eccentricity/diameter, cycle rank.
//! * [`edit`] — edge/node removal and induced subgraphs (new graphs).
//! * [`par`] — the deterministic dynamically-scheduled parallel executor
//!   shared by the GraphSig pipeline and the baseline miners, with
//!   per-task panic isolation ([`try_par_map`] / [`TaskPanicked`]).
//! * [`control`] — request-level resource governance: [`Budget`] /
//!   [`CancelToken`] / per-work-unit [`Meter`], and the
//!   [`Outcome`]/[`Completion`] types miners report truncation through.
//!   Step-budget truncation is deterministic across thread counts;
//!   deadline/cancellation are best-effort (see the module docs).
//!
//! # Example
//!
//! ```
//! use graphsig_graph::{GraphBuilder, Graph};
//!
//! // Benzene-like ring: 6 carbons joined by aromatic bonds (Fig. 5).
//! let mut b = GraphBuilder::new();
//! let c: Vec<_> = (0..6).map(|_| b.add_node(0)).collect();
//! for i in 0..6 {
//!     b.add_edge(c[i], c[(i + 1) % 6], 1);
//! }
//! let benzene: Graph = b.build();
//! assert_eq!(benzene.node_count(), 6);
//! assert_eq!(benzene.edge_count(), 6);
//! assert!(benzene.is_connected());
//! ```

pub mod algorithms;
pub mod compiled;
pub mod control;
pub mod database;
pub mod display;
pub mod edit;
pub mod graph;
pub mod index;
pub mod invariant;
pub mod io;
pub mod iso;
pub mod labels;
pub mod neighborhood;
pub mod par;

pub use algorithms::{connected_components, cycle_rank, diameter, eccentricity};
pub use compiled::{CompiledDb, CompiledGraph};
pub use control::{Budget, CancelToken, Completion, Meter, Outcome, StopReason};
pub use database::{DbStats, GraphDb};
pub use display::{display_with, DisplayWith};
pub use edit::{induced_subgraph, remove_edge, remove_node};
pub use graph::{Edge, Graph, GraphBuilder, NodeId};
pub use index::{EdgeOccurrence, LabelPairEntry, LabelPairIndex, LabelTriple};
pub use invariant::{certificate, refine, refine_metered, Certificate, Refinement};
pub use io::{parse_transactions, parse_transactions_into, write_transactions, ParseError};
pub use iso::{are_isomorphic, MatchOutcome, MatcherKind, MultiMatcher, SubgraphMatcher};
pub use labels::{EdgeLabel, LabelTable, NodeLabel};
pub use neighborhood::cut_graph;
pub use par::{
    par_map, par_map_range, resolve_threads, try_par_map, try_par_map_range, TaskPanicked,
};
