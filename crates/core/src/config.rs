//! GraphSig configuration — the paper's Table IV.

use graphsig_features::RwrConfig;
use graphsig_graph::{Budget, MatcherKind};

/// How the sliding window captures a node's neighborhood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// Random walk with restart (the paper's method, Sec. II-C):
    /// proximity-weighted feature distribution.
    Rwr,
    /// Plain occurrence counting inside the hop-radius window — the
    /// strawman the paper argues against; kept for the ablation experiment.
    Count {
        /// Hop radius of the counting window.
        radius: usize,
    },
}

/// Which frequent-subgraph miner runs on the region sets (Alg. 2 line 13).
/// The paper uses FSG; gSpan is provided as a drop-in alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsmBackend {
    /// Level-wise apriori miner (`graphsig-fsg`) — the paper's choice.
    Fsg,
    /// DFS-code pattern growth (`graphsig-gspan`).
    GSpan,
}

/// All GraphSig parameters. `Default` reproduces Table IV of the paper:
///
/// | parameter | description | value |
/// |---|---|---|
/// | `alpha` | restart probability of the random walk | 0.25 |
/// | `max_pvalue` | p-value threshold for FVMine | 0.1 |
/// | `min_freq` | frequency threshold for FVMine | 0.1% |
/// | `radius` | CutGraph radius around a described node | 8 |
/// | `fsm_freq` | frequency threshold for maximal FSM on region sets | 80% |
#[derive(Debug, Clone)]
pub struct GraphSigConfig {
    /// Random-walk-with-restart parameters (`alpha` of Table IV).
    pub rwr: RwrConfig,
    /// Window mechanism (RWR by default; counting for the ablation).
    pub window: WindowKind,
    /// Number of most-frequent atom types whose mutual edge types become
    /// features (the paper selects 5 via Fig. 4).
    pub top_k_atoms: usize,
    /// FVMine p-value threshold (`maxPvalue`).
    pub max_pvalue: f64,
    /// FVMine support threshold as a fraction of the label group size
    /// (`minFreq`; Table IV: 0.1%). The absolute support is never allowed
    /// below 2 — a "common" sub-feature vector needs at least two regions.
    pub min_freq: f64,
    /// `CutGraph` radius (hops).
    pub radius: usize,
    /// Frequency threshold for the maximal-FSM step on each region set
    /// (`fsgFreq`; Table IV: 80%).
    pub fsm_freq: f64,
    /// Which miner to run on the region sets.
    pub fsm_backend: FsmBackend,
    /// Edge cap for patterns grown by the FSM step (guards worst-case
    /// region sets; generous by default).
    pub max_pattern_edges: usize,
    /// Per-region-set cap on patterns enumerated by the FSM step. Tiny,
    /// highly homogeneous sets can share a large common subgraph whose
    /// frequent-subgraph lattice is combinatorial; hitting the cap
    /// truncates that set's enumeration (counted in
    /// `RunStats::truncated_sets`) and returns the maximal patterns of
    /// what was enumerated.
    pub max_patterns_per_set: usize,
    /// Isomorphism engine for every subgraph-containment test in the run
    /// (FSM support counting and the maximal-pattern post-filter). The
    /// default `Fast` engine compiles targets to bitset adjacency once per
    /// index and matches with filtered path-at-a-time search; `Vf2` is the
    /// reference backtracking engine. Unbudgeted output is identical for
    /// both; budgeted runs may truncate at different points because step
    /// counts are engine-specific.
    pub matcher: MatcherKind,
    /// Worker threads for the parallel pipeline phases (RWR pass, FVMine
    /// per label group, CutGraph + maximal FSM per region set). `0` = auto
    /// ([`std::thread::available_parallelism`]), `1` = sequential. The
    /// mined output is byte-identical for every thread count.
    pub threads: usize,
    /// Optional resource governance for the whole run: wall-clock deadline,
    /// cooperative step budget, external cancellation. `None` (the default)
    /// mines exhaustively with zero overhead. When set, the pipeline checks
    /// the budget cooperatively in every phase and returns a *truncated but
    /// well-formed* partial result instead of running away; step-budget
    /// truncation is deterministic across thread counts, deadline and
    /// cancellation are best-effort (see [`graphsig_graph::control`]).
    pub budget: Option<Budget>,
}

impl Default for GraphSigConfig {
    fn default() -> Self {
        Self {
            rwr: RwrConfig::default(), // alpha = 0.25
            window: WindowKind::Rwr,
            top_k_atoms: 5,
            max_pvalue: 0.1,
            min_freq: 0.001, // 0.1%
            radius: 8,
            fsm_freq: 0.8, // 80%
            fsm_backend: FsmBackend::Fsg,
            max_pattern_edges: 25,
            max_patterns_per_set: 20_000,
            matcher: MatcherKind::default(),
            threads: 0, // auto: use every available core
            budget: None,
        }
    }
}

impl GraphSigConfig {
    /// Set the run's resource [`Budget`] (builder-style).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Validate ranges; called by [`crate::GraphSig::new`].
    pub fn validate(&self) {
        assert!(
            self.max_pvalue >= 0.0 && self.max_pvalue <= 1.0,
            "max_pvalue must be in [0,1]"
        );
        assert!(
            self.min_freq > 0.0 && self.min_freq <= 1.0,
            "min_freq must be in (0,1]"
        );
        assert!(
            self.fsm_freq > 0.0 && self.fsm_freq <= 1.0,
            "fsm_freq must be in (0,1]"
        );
        assert!(self.top_k_atoms >= 1, "top_k_atoms must be >= 1");
        // Every `threads` value is valid: 0 = auto, n >= 1 = exactly n
        // workers. Kept here so the convention is documented next to the
        // other range checks.
    }

    /// Absolute FVMine support threshold for a group of `group_size`
    /// vectors: `ceil(min_freq * size)`, floored at 2.
    pub fn fvmine_support(&self, group_size: usize) -> usize {
        ((self.min_freq * group_size as f64).ceil() as usize).max(2)
    }

    /// Absolute FSM support threshold for a region set of `set_size`:
    /// `ceil(fsm_freq * size)`, floored at 2.
    pub fn fsm_support(&self, set_size: usize) -> usize {
        ((self.fsm_freq * set_size as f64).ceil() as usize).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = GraphSigConfig::default();
        assert!((c.rwr.alpha - 0.25).abs() < 1e-12);
        assert!((c.max_pvalue - 0.1).abs() < 1e-12);
        assert!((c.min_freq - 0.001).abs() < 1e-12);
        assert_eq!(c.radius, 8);
        assert!((c.fsm_freq - 0.8).abs() < 1e-12);
        assert_eq!(c.fsm_backend, FsmBackend::Fsg);
        assert_eq!(c.top_k_atoms, 5);
    }

    #[test]
    fn support_thresholds() {
        let c = GraphSigConfig::default();
        assert_eq!(c.fvmine_support(10_000), 10); // 0.1% of 10k
        assert_eq!(c.fvmine_support(100), 2); // floored at 2
        assert_eq!(c.fsm_support(10), 8); // 80% of 10
        assert_eq!(c.fsm_support(1), 2); // floored at 2
        assert_eq!(c.fsm_support(11), 9); // ceil(8.8)
    }

    #[test]
    #[should_panic(expected = "min_freq")]
    fn bad_min_freq_rejected() {
        let c = GraphSigConfig {
            min_freq: 0.0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "fsm_freq")]
    fn bad_fsm_freq_rejected() {
        let c = GraphSigConfig {
            fsm_freq: 1.5,
            ..Default::default()
        };
        c.validate();
    }
}
