//! Shared-state cache around the expensive half of the pipeline.
//!
//! A long-lived service answering many mine requests over the same
//! database should not repeat the window pass (RWR + grouping — the
//! dominant fixed cost, independent of every threshold) per request.
//! [`PreparedCache`] memoizes [`Prepared`] window passes keyed by the
//! parameters they actually depend on (window mechanism, restart
//! probability, feature-set size), and [`PreparedCache::mine_outcome`]
//! is a drop-in governed replacement for
//! [`GraphSig::mine_outcome`](crate::GraphSig::mine_outcome) that serves
//! repeated requests from the cache.
//!
//! # Correctness policy
//!
//! * The cached window pass is always computed **unbudgeted** (its cost is
//!   amortized across requests), while phases 2–3 run under the request's
//!   own budget. For unbudgeted and deadline-budgeted requests this is
//!   byte-identical to a fresh one-shot run: a deadline that does not fire
//!   changes nothing, and one that does is documented best-effort anyway.
//! * Requests carrying a **step budget** are deterministic by contract —
//!   the one-shot run meters its window pass too — so they *bypass* the
//!   cache entirely and run `mine_outcome` from scratch. The
//!   [`CacheDisposition::Bypass`] counter makes this visible.
//! * Entries are only usable for the exact database they were prepared
//!   from; versioned invalidation is the caller's job (a server drops the
//!   whole cache when a dataset is reloaded — see `graphsig-server`).
//!
//! Concurrent misses on the same key block on a [`OnceLock`] so the window
//! pass runs exactly once, no matter how many identical requests race.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use graphsig_graph::{GraphDb, Outcome};

use crate::config::{GraphSigConfig, WindowKind};
use crate::pipeline::{GraphSig, GraphSigResult, Prepared};

/// Everything a [`Prepared`] window pass depends on besides the database
/// itself. Thread count is deliberately absent: the pass is byte-identical
/// at every thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PreparedKey {
    window: WindowKind,
    /// `rwr.alpha` bit pattern (total order not needed, exact equality is).
    alpha_bits: u64,
    top_k_atoms: usize,
}

impl PreparedKey {
    fn of(cfg: &GraphSigConfig) -> Self {
        Self {
            window: cfg.window,
            alpha_bits: cfg.rwr.alpha.to_bits(),
            top_k_atoms: cfg.top_k_atoms,
        }
    }
}

/// An opaque fingerprint of the window-pass parameters a config maps to —
/// exactly the key [`PreparedCache`] memoizes on. Two configs with equal
/// `WindowKey`s share one cached window pass, so a caller coalescing
/// concurrent requests (see `graphsig-server`) can key its single-flight
/// table on this and stay provably aligned with the cache: whatever
/// coalesces would also have hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowKey(PreparedKey);

impl WindowKey {
    /// The window fingerprint of `cfg`. Threshold parameters (`max_pvalue`,
    /// `min_freq`, `fsm_freq`) and thread count are deliberately absent,
    /// same as the cache key itself.
    pub fn of(cfg: &GraphSigConfig) -> Self {
        WindowKey(PreparedKey::of(cfg))
    }
}

/// How a request interacted with the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Served from an already-prepared window pass.
    Hit,
    /// Prepared the window pass (and cached it) on this request.
    Miss,
    /// Step-budgeted request: ran uncached for byte-identical determinism
    /// with the one-shot path.
    Bypass,
}

impl std::fmt::Display for CacheDisposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Bypass => "bypass",
        })
    }
}

/// Counters snapshot for observability (a server's `stats` response).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a cached window pass.
    pub hits: u64,
    /// Requests that prepared (and cached) the window pass.
    pub misses: u64,
    /// Step-budgeted requests that ran uncached.
    pub bypasses: u64,
    /// Distinct window passes currently cached.
    pub entries: usize,
}

/// A thread-safe memo of [`Prepared`] window passes for **one** database.
///
/// See the module docs for the caching policy. All methods take `&self`;
/// the cache is meant to be shared behind an `Arc` by however many worker
/// threads serve requests.
#[derive(Debug, Default)]
pub struct PreparedCache {
    entries: Mutex<HashMap<PreparedKey, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    /// Monotonic use counter; each lookup stamps its entry so
    /// [`evict_lru`](Self::evict_lru) can pick the coldest one.
    tick: AtomicU64,
}

/// One memoized window pass plus its recency stamp.
#[derive(Debug)]
struct CacheEntry {
    cell: Arc<OnceLock<Arc<Prepared>>>,
    last_used: u64,
}

impl PreparedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Governed mining with window-pass reuse: semantically equivalent to
    /// `GraphSig::new(cfg).mine_outcome(db)` (see the module docs for the
    /// exact guarantee), plus how the cache was involved.
    ///
    /// `db` must be the same database on every call for the lifetime of
    /// this cache — reloading a dataset means replacing the cache.
    pub fn mine_outcome(
        &self,
        cfg: &GraphSigConfig,
        db: &GraphDb,
    ) -> (Outcome<GraphSigResult>, CacheDisposition) {
        let step_budgeted = cfg.budget.as_ref().is_some_and(|b| b.max_steps().is_some());
        if step_budgeted {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return (
                GraphSig::new(cfg.clone()).mine_outcome(db),
                CacheDisposition::Bypass,
            );
        }
        let (prepared, disposition) = self.prepared_for(cfg, db);
        let outcome = GraphSig::new(cfg.clone()).mine_prepared_outcome(db, &prepared);
        (outcome, disposition)
    }

    /// The cached window pass for `cfg`'s window parameters, preparing it
    /// (unbudgeted) on first use. Concurrent first uses prepare once; the
    /// losers of the race block and then count as hits.
    pub fn prepared_for(
        &self,
        cfg: &GraphSigConfig,
        db: &GraphDb,
    ) -> (Arc<Prepared>, CacheDisposition) {
        let cell = {
            let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
            let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            let entry = map
                .entry(PreparedKey::of(cfg))
                .or_insert_with(|| CacheEntry {
                    cell: Arc::new(OnceLock::new()),
                    last_used: 0,
                });
            entry.last_used = stamp;
            entry.cell.clone()
        };
        let mut prepared_here = false;
        let prepared = cell
            .get_or_init(|| {
                prepared_here = true;
                let unbudgeted = GraphSigConfig {
                    budget: None,
                    ..cfg.clone()
                };
                Arc::new(GraphSig::new(unbudgeted).prepare(db))
            })
            .clone();
        let disposition = if prepared_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
            CacheDisposition::Miss
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            CacheDisposition::Hit
        };
        (prepared, disposition)
    }

    /// Counters + current entry count.
    pub fn stats(&self) -> CacheStats {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner()).len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Approximate heap bytes held by every *initialized* cached window
    /// pass. Entries still being prepared by a racing thread count as 0
    /// until their `OnceLock` resolves.
    pub fn approx_bytes(&self) -> u64 {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter_map(|e| e.cell.get())
            .map(|p| p.approx_resident_bytes())
            .sum()
    }

    /// Evict the least-recently-used initialized entry, returning the
    /// approximate bytes it freed. `None` when nothing is evictable
    /// (empty cache, or every entry is mid-preparation). An in-flight
    /// request holding the evicted `Arc` keeps its clone alive until it
    /// finishes — eviction drops the cache's reference, never the data
    /// under a reader.
    pub fn evict_lru(&self) -> Option<u64> {
        let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let (key, bytes) = map
            .iter()
            .filter_map(|(k, e)| {
                e.cell
                    .get()
                    .map(|p| (e.last_used, *k, p.approx_resident_bytes()))
            })
            .min_by_key(|(used, ..)| *used)
            .map(|(_, k, b)| (k, b))?;
        map.remove(&key);
        Some(bytes)
    }

    /// Drop every cached window pass (counters are kept — they describe
    /// traffic, not contents).
    pub fn clear(&self) {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_datagen::aids_like;
    use graphsig_graph::Budget;

    fn cfg() -> GraphSigConfig {
        GraphSigConfig {
            min_freq: 0.05,
            max_pvalue: 0.05,
            radius: 3,
            max_pattern_edges: 8,
            ..Default::default()
        }
    }

    fn fingerprint(r: &GraphSigResult) -> Vec<String> {
        r.subgraphs
            .iter()
            .map(|s| format!("{} {:?}", s.code, s.gids))
            .collect()
    }

    #[test]
    fn hit_matches_one_shot_byte_for_byte() {
        let data = aids_like(60, 21);
        let db = data.active_subset();
        let cache = PreparedCache::new();
        let one_shot = GraphSig::new(cfg()).mine_outcome(&db);
        let (first, d1) = cache.mine_outcome(&cfg(), &db);
        let (second, d2) = cache.mine_outcome(&cfg(), &db);
        assert_eq!(d1, CacheDisposition::Miss);
        assert_eq!(d2, CacheDisposition::Hit);
        assert_eq!(fingerprint(&one_shot.result), fingerprint(&first.result));
        assert_eq!(fingerprint(&one_shot.result), fingerprint(&second.result));
        assert_eq!(one_shot.completion, second.completion);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.bypasses, s.entries), (1, 1, 0, 1));
    }

    #[test]
    fn distinct_window_parameters_get_distinct_entries() {
        let data = aids_like(40, 22);
        let cache = PreparedCache::new();
        cache.mine_outcome(&cfg(), &data.db);
        let counting = GraphSigConfig {
            window: WindowKind::Count { radius: 3 },
            ..cfg()
        };
        let (_, d) = cache.mine_outcome(&counting, &data.db);
        assert_eq!(d, CacheDisposition::Miss);
        assert_eq!(cache.stats().entries, 2);
        // Thresholds do NOT key the cache: sweeping them hits.
        let swept = GraphSigConfig {
            max_pvalue: 0.2,
            min_freq: 0.1,
            ..cfg()
        };
        let (_, d) = cache.mine_outcome(&swept, &data.db);
        assert_eq!(d, CacheDisposition::Hit);
    }

    #[test]
    fn step_budgets_bypass_and_match_one_shot() {
        let data = aids_like(40, 23);
        let cache = PreparedCache::new();
        let budgeted = cfg().with_budget(Budget::unlimited().with_max_steps(500));
        let one_shot = GraphSig::new(budgeted.clone()).mine_outcome(&data.db);
        let (via_cache, d) = cache.mine_outcome(&budgeted, &data.db);
        assert_eq!(d, CacheDisposition::Bypass);
        assert_eq!(
            fingerprint(&one_shot.result),
            fingerprint(&via_cache.result)
        );
        assert_eq!(one_shot.completion, via_cache.completion);
        assert_eq!(cache.stats().entries, 0, "bypass must not populate");
    }

    #[test]
    fn concurrent_identical_requests_prepare_once() {
        let data = aids_like(50, 24);
        let db = Arc::new(data.active_subset());
        let cache = Arc::new(PreparedCache::new());
        let mut fps = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (cache, db) = (Arc::clone(&cache), Arc::clone(&db));
                    s.spawn(move || fingerprint(&cache.mine_outcome(&cfg(), &db).0.result))
                })
                .collect();
            for h in handles {
                if let Ok(fp) = h.join() {
                    fps.push(fp);
                }
            }
        });
        assert_eq!(fps.len(), 4);
        assert!(fps.windows(2).all(|w| w[0] == w[1]));
        let s = cache.stats();
        assert_eq!(s.misses, 1, "window pass must be prepared exactly once");
        assert_eq!(s.hits, 3);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn evict_lru_drops_the_coldest_entry_and_reports_bytes() {
        let data = aids_like(30, 26);
        let cache = PreparedCache::new();
        assert_eq!(cache.evict_lru(), None, "empty cache has nothing to evict");
        cache.mine_outcome(&cfg(), &data.db); // entry A (older)
        let counting = GraphSigConfig {
            window: WindowKind::Count { radius: 3 },
            ..cfg()
        };
        cache.mine_outcome(&counting, &data.db); // entry B (newer)
        cache.mine_outcome(&cfg(), &data.db); // touch A — B is now coldest
        let total = cache.approx_bytes();
        assert!(total > 0, "prepared vectors must account as resident bytes");
        let freed = cache.evict_lru().unwrap_or(0);
        assert!(freed > 0);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.approx_bytes(), total - freed);
        // The survivor must be A (the recently touched one): hitting it
        // again must not re-prepare.
        let (_, d) = cache.mine_outcome(&cfg(), &data.db);
        assert_eq!(d, CacheDisposition::Hit, "LRU evicted the wrong entry");
    }

    #[test]
    fn clear_forces_a_fresh_prepare() {
        let data = aids_like(30, 25);
        let cache = PreparedCache::new();
        cache.mine_outcome(&cfg(), &data.db);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        let (_, d) = cache.mine_outcome(&cfg(), &data.db);
        assert_eq!(d, CacheDisposition::Miss);
    }
}
