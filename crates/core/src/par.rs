//! Deterministic dynamically-scheduled parallel execution.
//!
//! The executor itself lives in [`graphsig_graph::par`] — the workspace's
//! root crate — so the gSpan/FSG baseline miners can run on the same
//! machinery without a dependency cycle (`graphsig-core` depends on the
//! miners, not the other way round). This module re-exports it under the
//! historical `graphsig_core::par` path; see the source module for the
//! scheduling and determinism guarantees the pipeline relies on.

pub use graphsig_graph::par::{
    par_map, par_map_range, resolve_threads, try_par_map, try_par_map_range, TaskPanicked,
};
