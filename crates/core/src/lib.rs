//! GraphSig — scalable mining of statistically significant subgraphs
//! (Ranu & Singh, ICDE 2009).
//!
//! This crate is the paper's primary contribution: Algorithm 2, assembled
//! from the workspace substrates. Given a database of labeled graphs it
//! returns the subgraphs whose occurrence is statistically surprising
//! (low binomial p-value in feature space, confirmed in graph space), even
//! when their frequency is far below what any frequent-subgraph miner can
//! reach:
//!
//! 1. **RWR pass** (Sec. II): every node becomes a discretized feature
//!    vector describing its neighborhood (`graphsig-features`).
//! 2. **Grouping** (Alg. 2 line 6): vectors are grouped by the label of
//!    their source node.
//! 3. **FVMine** (Alg. 2 line 7, `graphsig-fvmine`): each group is mined
//!    for closed significant sub-feature vectors under the group's
//!    empirical priors.
//! 4. **Region extraction** (lines 9–12): for each significant vector, the
//!    nodes it describes are located and `CutGraph(node, radius)` isolates
//!    their neighborhoods into a set of region graphs.
//! 5. **Maximal FSM** (line 13): each region set is mined for maximal
//!    frequent subgraphs at a *high* threshold (the paper's default: 80%)
//!    using FSG or gSpan — cheap because the sets are small and
//!    homogeneous. Sets without a common subgraph produce nothing, which
//!    prunes feature-space false positives.
//!
//! The result carries, per subgraph, the feature-space evidence (vector,
//! p-value, support) and the graph-space evidence (supporting graph ids),
//! plus a [`Profile`] of where time went (the paper's Fig. 10).
//!
//! # Example
//!
//! ```no_run
//! use graphsig_core::{GraphSig, GraphSigConfig};
//! use graphsig_datagen::aids_like;
//!
//! let data = aids_like(1000, 42);
//! let result = GraphSig::new(GraphSigConfig::default()).mine(&data.active_subset());
//! for sg in &result.subgraphs {
//!     println!(
//!         "{} edges, p-value {:.3e}, support {}",
//!         sg.graph.edge_count(),
//!         sg.vector_pvalue,
//!         sg.gids.len()
//!     );
//! }
//! ```

pub mod cache;
pub mod config;
pub mod par;
pub mod pipeline;
pub mod report;
pub mod vectors;

/// Request-level resource governance (re-exported from
/// [`graphsig_graph::control`]): [`Budget`], [`CancelToken`], and the
/// [`Outcome`]/[`Completion`] types the `*_outcome` pipeline entry points
/// report truncation through.
pub use graphsig_graph::control;
pub use graphsig_graph::{Budget, CancelToken, Completion, Outcome, StopReason};

pub use cache::{CacheDisposition, CacheStats, PreparedCache, WindowKey};
pub use config::{FsmBackend, GraphSigConfig, WindowKind};
pub use par::{par_map, par_map_range, resolve_threads, try_par_map, try_par_map_range};
pub use pipeline::{GraphSig, GraphSigResult, Prepared, Profile, RunStats, SignificantSubgraph};
pub use report::{describe, describe_run, render_subgraphs};
pub use vectors::{
    compute_all_vectors, compute_all_window_vectors, compute_all_window_vectors_governed,
    group_by_label, GraphVectors, LabelGroup,
};
