//! The GraphSig pipeline (Algorithm 2 of the paper).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use graphsig_features::FeatureSet;
use graphsig_fsg::{Fsg, FsgConfig};
use graphsig_fvmine::{is_sub_vector, FvMineConfig, FvMiner, SignificantVector};
use graphsig_graph::control::{self, Completion, Meter, Outcome, StopReason};
use graphsig_graph::{cut_graph, Graph, GraphDb, NodeLabel};
use graphsig_gspan::{DfsCode, GSpan, MinerConfig, Pattern};

use crate::config::{FsmBackend, GraphSigConfig};
use crate::vectors::{compute_all_window_vectors_governed, group_by_label};

/// One mined significant subgraph, with its feature-space and graph-space
/// evidence.
#[derive(Debug, Clone)]
pub struct SignificantSubgraph {
    /// The subgraph.
    pub graph: Graph,
    /// Canonical code (dedup key).
    pub code: DfsCode,
    /// The closed significant sub-feature vector that led to it.
    pub source_vector: Vec<u8>,
    /// p-value of that vector at its observed support (feature space).
    pub vector_pvalue: f64,
    /// Observed support of the vector (number of described regions).
    pub vector_support: usize,
    /// Label of the group (`D_a`) the vector came from.
    pub group_label: NodeLabel,
    /// Number of regions cut for the FSM step.
    pub set_size: usize,
    /// Support of the subgraph *within the region set*.
    pub fsm_support: usize,
    /// Distinct database graphs among the supporting regions, ascending.
    pub gids: Vec<u32>,
}

/// A [`SignificantSubgraph`] minus its canonical code. During the phase-3
/// dedup the code serves as the `HashMap` key; holding the remaining
/// fields separately lets the code move into the key and back out into
/// the final answer without ever being cloned.
struct CandidateRest {
    graph: Graph,
    source_vector: Vec<u8>,
    vector_pvalue: f64,
    vector_support: usize,
    group_label: NodeLabel,
    set_size: usize,
    fsm_support: usize,
    gids: Vec<u32>,
}

impl CandidateRest {
    /// Reattach the canonical code.
    fn into_subgraph(self, code: DfsCode) -> SignificantSubgraph {
        SignificantSubgraph {
            graph: self.graph,
            code,
            source_vector: self.source_vector,
            vector_pvalue: self.vector_pvalue,
            vector_support: self.vector_support,
            group_label: self.group_label,
            set_size: self.set_size,
            fsm_support: self.fsm_support,
            gids: self.gids,
        }
    }
}

impl SignificantSubgraph {
    /// Global frequency: fraction of database graphs containing a
    /// supporting region.
    pub fn frequency(&self, db_size: usize) -> f64 {
        if db_size == 0 {
            0.0
        } else {
            self.gids.len() as f64 / db_size as f64
        }
    }
}

/// Wall-clock breakdown of one run — the paper's Fig. 10 splits GraphSig
/// cost into RWR, feature-space analysis, and frequent subgraph mining.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profile {
    /// Sliding the window: RWR on every node (≈20% per the paper).
    pub rwr: Duration,
    /// Grouping + FVMine + locating supporting nodes.
    pub feature_analysis: Duration,
    /// CutGraph + maximal FSM on the region sets.
    pub fsm: Duration,
}

impl Profile {
    /// Total accounted time.
    pub fn total(&self) -> Duration {
        self.rwr + self.feature_analysis + self.fsm
    }

    /// `(rwr, feature analysis, fsm)` as percentages of the total.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.rwr.as_secs_f64() / t,
            100.0 * self.feature_analysis.as_secs_f64() / t,
            100.0 * self.fsm.as_secs_f64() / t,
        )
    }
}

/// Counters describing the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Total node vectors produced by the RWR pass.
    pub vectors: usize,
    /// Label groups mined.
    pub groups: usize,
    /// Significant sub-feature vectors found by FVMine.
    pub significant_vectors: usize,
    /// Region sets that survived to the FSM step.
    pub region_sets: usize,
    /// Region sets whose FSM step produced no pattern (feature-space false
    /// positives pruned in graph space — Sec. IV-B).
    pub pruned_sets: usize,
    /// Region sets whose FSM enumeration hit `max_patterns_per_set` and
    /// was truncated (their maximal output is approximate).
    pub truncated_sets: usize,
    /// Cooperative steps attributed to isomorphism-matcher work (support
    /// counting inside the FSM phase). Only tracked on budgeted runs — an
    /// unbudgeted run reports 0 — and useful for naming the dominant phase
    /// when a step budget truncates the run.
    pub match_steps: u64,
    /// Full canonical-code (`min_dfs_code` / restricted self-projection)
    /// computations performed during the FSM phase. Only tracked on
    /// budgeted runs; the canonicalization-v2 certificate layer exists to
    /// drive this number down.
    pub canon_calls: u64,
    /// Canonicalization queries answered from certificates (dedup merges,
    /// certificate-set apriori checks, canonical-cache hits) instead of a
    /// full `min_dfs_code`. Only tracked on budgeted runs.
    pub cert_hits: u64,
}

/// The result of [`GraphSig::mine`].
#[derive(Debug, Clone)]
pub struct GraphSigResult {
    /// Deduplicated significant subgraphs, most significant vector first.
    pub subgraphs: Vec<SignificantSubgraph>,
    /// Cost profile (Fig. 10).
    pub profile: Profile,
    /// Run counters.
    pub stats: RunStats,
}

/// A cached window pass (phases 1–2a of Algorithm 2): the per-label vector
/// groups plus provenance, reusable across threshold settings. Built by
/// [`GraphSig::prepare`].
#[derive(Debug, Clone)]
pub struct Prepared {
    groups: Vec<crate::vectors::LabelGroup>,
    vectors: usize,
    rwr_time: Duration,
    db_len: usize,
    window: crate::config::WindowKind,
    alpha: f64,
    /// First stop reason hit during the window pass, if the run's budget
    /// truncated it (graph-id order).
    truncation: Option<StopReason>,
}

impl Prepared {
    /// The per-label vector groups.
    pub fn groups(&self) -> &[crate::vectors::LabelGroup] {
        &self.groups
    }

    /// Total node vectors produced.
    pub fn vector_count(&self) -> usize {
        self.vectors
    }

    /// Wall-clock time of the window pass.
    pub fn window_time(&self) -> Duration {
        self.rwr_time
    }

    /// Approximate heap bytes held by the cached window pass (discretized
    /// vectors plus provenance). Estimate for the server's memory
    /// admission governor, not an allocator audit.
    pub fn approx_resident_bytes(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| {
                let vectors: usize = g
                    .vectors
                    .iter()
                    .map(|v| std::mem::size_of::<Vec<u8>>() + v.len())
                    .sum();
                std::mem::size_of_val(g) + g.members.len() * 8 + vectors
            })
            .sum::<usize>() as u64
    }

    /// Whether the window pass ran to convergence everywhere or was cut
    /// short by the run's budget.
    pub fn completion(&self) -> Completion {
        match self.truncation {
            Some(reason) => Completion::Truncated(reason),
            None => Completion::Complete,
        }
    }
}

/// The GraphSig miner. See the crate docs for the pipeline outline.
pub struct GraphSig {
    cfg: GraphSigConfig,
}

impl GraphSig {
    /// Create a miner; panics on invalid configuration.
    pub fn new(cfg: GraphSigConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GraphSigConfig {
        &self.cfg
    }

    /// Mine significant subgraphs from `db`, building the chemical feature
    /// set from the database itself (Sec. II-B).
    pub fn mine(&self, db: &GraphDb) -> GraphSigResult {
        self.mine_outcome(db).result
    }

    /// [`mine`](Self::mine), additionally reporting whether the run was
    /// truncated by the configured [`Budget`](graphsig_graph::Budget).
    /// Unbudgeted runs always report [`Completion::Complete`]; a
    /// `max_patterns_per_set` hit reports `Truncated(PatternCap)` even
    /// without a budget (it was always a silent cap before).
    pub fn mine_outcome(&self, db: &GraphDb) -> Outcome<GraphSigResult> {
        let fs = FeatureSet::for_chemical(db, self.cfg.top_k_atoms);
        self.mine_with_features_outcome(db, &fs)
    }

    /// Mine with a caller-supplied feature set (e.g. one selected on a
    /// larger corpus, or via the greedy selector).
    pub fn mine_with_features(&self, db: &GraphDb, fs: &FeatureSet) -> GraphSigResult {
        self.mine_with_features_outcome(db, fs).result
    }

    /// [`mine_with_features`](Self::mine_with_features) with completion
    /// reporting (see [`mine_outcome`](Self::mine_outcome)).
    pub fn mine_with_features_outcome(
        &self,
        db: &GraphDb,
        fs: &FeatureSet,
    ) -> Outcome<GraphSigResult> {
        let prepared = self.prepare_with_features(db, fs);
        self.mine_prepared_outcome(db, &prepared)
    }

    /// Run the window pass once (phases 1–2a) and keep the result for
    /// repeated mining. The RWR cost is independent of every threshold, so
    /// parameter sweeps (the Fig. 9/12 experiments, hyper-parameter tuning)
    /// should prepare once and call [`mine_prepared`](Self::mine_prepared)
    /// per threshold setting.
    pub fn prepare(&self, db: &GraphDb) -> Prepared {
        let fs = FeatureSet::for_chemical(db, self.cfg.top_k_atoms);
        self.prepare_with_features(db, &fs)
    }

    /// [`prepare`](Self::prepare) with an explicit feature set.
    pub fn prepare_with_features(&self, db: &GraphDb, fs: &FeatureSet) -> Prepared {
        let t0 = Instant::now();
        let (all_vectors, truncation) = compute_all_window_vectors_governed(
            db,
            fs,
            &self.cfg.rwr,
            self.cfg.window,
            self.cfg.threads,
            self.cfg.budget.as_ref(),
        );
        let rwr_time = t0.elapsed();
        let vectors = all_vectors.iter().map(|gv| gv.vectors.len()).sum();
        let groups = group_by_label(&all_vectors);
        Prepared {
            groups,
            vectors,
            rwr_time,
            db_len: db.len(),
            window: self.cfg.window,
            alpha: self.cfg.rwr.alpha,
            truncation,
        }
    }

    /// Mine from a [`Prepared`] window pass. The prepared vectors only
    /// depend on the window mechanism (`window`, `rwr.alpha`) and feature
    /// set, so any `max_pvalue` / `min_freq` / `radius` / FSM setting can
    /// be swept against the same preparation.
    ///
    /// # Panics
    /// Panics if `prepared` was built for a different database size or a
    /// different window configuration than this miner's.
    pub fn mine_prepared(&self, db: &GraphDb, prepared: &Prepared) -> GraphSigResult {
        self.mine_prepared_outcome(db, prepared).result
    }

    /// [`mine_prepared`](Self::mine_prepared) with completion reporting
    /// (see [`mine_outcome`](Self::mine_outcome)). Truncation reasons are
    /// merged in a fixed phase/unit order (window pass by graph id, FVMine
    /// by group, FSM by region set), so with a pure step budget the
    /// reported completion — like the result itself — is byte-identical
    /// across thread counts.
    pub fn mine_prepared_outcome(
        &self,
        db: &GraphDb,
        prepared: &Prepared,
    ) -> Outcome<GraphSigResult> {
        assert_eq!(
            prepared.db_len,
            db.len(),
            "prepared for a different database"
        );
        assert_eq!(
            prepared.window, self.cfg.window,
            "prepared with a different window mechanism"
        );
        assert!(
            (prepared.alpha - self.cfg.rwr.alpha).abs() < 1e-12,
            "prepared with a different restart probability"
        );
        let mut profile = Profile {
            rwr: prepared.rwr_time,
            ..Profile::default()
        };
        let mut stats = RunStats {
            vectors: prepared.vectors,
            ..RunStats::default()
        };
        let budget = self.cfg.budget.as_ref();
        // First stop reason across the whole run, in deterministic phase
        // and work-unit order: window pass, then FVMine groups, then FSM
        // region sets.
        let mut truncation = prepared.truncation;

        // ---- Phase 2: FVMine per group (lines 5-9) ------------------------
        // Label groups are independent, so each group's FVMine runs as one
        // task on the shared executor. Flattening the per-group outputs in
        // group order reproduces the sequential work list exactly.
        let t1 = Instant::now();
        let groups = &prepared.groups;
        stats.groups = groups.len();
        // (group label, significant vector, supporting (gid, node) pairs).
        type WorkItem = (NodeLabel, SignificantVector, Vec<(u32, u32)>);
        let per_group: Vec<(Vec<WorkItem>, Option<StopReason>)> =
            crate::par::par_map(self.cfg.threads, groups, |group| {
                let min_support = self.cfg.fvmine_support(group.vectors.len());
                if group.vectors.len() < min_support {
                    return (Vec::new(), None);
                }
                if let Some(reason) = control::check_start(budget) {
                    // Out of time / cancelled: skip the group entirely —
                    // fewer significant vectors, but every one we *did*
                    // produce stays exact.
                    return (Vec::new(), Some(reason));
                }
                // Each group is one metered work unit: its FVMine branch
                // expansions draw on a fresh per-unit step allowance, so
                // exhaustion is a property of the group, not the schedule.
                let mut meter = Meter::new(budget);
                let miner = FvMiner::new(FvMineConfig::new(min_support, self.cfg.max_pvalue));
                let items = miner
                    .mine_metered(&group.vectors, &mut meter)
                    .into_iter()
                    .map(|sv| {
                        // Line 9: nodes described by the vector = its exact
                        // support set, which FVMine already carries.
                        let nodes: Vec<(u32, u32)> = sv
                            .support_ids
                            .iter()
                            .map(|&i| group.members[i as usize])
                            .collect();
                        debug_assert!(nodes.iter().zip(&sv.support_ids).all(|(&(_, _), &i)| {
                            is_sub_vector(&sv.vector, &group.vectors[i as usize])
                        }));
                        (group.label, sv, nodes)
                    })
                    .collect();
                let stop = meter.stop_reason();
                (items, stop)
            });
        let mut work: Vec<WorkItem> = Vec::new();
        for (items, stop) in per_group {
            if truncation.is_none() {
                truncation = stop;
            }
            work.extend(items);
        }
        stats.significant_vectors = work.len();
        profile.feature_analysis = t1.elapsed();

        // ---- Phase 3: CutGraph + maximal FSM per set (lines 10-13) --------
        // Each work item is an independent region set — embarrassingly
        // parallel. Workers return per-item outcomes; counters and the
        // cross-vector dedup are merged on this thread in item order, so
        // the result is byte-identical for any thread count.
        struct SetOutcome {
            /// Reached the FSM step (at least two supporting nodes).
            mined: bool,
            truncated: bool,
            /// Produced no pattern: feature-space false positive.
            pruned: bool,
            /// Budget stop hit while (or before) mining this set.
            stop: Option<StopReason>,
            /// `(canonical code, rest of the answer)` pairs; the code is
            /// moved (never cloned) and becomes the dedup key.
            candidates: Vec<(DfsCode, CandidateRest)>,
        }
        let t2 = Instant::now();
        // Outer parallelism spreads the work items across cores; any cores
        // the item fan-out can't use go to the miners inside each item
        // (inner > 1 only when there are fewer items than cores). Both
        // miners are byte-deterministic at every thread count, so the
        // split never changes the output.
        let inner_threads =
            (crate::par::resolve_threads(self.cfg.threads) / work.len().max(1)).max(1);
        let outcomes: Vec<SetOutcome> =
            crate::par::par_map(self.cfg.threads, &work, |(label, sv, nodes)| {
                if nodes.len() < 2 {
                    return SetOutcome {
                        mined: false,
                        truncated: false,
                        pruned: false,
                        stop: None,
                        candidates: Vec::new(),
                    };
                }
                if let Some(reason) = control::check_start(budget) {
                    // Out of time / cancelled before this set: drop it and
                    // report why. Everything already mined stays exact.
                    return SetOutcome {
                        mined: false,
                        truncated: false,
                        pruned: false,
                        stop: Some(reason),
                        candidates: Vec::new(),
                    };
                }
                // Cut one region per described node; remember each region's
                // source graph for global-frequency accounting.
                let mut regions = GraphDb::from_parts(Vec::new(), db.labels().clone());
                let mut region_sources: Vec<u32> = Vec::with_capacity(nodes.len());
                for &(gid, node) in nodes {
                    let (region, _) = cut_graph(db.graph(gid as usize), node, self.cfg.radius);
                    regions.push(region);
                    region_sources.push(gid);
                }
                let support = self.cfg.fsm_support(regions.len());
                let (patterns, truncated, stop) =
                    self.maximal_fsm(&regions, support, inner_threads);
                let pruned = patterns.is_empty();
                let candidates = patterns
                    .into_iter()
                    .map(|p| {
                        let mut gids: Vec<u32> = p
                            .gids
                            .iter()
                            .map(|&rid| region_sources[rid as usize])
                            .collect();
                        gids.sort_unstable();
                        gids.dedup();
                        let rest = CandidateRest {
                            graph: p.graph,
                            source_vector: sv.vector.clone(),
                            vector_pvalue: sv.p_value,
                            vector_support: sv.support(),
                            group_label: *label,
                            set_size: nodes.len(),
                            fsm_support: p.support,
                            gids,
                        };
                        (p.code, rest)
                    })
                    .collect();
                SetOutcome {
                    mined: true,
                    truncated,
                    pruned,
                    stop,
                    candidates,
                }
            });
        // Deterministic merge: aggregate counters and dedup in item order.
        // Keep the most significant evidence per canonical code; the code
        // itself is transferred into the map key, so dedup allocates
        // nothing beyond the map entries.
        let mut best: HashMap<DfsCode, CandidateRest> = HashMap::new();
        for outcome in outcomes {
            if truncation.is_none() {
                truncation = outcome.stop;
            }
            if !outcome.mined {
                continue;
            }
            stats.region_sets += 1;
            if outcome.truncated {
                stats.truncated_sets += 1;
            }
            if outcome.pruned {
                stats.pruned_sets += 1;
                continue;
            }
            for (code, rest) in outcome.candidates {
                match best.entry(code) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        if rest.vector_pvalue < o.get().vector_pvalue {
                            o.insert(rest);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(rest);
                    }
                }
            }
        }
        profile.fsm = t2.elapsed();
        stats.match_steps = budget.map_or(0, |b| b.match_steps_spent());
        stats.canon_calls = budget.map_or(0, |b| b.canon_calls());
        stats.cert_hits = budget.map_or(0, |b| b.cert_hits());

        // Final sort with the canonical-code tiebreak key computed once per
        // subgraph (it allocates a Vec — computing it inside the comparator
        // would cost O(n log n) allocations).
        let code_key = |c: &DfsCode| {
            c.edges()
                .iter()
                .map(|e| (e.from, e.to, e.from_label, e.edge_label, e.to_label))
                .collect::<Vec<_>>()
        };
        let mut decorated: Vec<_> = best
            .into_iter()
            .map(|(code, rest)| (code_key(&code), rest.into_subgraph(code)))
            .collect();
        decorated.sort_by(|(ka, a), (kb, b)| {
            a.vector_pvalue
                .partial_cmp(&b.vector_pvalue)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.graph.edge_count().cmp(&a.graph.edge_count()))
                // Canonical-code tiebreak: HashMap iteration order must not
                // leak into the result.
                .then_with(|| ka.cmp(kb))
        });
        let subgraphs: Vec<SignificantSubgraph> = decorated.into_iter().map(|(_, sg)| sg).collect();
        let mut completion = match truncation {
            Some(reason) => Completion::Truncated(reason),
            None => Completion::Complete,
        };
        if stats.truncated_sets > 0 {
            completion = completion.merge(Completion::Truncated(StopReason::PatternCap));
        }
        Outcome::new(
            GraphSigResult {
                subgraphs,
                profile,
                stats,
            },
            completion,
        )
    }

    /// Run the configured miner with `threads` workers and return
    /// `(maximal patterns, hit the per-set pattern cap, budget stop)`.
    fn maximal_fsm(
        &self,
        regions: &GraphDb,
        support: usize,
        threads: usize,
    ) -> (Vec<Pattern>, bool, Option<StopReason>) {
        if regions.len() < support {
            return (Vec::new(), false, None);
        }
        let cap = self.cfg.max_patterns_per_set;
        let outcome = match self.cfg.fsm_backend {
            FsmBackend::Fsg => {
                let mut cfg = FsgConfig::new(support)
                    .with_max_edges(self.cfg.max_pattern_edges)
                    .with_max_patterns(cap)
                    .with_matcher(self.cfg.matcher)
                    .with_threads(threads);
                if let Some(b) = self.cfg.budget.as_ref() {
                    cfg = cfg.with_budget(b.clone());
                }
                Fsg::new(cfg).mine_outcome(regions)
            }
            FsmBackend::GSpan => {
                let mut cfg = MinerConfig::new(support)
                    .with_max_edges(self.cfg.max_pattern_edges)
                    .with_max_patterns(cap)
                    .with_threads(threads);
                if let Some(b) = self.cfg.budget.as_ref() {
                    cfg = cfg.with_budget(b.clone());
                }
                GSpan::new(cfg).mine_outcome(regions)
            }
        };
        let all = outcome.result;
        let truncated = all.len() >= cap;
        // The per-set pattern cap is already surfaced through `truncated`
        // (and the run's `truncated_sets` counter); only budget stops need
        // to flow out of here.
        let stop = match outcome.completion {
            Completion::Truncated(reason) if reason != StopReason::PatternCap => Some(reason),
            _ => None,
        };
        (
            graphsig_gspan::filter_maximal_with(all, self.cfg.matcher),
            truncated,
            stop,
        )
    }
}

/// Sanity-check helper used by tests and examples: verify with subgraph
/// isomorphism that `sg` really occurs in every database graph it claims.
pub fn verify_occurrences(sg: &SignificantSubgraph, db: &GraphDb) -> bool {
    sg.gids.iter().all(|&gid| {
        graphsig_graph::SubgraphMatcher::new(&sg.graph, db.graph(gid as usize)).exists()
    })
}

/// Convenience for experiments: the subgraph containing the most edges.
pub fn largest_subgraph(result: &GraphSigResult) -> Option<&SignificantSubgraph> {
    result.subgraphs.iter().max_by_key(|s| s.graph.edge_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_datagen::{aids_like, motifs, standard_alphabet};

    /// Fast config for small debug-mode tests.
    fn test_cfg() -> GraphSigConfig {
        GraphSigConfig {
            min_freq: 0.05,
            max_pvalue: 0.05,
            radius: 4,
            max_pattern_edges: 12,
            ..Default::default()
        }
    }

    #[test]
    fn mines_the_planted_core_from_actives() {
        // The paper's quality protocol (Sec. VI-C): run on the active set
        // only; the planted cores must surface.
        let data = aids_like(600, 42);
        let actives = data.active_subset();
        assert!(actives.len() >= 20);
        let result = GraphSig::new(test_cfg()).mine(&actives);
        assert!(
            !result.subgraphs.is_empty(),
            "no significant subgraphs found"
        );
        // Some mined subgraph must capture part of the AZT/FDT ring core:
        // it must contain an N atom bonded into a ring with C (all planted
        // cores share the C/N ring), with at least 4 edges.
        let alphabet = standard_alphabet();
        let n_label = alphabet.atom("N");
        let found_core = result
            .subgraphs
            .iter()
            .any(|sg| sg.graph.edge_count() >= 4 && sg.graph.node_labels().contains(&n_label));
        assert!(found_core, "no N-bearing core among mined subgraphs");
        // All claims verify in graph space.
        for sg in &result.subgraphs {
            assert!(verify_occurrences(sg, &actives), "bogus occurrence claim");
            assert!(sg.vector_pvalue <= 0.05 + 1e-12);
            assert!(sg.fsm_support >= 2);
        }
    }

    #[test]
    fn mined_patterns_occur_in_active_molecules_specifically() {
        let data = aids_like(600, 43);
        let actives = data.active_subset();
        let result = GraphSig::new(test_cfg()).mine(&actives);
        assert!(largest_subgraph(&result).is_some(), "nothing mined");
        // A conserved core must surface: some mined subgraph of >= 4 edges
        // present in a decent share of the actives. (Not necessarily the
        // largest answer — motif decorations can make the largest pattern
        // an over-specialized variant shared by fewer molecules.)
        let conserved = result
            .subgraphs
            .iter()
            .filter(|sg| sg.graph.edge_count() >= 4)
            .map(|sg| sg.gids.len() as f64 / actives.len() as f64)
            .fold(0.0f64, f64::max);
        assert!(conserved > 0.3, "no widely shared core: best {conserved}");
    }

    #[test]
    fn profile_accounts_all_phases() {
        let data = aids_like(120, 44);
        let result = GraphSig::new(test_cfg()).mine(&data.db);
        let p = result.profile;
        assert!(p.rwr > Duration::ZERO);
        assert!(p.feature_analysis > Duration::ZERO);
        let (a, b, c) = p.percentages();
        assert!((a + b + c - 100.0).abs() < 1e-6);
        assert!(result.stats.vectors > 0);
        assert!(result.stats.groups > 0);
    }

    #[test]
    fn no_duplicate_answer_subgraphs() {
        let data = aids_like(300, 45);
        let result = GraphSig::new(test_cfg()).mine(&data.active_subset());
        let mut codes: Vec<_> = result.subgraphs.iter().map(|s| s.code.clone()).collect();
        let before = codes.len();
        codes.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
        codes.dedup();
        assert_eq!(codes.len(), before, "duplicate subgraphs in answer set");
    }

    #[test]
    fn results_sorted_by_significance() {
        let data = aids_like(300, 46);
        let result = GraphSig::new(test_cfg()).mine(&data.active_subset());
        for w in result.subgraphs.windows(2) {
            assert!(w[0].vector_pvalue <= w[1].vector_pvalue + 1e-12);
        }
    }

    #[test]
    fn gspan_backend_also_works() {
        let data = aids_like(300, 47);
        let cfg = GraphSigConfig {
            fsm_backend: FsmBackend::GSpan,
            ..test_cfg()
        };
        let result = GraphSig::new(cfg).mine(&data.active_subset());
        assert!(!result.subgraphs.is_empty());
        for sg in &result.subgraphs {
            assert!(verify_occurrences(sg, &data.active_subset()));
        }
    }

    #[test]
    fn benzene_is_not_significant() {
        // Benzene is in ~70% of molecules regardless of class: in the
        // full database its regions look statistically unremarkable, so no
        // mined subgraph should BE benzene (Fig. 16's point). We mine the
        // full db (not the active subset) at the default p-value threshold.
        let data = aids_like(250, 48);
        let cfg = GraphSigConfig {
            min_freq: 0.05,
            max_pvalue: 0.01,
            radius: 3,
            max_pattern_edges: 10,
            ..Default::default()
        };
        let result = GraphSig::new(cfg).mine(&data.db);
        let alphabet = standard_alphabet();
        let benzene = motifs::benzene(&alphabet);
        for sg in &result.subgraphs {
            assert!(
                !graphsig_graph::are_isomorphic(&sg.graph, &benzene),
                "benzene reported as significant"
            );
        }
    }

    #[test]
    fn vf2_and_fast_matchers_mine_identical_subgraphs() {
        let data = aids_like(200, 50);
        let actives = data.active_subset();
        let mine = |kind| {
            let cfg = GraphSigConfig {
                matcher: kind,
                ..test_cfg()
            };
            GraphSig::new(cfg).mine(&actives)
        };
        let fast = mine(graphsig_graph::MatcherKind::Fast);
        let vf2 = mine(graphsig_graph::MatcherKind::Vf2);
        assert!(!fast.subgraphs.is_empty());
        assert_eq!(fast.subgraphs.len(), vf2.subgraphs.len());
        for (a, b) in fast.subgraphs.iter().zip(&vf2.subgraphs) {
            assert_eq!(a.code, b.code);
            assert_eq!(a.gids, b.gids);
        }
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let result = GraphSig::new(test_cfg()).mine(&GraphDb::new());
        assert!(result.subgraphs.is_empty());
        assert_eq!(result.stats.vectors, 0);
    }

    #[test]
    fn false_positive_sets_are_pruned_in_graph_space() {
        // Run on a heterogeneous database (full db, loose thresholds) and
        // check the pruning counter: some sets produce no common pattern.
        let data = aids_like(200, 49);
        let cfg = GraphSigConfig {
            min_freq: 0.02,
            max_pvalue: 0.3,
            radius: 6,
            fsm_freq: 0.95,
            max_pattern_edges: 10,
            ..Default::default()
        };
        let result = GraphSig::new(cfg).mine(&data.db);
        assert!(result.stats.region_sets > 0);
        // Not asserting pruned_sets > 0 strictly — but the counter must be
        // consistent.
        assert!(result.stats.pruned_sets <= result.stats.region_sets);
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use graphsig_datagen::aids_like;
    use graphsig_graph::{Budget, CancelToken};
    use std::time::Duration;

    fn cfg() -> GraphSigConfig {
        GraphSigConfig {
            min_freq: 0.05,
            max_pvalue: 0.05,
            radius: 3,
            max_pattern_edges: 8,
            ..Default::default()
        }
    }

    fn fingerprint(r: &GraphSigResult) -> Vec<String> {
        r.subgraphs
            .iter()
            .map(|s| format!("{} {:?}", s.code, s.gids))
            .collect()
    }

    #[test]
    fn unbudgeted_outcome_is_complete_and_matches_mine() {
        let data = aids_like(60, 11);
        let actives = data.active_subset();
        let miner = GraphSig::new(cfg());
        let outcome = miner.mine_outcome(&actives);
        assert!(outcome.completion.is_complete());
        assert_eq!(
            fingerprint(&outcome.result),
            fingerprint(&miner.mine(&actives))
        );
    }

    #[test]
    fn step_budget_truncation_is_identical_across_thread_counts() {
        let data = aids_like(60, 12);
        let actives = data.active_subset();
        for &max_steps in &[0u64, 5, 2_000] {
            let mut runs = Vec::new();
            for &threads in &[1usize, 2, 4, 8] {
                let c = GraphSigConfig { threads, ..cfg() }
                    .with_budget(Budget::unlimited().with_max_steps(max_steps));
                let outcome = GraphSig::new(c).mine_outcome(&actives);
                runs.push((fingerprint(&outcome.result), outcome.completion));
            }
            for w in runs.windows(2) {
                assert_eq!(w[0], w[1], "max_steps={max_steps}");
            }
            if max_steps == 0 {
                assert_eq!(runs[0].1, Completion::Truncated(StopReason::StepBudget));
                assert!(runs[0].0.is_empty(), "zero budget must yield no subgraphs");
            }
        }
    }

    #[test]
    fn budgeted_runs_attribute_matcher_steps() {
        let data = aids_like(60, 15);
        let actives = data.active_subset();
        // Generous budget: the run completes, but step accounting is live.
        let c = cfg().with_budget(Budget::unlimited().with_max_steps(u64::MAX / 2));
        let outcome = GraphSig::new(c).mine_outcome(&actives);
        assert!(outcome.completion.is_complete());
        assert!(
            outcome.result.stats.match_steps > 0,
            "no matcher steps attributed"
        );
        // The FSM phase runs through the canonical cache: both sides of
        // the canonicalization split are live on budgeted runs.
        assert!(
            outcome.result.stats.canon_calls > 0,
            "no canonicalizations attributed"
        );
        assert!(
            outcome.result.stats.cert_hits > 0,
            "no certificate hits attributed"
        );
        // Unbudgeted runs don't track the split.
        let plain = GraphSig::new(cfg()).mine_outcome(&actives);
        assert_eq!(plain.result.stats.match_steps, 0);
        assert_eq!(plain.result.stats.canon_calls, 0);
        assert_eq!(plain.result.stats.cert_hits, 0);
    }

    #[test]
    fn expired_deadline_yields_truncated_outcome() {
        let data = aids_like(40, 13);
        let c = cfg().with_budget(Budget::unlimited().with_deadline(Duration::ZERO));
        let outcome = GraphSig::new(c).mine_outcome(&data.db);
        assert_eq!(
            outcome.completion,
            Completion::Truncated(StopReason::Deadline)
        );
        assert!(outcome.result.subgraphs.is_empty());
    }

    #[test]
    fn cancelled_token_yields_truncated_outcome() {
        let data = aids_like(40, 14);
        let token = CancelToken::new();
        token.cancel();
        let c = cfg().with_budget(Budget::unlimited().with_cancel(token));
        let outcome = GraphSig::new(c).mine_outcome(&data.db);
        assert_eq!(
            outcome.completion,
            Completion::Truncated(StopReason::Cancelled)
        );
        assert!(outcome.result.subgraphs.is_empty());
    }
}

#[cfg(test)]
mod prepared_tests {
    use super::*;
    use graphsig_datagen::aids_like;

    fn cfg(min_freq: f64, max_pvalue: f64) -> GraphSigConfig {
        GraphSigConfig {
            min_freq,
            max_pvalue,
            radius: 4,
            max_pattern_edges: 12,
            max_patterns_per_set: 5_000,
            ..Default::default()
        }
    }

    #[test]
    fn prepared_sweep_matches_fresh_runs() {
        let data = aids_like(150, 77);
        let actives = data.active_subset();
        let base = GraphSig::new(cfg(0.1, 0.05));
        let prepared = base.prepare(&actives);
        assert!(prepared.vector_count() > 0);
        assert!(!prepared.groups().is_empty());
        for (mf, mp) in [(0.1, 0.05), (0.2, 0.02), (0.05, 0.1)] {
            let miner = GraphSig::new(cfg(mf, mp));
            let via_prepared = miner.mine_prepared(&actives, &prepared);
            let fresh = miner.mine(&actives);
            assert_eq!(
                via_prepared.subgraphs.len(),
                fresh.subgraphs.len(),
                "mf={mf} mp={mp}"
            );
            for (a, b) in via_prepared.subgraphs.iter().zip(&fresh.subgraphs) {
                assert_eq!(a.code, b.code);
                assert_eq!(a.gids, b.gids);
            }
        }
    }

    #[test]
    #[should_panic(expected = "different database")]
    fn prepared_rejects_other_database() {
        let d1 = aids_like(30, 1);
        let d2 = aids_like(40, 1);
        let miner = GraphSig::new(cfg(0.1, 0.05));
        let prepared = miner.prepare(&d1.db);
        miner.mine_prepared(&d2.db, &prepared);
    }

    #[test]
    #[should_panic(expected = "different window")]
    fn prepared_rejects_other_window() {
        let d = aids_like(30, 1);
        let miner = GraphSig::new(cfg(0.1, 0.05));
        let prepared = miner.prepare(&d.db);
        let counting = GraphSig::new(GraphSigConfig {
            window: crate::config::WindowKind::Count { radius: 3 },
            ..cfg(0.1, 0.05)
        });
        counting.mine_prepared(&d.db, &prepared);
    }
}
