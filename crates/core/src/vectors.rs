//! The database-wide RWR pass and label grouping (Alg. 2 lines 3–6).
//!
//! `D <- D + RWR(g)` for every graph, then `D_a <- {v in D : label(v) = a}`.
//! The RWR pass is embarrassingly parallel across graphs and runs through
//! the shared dynamically-scheduled executor ([`crate::par`]) when more
//! than one thread is configured (`threads == 0` means auto).

use graphsig_features::{
    graph_count_vectors, graph_feature_vectors, graph_feature_vectors_metered, FeatureSet,
    NodeVector, RwrConfig,
};
use graphsig_graph::control::{self, Budget, Meter, StopReason};
use graphsig_graph::{GraphDb, NodeLabel};

use crate::config::WindowKind;

/// All node vectors of one graph.
#[derive(Debug, Clone)]
pub struct GraphVectors {
    /// Graph id in the database.
    pub gid: u32,
    /// One vector per node, in node order.
    pub vectors: Vec<NodeVector>,
}

/// One label group `D_a`: every vector produced from a node labeled `a`,
/// across the whole database.
#[derive(Debug, Clone)]
pub struct LabelGroup {
    /// The atom type `a`.
    pub label: NodeLabel,
    /// `(gid, node)` provenance, parallel to `vectors`.
    pub members: Vec<(u32, u32)>,
    /// The discretized vectors.
    pub vectors: Vec<Vec<u8>>,
}

/// Run RWR on every node of every graph (Alg. 2 lines 3–4).
///
/// With `threads != 1` the graphs are distributed over scoped worker
/// threads by dynamic self-scheduling (`threads == 0` = auto); the output
/// is byte-identical to the sequential run for any thread count.
pub fn compute_all_vectors(
    db: &GraphDb,
    fs: &FeatureSet,
    rwr: &RwrConfig,
    threads: usize,
) -> Vec<GraphVectors> {
    compute_all_window_vectors(db, fs, rwr, WindowKind::Rwr, threads)
}

/// Window pass with an explicit mechanism: RWR (the paper) or plain
/// counting (the ablation strawman of Sec. II-C).
pub fn compute_all_window_vectors(
    db: &GraphDb,
    fs: &FeatureSet,
    rwr: &RwrConfig,
    window: WindowKind,
    threads: usize,
) -> Vec<GraphVectors> {
    compute_all_window_vectors_governed(db, fs, rwr, window, threads, None).0
}

/// [`compute_all_window_vectors`] under a resource [`Budget`]. Each graph is
/// one metered work unit (one RWR power-iteration sweep = one step), so
/// step-budget truncation is a per-graph property and the output is
/// byte-identical for any thread count. Truncated graphs still emit one
/// vector per node — computed from however many sweeps the budget allowed
/// (zero sweeps = the point mass at each source node) — so downstream phases
/// always see structurally complete input. The second return value is the
/// first stop reason encountered, in graph-id order.
pub fn compute_all_window_vectors_governed(
    db: &GraphDb,
    fs: &FeatureSet,
    rwr: &RwrConfig,
    window: WindowKind,
    threads: usize,
    budget: Option<&Budget>,
) -> (Vec<GraphVectors>, Option<StopReason>) {
    // Dynamic scheduling instead of static contiguous chunking: graph
    // sizes are skewed, and a contiguous run of large molecules used to
    // leave one worker as the straggler while the others sat idle.
    let per_graph: Vec<(GraphVectors, Option<StopReason>)> =
        crate::par::par_map_range(threads, db.len(), |gid| {
            let g = db.graph(gid);
            let early = control::check_start(budget);
            let (vectors, stop) = match window {
                WindowKind::Rwr => {
                    if early.is_some() {
                        // Already cancelled / past the deadline: run zero
                        // sweeps so every node still gets a well-formed
                        // (point-mass) vector.
                        let degenerate = RwrConfig {
                            max_iters: 0,
                            ..*rwr
                        };
                        (graph_feature_vectors(g, fs, &degenerate), early)
                    } else {
                        let mut meter = Meter::new(budget);
                        let v = graph_feature_vectors_metered(g, fs, rwr, &mut meter);
                        let stop = meter.stop_reason();
                        (v, stop)
                    }
                }
                // The counting window has no iterative inner loop to meter;
                // only the start-of-unit deadline/cancel check applies.
                WindowKind::Count { radius } => (graph_count_vectors(g, radius, fs), early),
            };
            (
                GraphVectors {
                    gid: gid as u32,
                    vectors,
                },
                stop,
            )
        });
    let mut out = Vec::with_capacity(per_graph.len());
    let mut truncation: Option<StopReason> = None;
    for (gv, stop) in per_graph {
        if truncation.is_none() {
            truncation = stop;
        }
        out.push(gv);
    }
    (out, truncation)
}

/// Group all vectors by source-node label (Alg. 2 line 6), returning the
/// groups sorted by label id. Empty groups are omitted.
pub fn group_by_label(all: &[GraphVectors]) -> Vec<LabelGroup> {
    let max_label = all
        .iter()
        .flat_map(|gv| gv.vectors.iter().map(|v| v.label))
        .max();
    let Some(max_label) = max_label else {
        return Vec::new();
    };
    let mut groups: Vec<LabelGroup> = (0..=max_label)
        .map(|l| LabelGroup {
            label: l,
            members: Vec::new(),
            vectors: Vec::new(),
        })
        .collect();
    for gv in all {
        for v in &gv.vectors {
            let g = &mut groups[v.label as usize];
            g.members.push((gv.gid, v.node));
            g.vectors.push(v.bins.clone());
        }
    }
    groups.retain(|g| !g.vectors.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsig_datagen::aids_like;
    use graphsig_features::FeatureSet;

    #[test]
    fn parallel_matches_sequential() {
        let data = aids_like(40, 5);
        let fs = FeatureSet::for_chemical(&data.db, 5);
        let rwr = RwrConfig::default();
        let seq = compute_all_vectors(&data.db, &fs, &rwr, 1);
        let par = compute_all_vectors(&data.db, &fs, &rwr, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.gid, b.gid);
            assert_eq!(a.vectors, b.vectors);
        }
    }

    #[test]
    fn one_vector_per_node() {
        let data = aids_like(10, 9);
        let fs = FeatureSet::for_chemical(&data.db, 5);
        let all = compute_all_vectors(&data.db, &fs, &RwrConfig::default(), 1);
        for gv in &all {
            assert_eq!(
                gv.vectors.len(),
                data.db.graph(gv.gid as usize).node_count()
            );
        }
    }

    #[test]
    fn groups_partition_all_vectors() {
        let data = aids_like(15, 21);
        let fs = FeatureSet::for_chemical(&data.db, 5);
        let all = compute_all_vectors(&data.db, &fs, &RwrConfig::default(), 1);
        let total: usize = all.iter().map(|gv| gv.vectors.len()).sum();
        let groups = group_by_label(&all);
        let grouped: usize = groups.iter().map(|g| g.vectors.len()).sum();
        assert_eq!(total, grouped);
        // Provenance is consistent: the node really has the group's label.
        for g in &groups {
            for &(gid, node) in &g.members {
                assert_eq!(data.db.graph(gid as usize).node_label(node), g.label);
            }
        }
        // Sorted by label, no empties.
        for w in groups.windows(2) {
            assert!(w[0].label < w[1].label);
        }
        assert!(groups.iter().all(|g| !g.vectors.is_empty()));
    }

    #[test]
    fn count_window_parallel_matches_sequential() {
        let data = aids_like(30, 8);
        let fs = FeatureSet::for_chemical(&data.db, 5);
        let rwr = RwrConfig::default();
        let seq = compute_all_window_vectors(
            &data.db,
            &fs,
            &rwr,
            crate::config::WindowKind::Count { radius: 3 },
            1,
        );
        let par = compute_all_window_vectors(
            &data.db,
            &fs,
            &rwr,
            crate::config::WindowKind::Count { radius: 3 },
            4,
        );
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.vectors, b.vectors);
        }
        // Count vectors differ from RWR vectors (different mechanism).
        let rwr_vecs = compute_all_vectors(&data.db, &fs, &rwr, 1);
        assert!(seq
            .iter()
            .zip(&rwr_vecs)
            .any(|(a, b)| a.vectors != b.vectors));
    }

    #[test]
    fn empty_database() {
        let db = GraphDb::new();
        let data = aids_like(5, 1);
        let fs = FeatureSet::for_chemical(&data.db, 5);
        let all = compute_all_vectors(&db, &fs, &RwrConfig::default(), 2);
        assert!(all.is_empty());
        assert!(group_by_label(&all).is_empty());
    }
}
