//! Human-readable reports for mined subgraphs.
//!
//! A [`SignificantSubgraph`](crate::SignificantSubgraph) carries both
//! graph-space structure and feature-space evidence; this module renders
//! them with label and feature *names* so a chemist (or a test log reader)
//! can see what was found and why it was surprising.

use std::fmt::Write as _;

use graphsig_features::FeatureSet;
use graphsig_graph::{Completion, GraphDb, LabelTable};

use crate::pipeline::SignificantSubgraph;
use crate::pipeline::{GraphSigResult, RunStats};

/// Multi-line description of one answer: structure, statistics, and the
/// non-zero features of the sub-feature vector that discovered it.
pub fn describe(sg: &SignificantSubgraph, fs: &FeatureSet, labels: &LabelTable) -> String {
    let mut out = String::new();
    let atoms: Vec<String> = sg
        .graph
        .node_labels()
        .iter()
        .map(|&l| labels.node_name(l).unwrap_or("?").to_string())
        .collect();
    out.push_str(&format!(
        "subgraph: {} atoms [{}], {} bonds\n",
        atoms.len(),
        atoms.join(" "),
        sg.graph.edge_count()
    ));
    for e in sg.graph.edges() {
        out.push_str(&format!(
            "  {}{} -{}- {}{}\n",
            atoms[e.u as usize],
            e.u,
            labels.edge_name(e.label).unwrap_or("?"),
            atoms[e.v as usize],
            e.v
        ));
    }
    out.push_str(&format!(
        "evidence: p-value {:.3e} at support {} (group atom:{}), found in {} graphs via {} regions\n",
        sg.vector_pvalue,
        sg.vector_support,
        labels.node_name(sg.group_label).unwrap_or("?"),
        sg.gids.len(),
        sg.set_size,
    ));
    out.push_str("discovering vector (non-zero features):\n");
    for (i, &v) in sg.source_vector.iter().enumerate() {
        if v > 0 {
            out.push_str(&format!("  {} >= {}\n", fs.name(i), v));
        }
    }
    out
}

/// One-line run summary: answer count, counters, and — when the run was
/// budget-governed — whether it completed or what cut it short. Used by the
/// CLI and the benchmark harness so truncation is never silent.
pub fn describe_run(result: &GraphSigResult, completion: Completion) -> String {
    let RunStats {
        vectors,
        groups,
        significant_vectors,
        region_sets,
        pruned_sets,
        truncated_sets,
        match_steps,
        canon_calls,
        cert_hits,
    } = result.stats;
    let mut line = format!(
        "{} subgraphs ({}); {} vectors in {} groups -> {} significant, \
         {} region sets ({} pruned, {} truncated)",
        result.subgraphs.len(),
        completion,
        vectors,
        groups,
        significant_vectors,
        region_sets,
        pruned_sets,
        truncated_sets,
    );
    // On budgeted runs, name how much of the cooperative step spend was
    // isomorphism matching — the usual suspect when a step budget bites.
    if match_steps > 0 {
        let _ = write!(line, "; {match_steps} matcher steps");
    }
    // Canonicalization economics (also budgeted-run-only): full min-code
    // computations vs. queries short-circuited through certificates.
    if canon_calls > 0 || cert_hits > 0 {
        let _ = write!(line, "; {canon_calls} canon calls, {cert_hits} cert hits");
    }
    line
}

/// The canonical machine-parseable rendering of a mined answer set: for
/// each of the first `top` subgraphs, a `# subgraph i: ...` statistics
/// comment followed by the subgraph as a gSpan transaction block. This is
/// the CLI's `mine` stdout *and* the `graphsig serve` mine payload — one
/// implementation, so the two are byte-identical by construction.
pub fn render_subgraphs(db: &GraphDb, result: &GraphSigResult, top: usize) -> String {
    let mut out = String::new();
    for (i, sg) in result.subgraphs.iter().take(top).enumerate() {
        let _ = writeln!(
            out,
            "# subgraph {i}: p-value {:.6e}, support {} graphs ({:.3}%), {} edges",
            sg.vector_pvalue,
            sg.gids.len(),
            100.0 * sg.frequency(db.len()),
            sg.graph.edge_count()
        );
        let one = GraphDb::from_parts(vec![sg.graph.clone()], db.labels().clone());
        out.push_str(&graphsig_graph::write_transactions(&one));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphSig, GraphSigConfig};
    use graphsig_datagen::aids_like;
    use graphsig_features::FeatureSet;

    #[test]
    fn describe_names_everything() {
        let data = aids_like(200, 5);
        let actives = data.active_subset();
        let fs = FeatureSet::for_chemical(&actives, 5);
        let cfg = GraphSigConfig {
            min_freq: 0.1,
            max_pvalue: 0.05,
            radius: 4,
            max_pattern_edges: 10,
            max_patterns_per_set: 3_000,
            ..Default::default()
        };
        let result = GraphSig::new(cfg).mine_with_features(&actives, &fs);
        assert!(!result.subgraphs.is_empty());
        let text = describe(&result.subgraphs[0], &fs, actives.labels());
        assert!(text.contains("subgraph:"));
        assert!(text.contains("evidence: p-value"));
        assert!(text.contains(">="), "no feature evidence lines:\n{text}");
        // Names resolved, not raw ids.
        assert!(!text.contains('?'), "unresolved label in:\n{text}");
    }

    #[test]
    fn describe_run_shows_completion() {
        use graphsig_graph::{Completion, StopReason};
        let data = aids_like(60, 6);
        let cfg = GraphSigConfig {
            min_freq: 0.1,
            max_pvalue: 0.05,
            radius: 3,
            max_pattern_edges: 8,
            ..Default::default()
        };
        let outcome = GraphSig::new(cfg).mine_outcome(&data.db);
        let line = describe_run(&outcome.result, outcome.completion);
        assert!(line.contains("subgraphs"), "{line}");
        assert!(line.contains("region sets"), "{line}");
        let truncated = describe_run(&outcome.result, Completion::Truncated(StopReason::Deadline));
        assert!(
            truncated.contains("truncated (deadline exceeded)"),
            "{truncated}"
        );
    }
}
