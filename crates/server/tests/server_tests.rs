//! Integration tests for the resident mining service.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use graphsig_core::{render_subgraphs, GraphSig, GraphSigConfig};
use graphsig_server::protocol::parse_response_stream;
use graphsig_server::{Server, ServerConfig, SharedWriter, Status};

#[derive(Clone, Default)]
struct Sink(Arc<Mutex<Vec<u8>>>);

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn writer(sink: &Sink) -> SharedWriter {
    Arc::new(Mutex::new(Box::new(sink.clone())))
}

/// Wait until the sink holds a response for every id in `ids`.
fn wait_all(sink: &Sink, ids: &[String]) -> Vec<(graphsig_server::ResponseHeader, Vec<u8>)> {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let buf = sink.0.lock().unwrap().clone();
        if let Ok(responses) = parse_response_stream(&buf) {
            if ids
                .iter()
                .all(|id| responses.iter().any(|(h, _)| &h.id == id))
            {
                return responses;
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for responses; stream so far:\n{}",
            String::from_utf8_lossy(&buf)
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn smoke_scenario_passes() {
    // The full fault-injection gauntlet CI runs via `graphsig serve
    // --smoke`: backpressure, cancellation, panic isolation, mixed
    // budgets, cache observability, forced drain.
    graphsig_server::smoke::run().expect("smoke scenario");
}

#[test]
fn concurrent_mixed_budget_load_is_byte_identical_to_one_shot() {
    let server = Server::new(ServerConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line("load id=L dataset=d gen=aids count=100 seed=3", &out);
    wait_all(&sink, &["L".to_string()]);

    // 12 concurrent submissions from 4 client threads: identical
    // unbudgeted requests interleaved with step-budgeted and
    // deadline-budgeted ones.
    let mine = "mine dataset=d min_freq=0.05 max_pvalue=0.05 radius=3";
    let mut ids = Vec::new();
    std::thread::scope(|s| {
        for t in 0..4 {
            let out = Arc::clone(&out);
            let server = &server;
            ids.extend((0..3).map(|i| format!("t{t}r{i}")));
            s.spawn(move || {
                for (i, extra) in ["", " max_steps=100", " timeout_ms=1"].iter().enumerate() {
                    server.dispatch_line(&format!("{mine} id=t{t}r{i}{extra}"), &out);
                }
            });
        }
    });
    let responses = wait_all(&sink, &ids);

    let db = graphsig_datagen::aids_like(100, 3).db;
    let cfg = GraphSigConfig {
        min_freq: 0.05,
        max_pvalue: 0.05,
        radius: 3,
        ..GraphSigConfig::default()
    };
    let unbudgeted = render_subgraphs(&db, &GraphSig::new(cfg.clone()).mine(&db), usize::MAX);
    let budgeted =
        GraphSig::new(cfg.with_budget(graphsig_core::Budget::unlimited().with_max_steps(100)))
            .mine_outcome(&db);
    let budgeted_payload = render_subgraphs(&db, &budgeted.result, usize::MAX);

    for t in 0..4 {
        // Unbudgeted requests: byte-identical to the one-shot pipeline,
        // even though they raced budgeted requests for workers + cache.
        let (h, body) = responses
            .iter()
            .find(|(h, _)| h.id == format!("t{t}r0"))
            .expect("unbudgeted response");
        assert_eq!(h.status, Status::Ok);
        assert_eq!(h.field("completion"), Some("complete"));
        assert_eq!(
            std::str::from_utf8(body).unwrap(),
            unbudgeted,
            "client {t}: unbudgeted payload differs from one-shot"
        );
        // Step-budgeted requests: deterministic truncation, identical to
        // the one-shot budgeted run (cache bypassed by design).
        let (h, body) = responses
            .iter()
            .find(|(h, _)| h.id == format!("t{t}r1"))
            .expect("step-budgeted response");
        assert_eq!(h.field("cached"), Some("bypass"));
        assert_eq!(
            h.field("completion"),
            Some(budgeted.completion.to_string().as_str())
        );
        assert_eq!(std::str::from_utf8(body).unwrap(), budgeted_payload);
        // Deadline requests: structured ok, complete or truncated.
        let (h, _) = responses
            .iter()
            .find(|(h, _)| h.id == format!("t{t}r2"))
            .expect("deadline response");
        assert_eq!(h.status, Status::Ok);
    }
    // At most one window pass was prepared across all 8 cache-eligible
    // requests (4 unbudgeted + 4 deadline).
    server.dispatch_line("stats id=S dataset=d", &out);
    let responses = wait_all(&sink, &["S".to_string()]);
    let (h, _) = responses.iter().find(|(h, _)| h.id == "S").unwrap();
    assert_eq!(h.field("prepared_misses"), Some("1"));
    assert_eq!(h.field("prepared_bypasses"), Some("4"));
    server.join();
}

#[test]
fn sweep_payload_segments_match_individual_freq_calls() {
    let server = Server::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line("load id=L dataset=d gen=aids count=60 seed=5", &out);
    wait_all(&sink, &["L".to_string()]);
    server.dispatch_line("freq id=f12 dataset=d min_support=12 max_edges=5", &out);
    server.dispatch_line("freq id=f6 dataset=d min_support=6 max_edges=5", &out);
    server.dispatch_line(
        "freq id=fv dataset=d min_support=6 max_edges=5 matcher=vf2",
        &out,
    );
    server.dispatch_line("sweep id=s dataset=d supports=12,6 max_edges=5", &out);
    let ids: Vec<String> = ["f12", "f6", "fv", "s"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let responses = wait_all(&sink, &ids);
    let body = |id: &str| -> String {
        let (h, b) = responses.iter().find(|(h, _)| h.id == id).expect(id);
        assert_eq!(h.status, Status::Ok, "{id}");
        String::from_utf8(b.clone()).expect("utf-8 payload")
    };
    // The vf2 engine produces the same frequent patterns as the default
    // fast engine — byte-identical payloads.
    assert_eq!(body("f6"), body("fv"), "vf2 vs fast freq payloads differ");
    // Each sweep segment (after its marker line) is byte-identical to the
    // corresponding individual freq payload.
    let sweep = body("s");
    let (h, _) = responses.iter().find(|(h, _)| h.id == "s").unwrap();
    assert_eq!(h.field("supports"), Some("2"));
    assert_eq!(h.field("completion"), Some("complete"));
    let markers: Vec<usize> = sweep
        .match_indices("# sweep support ")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(markers.len(), 2, "expected two sweep segments:\n{sweep}");
    let segment = |k: usize| -> &str {
        let start = markers[k] + sweep[markers[k]..].find('\n').unwrap() + 1;
        let end = if k + 1 < markers.len() {
            markers[k + 1]
        } else {
            sweep.len()
        };
        &sweep[start..end]
    };
    assert_eq!(segment(0), body("f12"), "support=12 segment differs");
    assert_eq!(segment(1), body("f6"), "support=6 segment differs");
    // Empty and zero support lists are structured errors.
    server.dispatch_line("sweep id=z dataset=d supports=0,3", &out);
    let responses = wait_all(&sink, &["z".to_string()]);
    let (h, _) = responses.iter().find(|(h, _)| h.id == "z").unwrap();
    assert_eq!(h.status, Status::Error);
    server.join();
}

/// Poll the server snapshot until `pred` holds (or panic after 30s).
fn wait_snapshot(
    server: &Server,
    what: &str,
    pred: impl Fn(&graphsig_server::ServerSnapshot) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred(&server.snapshot()) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn identical_concurrent_mines_coalesce_to_one_run() {
    let server = Server::new(ServerConfig {
        workers: 4,
        queue_capacity: 64,
        allow_inject: true,
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line("load id=L dataset=d gen=aids count=80 seed=7", &out);
    wait_all(&sink, &["L".to_string()]);

    // A slow leader holds the flight open; two byte-identical requests
    // arrive while it sleeps and must attach as riders rather than
    // running (or even preparing) anything themselves.
    let mine = "mine dataset=d min_freq=0.05 max_pvalue=0.05 radius=3 sleep_ms=1500";
    server.dispatch_line(&format!("{mine} id=lead"), &out);
    wait_snapshot(&server, "leader to start", |s| s.active >= 1);
    server.dispatch_line(&format!("{mine} id=ride1"), &out);
    server.dispatch_line(&format!("{mine} id=ride2"), &out);
    // The coalesce counter proves both attached to the in-flight run
    // *before* it completed — not that they merely ran the same job.
    wait_snapshot(&server, "riders to attach", |s| s.coalesce_riders == 2);

    let ids: Vec<String> = ["lead", "ride1", "ride2"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let responses = wait_all(&sink, &ids);
    let body = |id: &str| -> &[u8] {
        let (h, b) = responses.iter().find(|(h, _)| h.id == id).expect(id);
        assert_eq!(h.status, Status::Ok, "{id}");
        assert_eq!(h.field("completion"), Some("complete"), "{id}");
        b
    };
    assert_eq!(body("lead"), body("ride1"), "rider payload differs");
    assert_eq!(body("lead"), body("ride2"), "rider payload differs");

    let snap = server.snapshot();
    assert_eq!(snap.coalesce_leads, 1, "exactly one flight led");
    assert_eq!(snap.coalesce_riders, 2, "both followers attached");
    // One prepare across three requests: the window pass ran once.
    server.dispatch_line("stats id=S dataset=d", &out);
    let responses = wait_all(&sink, &["S".to_string()]);
    let (h, _) = responses.iter().find(|(h, _)| h.id == "S").unwrap();
    assert_eq!(h.field("prepared_misses"), Some("1"));
    assert_eq!(h.field("prepared_hits"), Some("0"));
    server.join();
}

#[test]
fn rider_cancel_detaches_without_cancelling_the_shared_run() {
    let server = Server::new(ServerConfig {
        workers: 4,
        allow_inject: true,
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line("load id=L dataset=d gen=aids count=40 seed=2", &out);
    wait_all(&sink, &["L".to_string()]);

    let mine = "mine dataset=d min_freq=0.05 max_pvalue=0.05 radius=3 sleep_ms=60000";
    server.dispatch_line(&format!("{mine} id=lead"), &out);
    wait_snapshot(&server, "leader to start", |s| s.active >= 1);
    server.dispatch_line(&format!("{mine} id=ride"), &out);
    wait_snapshot(&server, "rider to attach", |s| s.coalesce_riders == 1);

    // Cancelling the rider detaches it immediately: it answers
    // `truncated (cancelled)` with full dataset identity while the
    // shared run keeps going for the leader.
    server.dispatch_line("cancel id=c1 target=ride", &out);
    let responses = wait_all(&sink, &["c1".to_string(), "ride".to_string()]);
    let (h, _) = responses.iter().find(|(h, _)| h.id == "c1").unwrap();
    assert_eq!(h.field("found"), Some("true"));
    let (h, _) = responses.iter().find(|(h, _)| h.id == "ride").unwrap();
    assert_eq!(h.status, Status::Ok);
    assert_eq!(h.field("completion"), Some("truncated (cancelled)"));
    assert_eq!(h.field("dataset"), Some("d"));
    assert_eq!(h.field("version"), Some("1"));
    let snap = server.snapshot();
    assert_eq!(snap.active, 1, "shared run must survive a rider cancel");

    // Cancelling the last participant cancels the group token: the
    // 60s sleep wakes immediately instead of running out the clock.
    server.dispatch_line("cancel id=c2 target=lead", &out);
    let responses = wait_all(&sink, &["c2".to_string(), "lead".to_string()]);
    let (h, _) = responses.iter().find(|(h, _)| h.id == "lead").unwrap();
    assert_eq!(h.field("completion"), Some("truncated (cancelled)"));
    wait_snapshot(&server, "workers to idle", |s| s.active == 0);
    server.join();
}

#[test]
fn leader_panic_fails_every_rider() {
    let server = Server::new(ServerConfig {
        workers: 4,
        allow_inject: true,
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line("load id=L dataset=d gen=aids count=40 seed=2", &out);
    wait_all(&sink, &["L".to_string()]);

    let mine = "mine dataset=d min_freq=0.05 max_pvalue=0.05 radius=3 sleep_ms=1500 inject=panic";
    server.dispatch_line(&format!("{mine} id=lead"), &out);
    wait_snapshot(&server, "leader to start", |s| s.active >= 1);
    server.dispatch_line(&format!("{mine} id=ride"), &out);
    wait_snapshot(&server, "rider to attach", |s| s.coalesce_riders == 1);

    let responses = wait_all(&sink, &["lead".to_string(), "ride".to_string()]);
    for id in ["lead", "ride"] {
        let (h, _) = responses.iter().find(|(h, _)| h.id == id).expect(id);
        assert_eq!(h.status, Status::Error, "{id}");
        assert!(h.field("error").unwrap().contains("panicked"), "{id}");
    }
    // One panic isolated — the rider's failure is the same panic, not a
    // second one — and the server keeps serving.
    assert_eq!(server.snapshot().panics, 1);
    server.dispatch_line("ping id=alive", &out);
    wait_all(&sink, &["alive".to_string()]);
    server.join();
}

#[test]
fn sweep_segments_do_not_starve_other_requests() {
    // One worker, one long sweep: per-threshold segments queue behind
    // regular requests, so a freq submitted mid-sweep completes before
    // the sweep does instead of waiting out every threshold.
    let server = Server::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line("load id=L dataset=d gen=aids count=200 seed=9", &out);
    wait_all(&sink, &["L".to_string()]);
    server.dispatch_line(
        "sweep id=s dataset=d supports=80,60,40,30,20,10 max_edges=5",
        &out,
    );
    // Catch the sweep mid-flight with segments still queued.
    wait_snapshot(&server, "sweep segments to queue", |s| s.segments >= 3);
    server.dispatch_line("freq id=m dataset=d min_support=100 max_edges=3", &out);
    let responses = wait_all(&sink, &["m".to_string(), "s".to_string()]);
    let pos = |id: &str| responses.iter().position(|(h, _)| h.id == id).expect(id);
    assert!(
        pos("m") < pos("s"),
        "freq response must precede the sweep's: segments hogged the worker"
    );
    let (h, _) = &responses[pos("s")];
    assert_eq!(h.status, Status::Ok);
    assert_eq!(h.field("completion"), Some("complete"));
    server.join();
}

#[test]
fn busy_rejected_request_is_never_cancellable() {
    // Regression: `submit` used to register the request id in the
    // inflight table *before* the capacity check, so a cancel racing a
    // busy rejection could observe (and report found=true for) a request
    // the server never accepted.
    let server = Server::new(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        allow_inject: true,
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line("load id=L dataset=d gen=aids count=30 seed=1", &out);
    wait_all(&sink, &["L".to_string()]);
    // Pin the only worker, then fill the only queue slot.
    let cheap = "min_freq=0.05 max_pvalue=0.05 radius=3";
    server.dispatch_line(
        &format!("mine id=pin dataset=d {cheap} sleep_ms=60000"),
        &out,
    );
    wait_snapshot(&server, "pin to start", |s| s.active == 1);
    server.dispatch_line(&format!("mine id=fill dataset=d {cheap}"), &out);
    wait_snapshot(&server, "queue to fill", |s| s.queued == 1);

    for i in 0..8 {
        server.dispatch_line(&format!("mine id=race{i} dataset=d {cheap}"), &out);
        server.dispatch_line(&format!("cancel id=c{i} target=race{i}"), &out);
    }
    let ids: Vec<String> = (0..8)
        .flat_map(|i| [format!("race{i}"), format!("c{i}")])
        .collect();
    let responses = wait_all(&sink, &ids);
    for i in 0..8 {
        let (h, _) = responses
            .iter()
            .find(|(h, _)| h.id == format!("race{i}"))
            .unwrap();
        assert_eq!(h.status, Status::Busy, "race{i} must be busy-rejected");
        let (h, _) = responses
            .iter()
            .find(|(h, _)| h.id == format!("c{i}"))
            .unwrap();
        assert_eq!(
            h.field("found"),
            Some("false"),
            "cancel c{i} observed a token for a request the server rejected"
        );
    }
    assert_eq!(server.snapshot().busy_rejected, 8);
    server.dispatch_line("cancel id=cp target=pin", &out);
    wait_all(&sink, &["pin".to_string(), "fill".to_string()]);
    server.join();
}

#[test]
fn duplicate_ids_and_unknown_datasets_are_structured_errors() {
    let server = Server::new(ServerConfig {
        workers: 1,
        allow_inject: true,
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line("mine id=m1 dataset=nope", &out);
    let responses = wait_all(&sink, &["m1".to_string()]);
    let (h, _) = responses.iter().find(|(h, _)| h.id == "m1").unwrap();
    assert_eq!(h.status, Status::Error);
    assert!(h.field("error").unwrap().contains("unknown dataset"));

    // A duplicate id while the first is still in flight is rejected.
    server.dispatch_line("load id=L dataset=d gen=aids count=30 seed=1", &out);
    wait_all(&sink, &["L".to_string()]);
    server.dispatch_line("mine id=dup dataset=d sleep_ms=2000", &out);
    // Wait until it is executing, then collide.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.snapshot().active == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    server.dispatch_line("mine id=dup dataset=d", &out);
    server.dispatch_line("cancel id=c target=dup", &out);
    let responses = wait_all(&sink, &["c".to_string()]);
    let dup_errors = responses
        .iter()
        .filter(|(h, _)| h.id == "dup" && h.status == Status::Error)
        .count();
    assert_eq!(dup_errors, 1, "second 'dup' submission must error");
    server.join();
}

#[test]
fn malformed_lines_get_error_responses_and_server_survives() {
    let server = Server::new(ServerConfig::default());
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line("gibberish", &out);
    server.dispatch_line("mine id=x radius=", &out);
    server.dispatch_line("mine id=y dataset=d bogus=1", &out);
    server.dispatch_line("", &out); // ignored
    server.dispatch_line("# comment", &out); // ignored
    server.dispatch_line("ping id=alive", &out);
    let responses = wait_all(&sink, &["alive".to_string()]);
    assert_eq!(responses.len(), 4, "three errors + one pong");
    assert!(responses
        .iter()
        .filter(|(h, _)| h.id != "alive")
        .all(|(h, _)| h.status == Status::Error));
    // The scavenged id correlates the malformed mine line.
    assert!(responses.iter().any(|(h, _)| h.id == "y"));
    server.join();
}

#[test]
fn eof_shutdown_via_connection_loop_drains() {
    // serve_connection on an in-memory request script: every request is
    // answered, shutdown confirms, and the loop returns.
    let server = Server::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let script = "load id=L dataset=d gen=aids count=40 seed=2\n\
                  mine id=m dataset=d min_freq=0.05 max_pvalue=0.05 radius=3\n\
                  shutdown id=bye\n\
                  mine id=never dataset=d\n";
    server.serve_connection(std::io::Cursor::new(script), writer(&sink));
    let buf = sink.0.lock().unwrap().clone();
    let responses = parse_response_stream(&buf).expect("clean stream");
    let ids: Vec<&str> = responses.iter().map(|(h, _)| h.id.as_str()).collect();
    assert!(ids.contains(&"L") && ids.contains(&"m") && ids.contains(&"bye"));
    // The post-shutdown line is never read: the loop stopped at shutdown.
    assert!(!ids.contains(&"never"));
    let (bye, _) = responses.iter().find(|(h, _)| h.id == "bye").unwrap();
    assert_eq!(bye.status, Status::Ok);
    assert_eq!(bye.field("forced"), Some("false"), "drain was graceful");
    assert!(server.is_terminated());
    server.join();
}

#[test]
fn governor_rejects_oversized_loads_evicts_cold_caches_and_keeps_serving() {
    let server = Server::new(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        max_resident_bytes: Some(4 * 1024 * 1024),
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);

    // A dataset that fits, mined once to warm its prepared cache.
    server.dispatch_line("load id=l1 dataset=d gen=aids count=80 seed=9", &out);
    server.dispatch_line(
        "mine id=m1 dataset=d min_freq=0.05 max_pvalue=0.05 radius=3",
        &out,
    );
    let responses = wait_all(&sink, &["l1".into(), "m1".into()]);
    let (l1, _) = responses.iter().find(|(h, _)| h.id == "l1").unwrap();
    assert_eq!(l1.status, Status::Ok);
    let (m1, body1) = responses.iter().find(|(h, _)| h.id == "m1").unwrap();
    assert_eq!(m1.status, Status::Ok);
    let body1 = body1.clone();

    // A load that cannot fit even after eviction: structured rejection
    // that discloses the accounting, with the server still up.
    server.dispatch_line("load id=big dataset=huge gen=aids count=9000 seed=1", &out);
    let responses = wait_all(&sink, &["big".into()]);
    let (big, _) = responses.iter().find(|(h, _)| h.id == "big").unwrap();
    assert_eq!(big.status, Status::Error, "{big:?}");
    assert_eq!(big.field("code"), Some("resource_exhausted"));
    for key in ["requested_bytes", "resident_bytes", "max_resident_bytes"] {
        assert!(big.field(key).is_some(), "rejection must report {key}");
    }

    // The attempt LRU-evicted the cold prepared cache before giving up,
    // and stats exposes both the eviction count and residency.
    server.dispatch_line("stats id=s", &out);
    let responses = wait_all(&sink, &["s".into()]);
    let (s, _) = responses.iter().find(|(h, _)| h.id == "s").unwrap();
    assert_eq!(s.status, Status::Ok);
    assert!(
        s.field("evictions").and_then(|v| v.parse::<u64>().ok()) >= Some(1),
        "eviction attempt must be counted: {s:?}"
    );
    assert!(
        s.field("resident_bytes")
            .and_then(|v| v.parse::<u64>().ok())
            > Some(0),
        "{s:?}"
    );
    assert_eq!(s.field("max_resident_bytes"), Some("4194304"));
    assert_eq!(
        s.field("datasets"),
        Some("1"),
        "rejected load must not register"
    );

    // Mining after the rejection (and the cache eviction) still serves
    // byte-identical results.
    server.dispatch_line(
        "mine id=m2 dataset=d min_freq=0.05 max_pvalue=0.05 radius=3",
        &out,
    );
    let responses = wait_all(&sink, &["m2".into()]);
    let (m2, body2) = responses.iter().find(|(h, _)| h.id == "m2").unwrap();
    assert_eq!(m2.status, Status::Ok);
    assert_eq!(
        body2, &body1,
        "mine after eviction must match the warm-cache run"
    );

    server.shutdown_now();
    server.join();
}

#[test]
fn admitted_load_within_ceiling_succeeds() {
    let server = Server::new(ServerConfig {
        workers: 1,
        max_resident_bytes: Some(64 * 1024 * 1024),
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line("load id=l dataset=d gen=aids count=200 seed=2", &out);
    let responses = wait_all(&sink, &["l".into()]);
    let (l, _) = responses.iter().find(|(h, _)| h.id == "l").unwrap();
    assert_eq!(l.status, Status::Ok, "{l:?}");
    server.shutdown_now();
    server.join();
}

#[test]
fn packed_load_retries_transient_store_faults_and_reports_the_count() {
    use graphsig_store::{FaultPlan, Io};

    // Pack a store with clean I/O, then serve it through a seeded
    // transient fault plane: the load must succeed by backoff and report
    // how many retries it spent.
    let dir = std::env::temp_dir().join(format!("graphsig-srv-retry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = graphsig_datagen::aids_like(60, 17).db;
    graphsig_store::pack_with(&dir, &db, 16, &Io::real()).expect("pack");

    let io = Io::with_plan(FaultPlan::new(0xFAB).transient(400).transient_burst(2));
    let server = Server::new(ServerConfig {
        workers: 1,
        io: io.clone(),
        ..ServerConfig::default()
    });
    let sink = Sink::default();
    let out = writer(&sink);
    server.dispatch_line(
        &format!("load id=lp dataset=p path={} format=packed", dir.display()),
        &out,
    );
    let responses = wait_all(&sink, &["lp".into()]);
    let (lp, _) = responses.iter().find(|(h, _)| h.id == "lp").unwrap();
    assert_eq!(
        lp.status,
        Status::Ok,
        "transient faults must be absorbed: {lp:?}"
    );
    let reported: u64 = lp
        .field("retries")
        .expect("load reports retries")
        .parse()
        .expect("numeric retries");
    assert!(reported > 0, "seeded plan must have injected retries");
    assert_eq!(lp.field("graphs"), Some("60"));

    // stats surfaces the cumulative store retry count.
    server.dispatch_line("stats id=s", &out);
    let responses = wait_all(&sink, &["s".into()]);
    let (s, _) = responses.iter().find(|(h, _)| h.id == "s").unwrap();
    assert!(
        s.field("store_retries").and_then(|v| v.parse::<u64>().ok()) >= Some(reported),
        "{s:?}"
    );

    server.shutdown_now();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
