//! Fault-injection smoke test (`graphsig serve --smoke`, CI-gated).
//!
//! Drives one in-process [`Server`] through every degradation path at
//! once and checks that *every* submitted request resolves to exactly one
//! structured response — no silent drops, no dead workers:
//!
//! 1. concurrent mine requests with mixed budgets (unlimited, expired
//!    deadline, step budget),
//! 2. one deliberately panicking request (isolated to an error response),
//! 3. one request cancelled mid-flight,
//! 4. queue-full `busy` rejections while both workers are pinned,
//! 5. repeated identical requests served from the shared window-pass
//!    cache, byte-identical to the in-process one-shot pipeline,
//! 6. a `freq` request sharing the label-pair index,
//! 7. graceful shutdown whose drain deadline force-cancels a hung
//!    request — which still gets its response.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use graphsig_core::{render_subgraphs, GraphSig, GraphSigConfig};

use crate::protocol::{parse_response_stream, ResponseHeader, Status};
use crate::server::{Server, ServerConfig, SharedWriter};

/// An in-memory response sink shared with the server's workers.
#[derive(Clone, Default)]
struct Sink(Arc<Mutex<Vec<u8>>>);

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Harness {
    server: Server,
    sink: Sink,
    out: SharedWriter,
    submitted: Vec<String>,
}

impl Harness {
    fn new(cfg: ServerConfig) -> Self {
        let sink = Sink::default();
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
        Harness {
            server: Server::new(cfg),
            sink,
            out,
            submitted: Vec::new(),
        }
    }

    fn send(&mut self, line: &str) {
        if let Ok(Some(req)) = crate::protocol::parse_request(line) {
            self.submitted.push(req.id().to_string());
        }
        self.server.dispatch_line(line, &self.out);
    }

    fn responses(&self) -> Result<Vec<(ResponseHeader, Vec<u8>)>, String> {
        let buf = self
            .sink
            .0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        parse_response_stream(&buf).map_err(|e| format!("bad response stream: {e}"))
    }

    /// Block until the response for `id` is present (responses arrive on
    /// worker threads).
    fn wait_response(
        &self,
        id: &str,
        timeout: Duration,
    ) -> Result<(ResponseHeader, String), String> {
        let deadline = Instant::now() + timeout;
        loop {
            for (h, body) in self.responses()? {
                if h.id == id {
                    let body = String::from_utf8(body)
                        .map_err(|_| format!("non-UTF-8 payload for {id}"))?;
                    return Ok((h, body));
                }
            }
            if Instant::now() >= deadline {
                return Err(format!("no response for request '{id}' within {timeout:?}"));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Block until `pred` holds on the server snapshot.
    fn wait_state(
        &self,
        what: &str,
        timeout: Duration,
        pred: impl Fn(crate::server::ServerSnapshot) -> bool,
    ) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        while !pred(self.server.snapshot()) {
            if Instant::now() >= deadline {
                return Err(format!(
                    "timed out waiting for {what}; snapshot: {:?}",
                    self.server.snapshot()
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

fn check(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("smoke check failed: {what}"))
    }
}

const WAIT: Duration = Duration::from_secs(60);

/// Run the smoke scenario; `Err` describes the first failed check.
pub fn run() -> Result<(), String> {
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 2,
        drain_ms: 10_000,
        allow_inject: true,
        ..ServerConfig::default()
    };
    let mut h = Harness::new(cfg);
    let mine = "dataset=d min_freq=0.05 max_pvalue=0.05 radius=3";

    // -- Resident dataset ------------------------------------------------
    h.send("load id=load1 dataset=d gen=aids count=120 seed=7");
    let (resp, _) = h.wait_response("load1", WAIT)?;
    check(resp.status == Status::Ok, "load must succeed")?;
    check(
        resp.field("version") == Some("1"),
        "first load is version 1",
    )?;

    // -- Pin both workers, then exercise backpressure --------------------
    // Distinct sleep_ms: identical injected mines would *coalesce* (the
    // single-flight key includes the fault-injection knobs), and a rider
    // costs no worker — this scenario needs both workers genuinely pinned.
    h.send(&format!("mine id=sleepA sleep_ms=60000 {mine}"));
    h.send(&format!("mine id=sleepB sleep_ms=59000 {mine}"));
    h.wait_state("both workers pinned", WAIT, |s| s.active == 2)?;
    h.send(&format!("mine id=q1 {mine}"));
    h.send(&format!("mine id=q2 {mine}"));
    h.wait_state("queue full", WAIT, |s| s.queued == 2)?;
    for i in 0..3 {
        h.send(&format!("mine id=shed{i} {mine}"));
        let (resp, _) = h.wait_response(&format!("shed{i}"), WAIT)?;
        check(
            resp.status == Status::Busy,
            "queue-full submission must be rejected busy",
        )?;
        check(resp.field("queue") == Some("2"), "busy reports queue depth")?;
    }
    check(
        h.server.snapshot().busy_rejected == 3,
        "busy rejections counted",
    )?;

    // Control plane still answers while saturated.
    h.send("ping id=ping1");
    let (resp, _) = h.wait_response("ping1", WAIT)?;
    check(resp.status == Status::Ok, "ping while saturated")?;

    // -- Cancellation mid-flight -----------------------------------------
    h.send("cancel id=c1 target=sleepA");
    let (resp, _) = h.wait_response("c1", WAIT)?;
    check(resp.field("found") == Some("true"), "cancel finds sleepA")?;
    let (resp, _) = h.wait_response("sleepA", WAIT)?;
    check(
        resp.status == Status::Ok && resp.field("completion") == Some("truncated (cancelled)"),
        "cancelled request resolves structured",
    )?;
    // Response shape is uniform across outcomes: even a request cancelled
    // inside the injected sleep names the dataset it was resolved against.
    check(
        resp.field("dataset") == Some("d") && resp.field("version") == Some("1"),
        "cancelled mine response carries dataset identity",
    )?;
    // Cancelling an unknown id is a structured no-op.
    h.send("cancel id=c2 target=nonexistent");
    let (resp, _) = h.wait_response("c2", WAIT)?;
    check(resp.field("found") == Some("false"), "cancel miss reported")?;

    // Queued work drains through the freed worker.
    let (q1, q1_body) = h.wait_response("q1", WAIT)?;
    let (_q2, q2_body) = h.wait_response("q2", WAIT)?;
    check(q1.status == Status::Ok, "queued mine served after drain")?;
    check(
        q1_body == q2_body && !q1_body.is_empty(),
        "identical queued requests produce identical payloads",
    )?;

    // -- Shared-state cache: byte-identical to the one-shot pipeline -----
    let db = graphsig_datagen::aids_like(120, 7).db;
    let one_shot = GraphSig::new(GraphSigConfig {
        min_freq: 0.05,
        max_pvalue: 0.05,
        radius: 3,
        ..GraphSigConfig::default()
    })
    .mine_outcome(&db);
    let expected = render_subgraphs(&db, &one_shot.result, usize::MAX);
    check(
        q1_body == expected,
        "server mine payload must be byte-identical to the one-shot pipeline",
    )?;
    h.send(&format!("mine id=warm {mine}"));
    let (resp, body) = h.wait_response("warm", WAIT)?;
    check(
        resp.field("cached") == Some("hit"),
        "repeated identical request is a cache hit",
    )?;
    check(body == expected, "cache hit payload byte-identical")?;

    // -- Mixed budgets under load ----------------------------------------
    h.send(&format!("mine id=deadline timeout_ms=1 {mine}"));
    h.send(&format!("mine id=steps max_steps=200 {mine}"));
    let (resp, _) = h.wait_response("deadline", WAIT)?;
    check(
        resp.status == Status::Ok && resp.field("completion") != Some("complete"),
        "expired deadline yields a truncated ok response",
    )?;
    let (resp, _) = h.wait_response("steps", WAIT)?;
    check(
        resp.field("cached") == Some("bypass"),
        "step-budgeted request bypasses the cache",
    )?;
    check(
        resp.field("completion") == Some("truncated (step budget exhausted)"),
        "tiny step budget truncates deterministically",
    )?;

    // -- Panic isolation --------------------------------------------------
    h.send(&format!("mine id=poison inject=panic {mine}"));
    let (resp, _) = h.wait_response("poison", WAIT)?;
    check(
        resp.status == Status::Error && resp.field("error").is_some_and(|e| e.contains("panicked")),
        "poisoned request resolves to a structured error",
    )?;
    check(h.server.snapshot().panics == 1, "panic counted")?;
    h.send(&format!("mine id=after_poison {mine}"));
    let (resp, body) = h.wait_response("after_poison", WAIT)?;
    check(
        resp.status == Status::Ok && body == expected,
        "server keeps serving correctly after a panic",
    )?;

    // -- Shared index (`freq`) + cache observability via stats ------------
    h.send("freq id=f1 dataset=d min_support=40 max_edges=3");
    let (resp, _) = h.wait_response("f1", WAIT)?;
    check(resp.status == Status::Ok, "freq request served")?;
    check(
        resp.field("index_types").is_some_and(|v| v != "0"),
        "freq uses the shared label-pair index",
    )?;
    h.send("stats id=s1 dataset=d");
    let (resp, _) = h.wait_response("s1", WAIT)?;
    check(
        resp.field("prepared_hits")
            .and_then(|v| v.parse::<u64>().ok())
            .is_some_and(|hits| hits >= 2),
        "stats shows window-pass cache hits",
    )?;
    check(
        resp.field("index_types").is_some(),
        "stats shows the built shared index",
    )?;

    // -- Versioned invalidation -------------------------------------------
    h.send("load id=load2 dataset=d gen=aids count=120 seed=7");
    let (resp, _) = h.wait_response("load2", WAIT)?;
    check(
        resp.field("version") == Some("2"),
        "reload bumps the version",
    )?;
    h.send("stats id=s2 dataset=d");
    let (resp, _) = h.wait_response("s2", WAIT)?;
    check(
        resp.field("prepared_hits") == Some("0") && resp.field("prepared_entries") == Some("0"),
        "reload invalidates the prepared cache",
    )?;

    // -- Graceful shutdown force-cancels the hung request ------------------
    // sleepB is still hanging. A short drain deadline must cancel it, it
    // must still respond, and only then does shutdown confirm.
    h.send("shutdown id=bye drain_ms=300");
    let (resp, _) = h.wait_response("bye", WAIT)?;
    check(resp.status == Status::Ok, "shutdown confirms")?;
    check(
        resp.field("forced") == Some("true"),
        "drain deadline forced cancellation of the hung request",
    )?;
    let (resp, _) = h.wait_response("sleepB", WAIT)?;
    check(
        resp.field("completion") == Some("truncated (cancelled)"),
        "hung request resolved during forced drain",
    )?;
    check(h.server.is_terminated(), "server terminated after shutdown")?;
    // Post-shutdown submissions are rejected, not dropped.
    h.send(&format!("mine id=late {mine}"));
    let (resp, _) = h.wait_response("late", WAIT)?;
    check(
        resp.status == Status::Error
            && resp
                .field("error")
                .is_some_and(|e| e.contains("shutting down")),
        "post-shutdown submission rejected with a structured error",
    )?;

    // -- Global invariant: one response per submitted request --------------
    let responses = h.responses()?;
    for id in &h.submitted {
        let n = responses.iter().filter(|(r, _)| &r.id == id).count();
        check(n == 1, &format!("request '{id}' got {n} responses, want 1"))?;
    }
    let Harness { server, .. } = h;
    server.join();
    Ok(())
}
