//! `graphsig-server` — the long-lived GraphSig mining service.
//!
//! The CLI re-parses and re-prepares the database on every invocation;
//! this crate keeps datasets *resident* and answers `mine` / `freq` /
//! `stats` requests over a hand-rolled line protocol (stdio for tests and
//! pipelines, `std::net::TcpListener` for network mode — see the
//! `graphsig serve` subcommand).
//!
//! The two halves:
//!
//! * [`protocol`] — the wire format: whitespace-separated `key=value`
//!   request lines, `bytes=`-framed responses, percent escaping. Total
//!   parsers, no serde.
//! * [`server`] — the engine: a bounded work queue with `busy`
//!   load-shedding, per-request [`Budget`](graphsig_core::Budget)s and
//!   [`CancelToken`](graphsig_core::CancelToken)s under server-enforced
//!   ceilings, panic isolation per request, a shared
//!   [`PreparedCache`](graphsig_core::PreparedCache) +
//!   [`LabelPairIndex`](graphsig_graph::LabelPairIndex) per dataset with
//!   versioned invalidation on `load`, and graceful drain on shutdown.
//!
//! [`smoke::run`] is the fault-injection self-test CI gates on: mixed
//! budgets under concurrency, an injected panic, a mid-flight
//! cancellation, queue-full rejection, and a drained shutdown — every
//! request must resolve to a structured response with the server alive
//! until the drain completes.

pub mod protocol;
pub mod server;
pub mod smoke;

pub use protocol::{
    escape, parse_request, parse_response_header, unescape, ProtocolError, Request, Response,
    ResponseHeader, Status,
};
pub use server::{shared_writer, Server, ServerConfig, ServerSnapshot, SharedWriter};
