//! `graphsig-server` — the long-lived GraphSig mining service.
//!
//! The CLI re-parses and re-prepares the database on every invocation;
//! this crate keeps datasets *resident* and answers `mine` / `freq` /
//! `stats` requests over a hand-rolled line protocol (stdio for tests and
//! pipelines, `std::net::TcpListener` for network mode — see the
//! `graphsig serve` subcommand).
//!
//! The pieces:
//!
//! * [`protocol`] — the wire format: whitespace-separated `key=value`
//!   request lines, `bytes=`-framed responses, percent escaping. Total
//!   parsers, no serde.
//! * [`server`] — the engine: a bounded work queue with `busy`
//!   load-shedding, per-request [`Budget`](graphsig_core::Budget)s and
//!   [`CancelToken`](graphsig_core::CancelToken)s under server-enforced
//!   ceilings, panic isolation per request, single-flight coalescing of
//!   identical concurrent `mine` runs (see `batch`), sweep segmentation
//!   for scheduling fairness, a shared
//!   [`PreparedCache`](graphsig_core::PreparedCache) +
//!   [`LabelPairIndex`](graphsig_graph::LabelPairIndex) per dataset with
//!   versioned invalidation on `load`, and graceful drain on shutdown.
//! * [`transport`] — the event-driven TCP front end: one readiness loop
//!   (`poll(2)`) multiplexes every connection, so idle connections cost a
//!   file descriptor and a buffer, not a thread, and slow consumers are
//!   bounded by per-connection write buffers instead of blocking workers.
//!
//! [`smoke::run`] is the fault-injection self-test CI gates on: mixed
//! budgets under concurrency, an injected panic, a mid-flight
//! cancellation, queue-full rejection, and a drained shutdown — every
//! request must resolve to a structured response with the server alive
//! until the drain completes. [`chaos::run`] goes further: seeded
//! randomized schedules driving the store fault plane, mid-ingest kills,
//! the memory admission governor, and connection lifecycle deadlines —
//! the soak CI gates on via `bench_chaos --smoke`.

pub(crate) mod batch;
pub mod chaos;
pub mod protocol;
pub mod server;
pub mod smoke;
pub mod transport;

pub use protocol::{
    escape, parse_request, parse_response_header, unescape, ProtocolError, Request, Response,
    ResponseHeader, Status,
};
pub use server::{shared_writer, Server, ServerConfig, ServerSnapshot, SharedWriter};
pub use transport::TransportConfig;
