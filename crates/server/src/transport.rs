//! Event-driven TCP transport: one readiness loop for every connection.
//!
//! The first TCP front end spawned a thread per connection, which caps
//! concurrent clients at the thread budget and spends a stack on every
//! idle connection. This module replaces it with the classic single-loop
//! design:
//!
//! * the listener and every connection socket are **non-blocking**;
//! * one loop `poll(2)`s the whole fd set (hand-declared FFI on Linux —
//!   no external crates; elsewhere a sleep-scan fallback polls the same
//!   non-blocking sockets on a timer);
//! * readable sockets are drained into a per-connection buffer and split
//!   into protocol lines, which are dispatched inline — control ops
//!   (`ping`, `cancel`, `shutdown`) answer immediately from this thread,
//!   exactly as they did from per-connection reader threads, so a busy
//!   server stays probeable;
//! * responses go through a per-connection [`ConnOut`]: workers write
//!   directly to the socket when it is writable and spill the remainder
//!   into the connection's own buffer otherwise, which the loop flushes
//!   on `POLLOUT`. Connections never share a write lock, so one slow
//!   client delays nobody else.
//!
//! # Backpressure policy
//!
//! A worker must never block on a client's socket (that would turn a slow
//! reader into a stalled mining pool), and the server must not buffer
//! unboundedly (that would turn a slow reader into an OOM). The policy:
//! writes beyond the socket buffer accumulate in the connection's write
//! buffer up to [`TransportConfig::max_write_buf`]; a connection that
//! exceeds it is marked failed and dropped. Slowness costs the slow
//! client its connection, never the server its memory or its workers.
//!
//! # Connection lifecycle
//!
//! ```text
//! accept -> reading <-> dispatch -> (responses buffered per conn)
//!    reading: EOF or oversized line  -> draining (no more reads)
//!    draining: write buffer empty AND no in-flight response pending -> closed
//!    any state: write failure / overflow -> closed (failed)
//! ```
//!
//! "No in-flight response pending" is tracked by `Arc` strong counts on
//! the connection's [`SharedWriter`]: every queued job, coalesced rider,
//! and sweep flight holds a clone until its response is written, so a
//! count of one means every accepted request has answered and the
//! connection can close without dropping a response.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{Response, MAX_LINE_BYTES};
use crate::server::{Server, SharedWriter};

/// Tunables for the event loop.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Accepted connections beyond this wait in the listen backlog.
    pub max_connections: usize,
    /// Per-connection write buffer cap (bytes); a connection that falls
    /// further behind than this is dropped (see the backpressure policy).
    pub max_write_buf: usize,
    /// Poll timeout (ms): the latency floor for noticing server
    /// termination; also the scan period of the non-Linux fallback.
    pub poll_timeout_ms: u64,
    /// Reap a connection that has been silent this long (ms) with no
    /// request in flight and nothing left to deliver. `None` lets idle
    /// connections sit forever (the pre-deadline behavior).
    pub idle_timeout_ms: Option<u64>,
    /// Reap a connection that has not completed a single request line this
    /// long (ms) after accept — bounds pre-first-request loitering (and,
    /// under `--auth-token`, unauthenticated camping).
    pub handshake_timeout_ms: Option<u64>,
    /// Drop a connection whose buffered response bytes make no progress to
    /// the socket for this many consecutive poll ticks (a live-but-stalled
    /// reader; distinct from the `max_write_buf` overflow case). At the
    /// default 20 ms poll that is ~10 s of zero progress.
    pub write_stall_ticks: u32,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            max_connections: 1024,
            max_write_buf: 8 * 1024 * 1024,
            poll_timeout_ms: 20,
            idle_timeout_ms: None,
            handshake_timeout_ms: None,
            write_stall_ticks: 500,
        }
    }
}

/// The write half of one connection, shared between the event loop and
/// every worker holding the connection's [`SharedWriter`]. Never blocks.
struct ConnOut {
    stream: TcpStream,
    buf: Mutex<Vec<u8>>,
    failed: AtomicBool,
    max_buf: usize,
    /// Total bytes delivered to the socket — the write-stall detector
    /// watches this for progress while the buffer is non-empty.
    flushed: AtomicU64,
}

impl ConnOut {
    /// Queue `data` for this connection: straight to the socket while it
    /// accepts bytes, the remainder into the buffer. Marks the connection
    /// failed (to be dropped by the loop) on write errors or overflow.
    fn enqueue(&self, data: &[u8]) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let mut buf = lock(&self.buf);
        let mut off = 0;
        if buf.is_empty() {
            // Fast path: the socket usually has room for a whole response.
            off = match write_some(&self.stream, data) {
                Some(n) => n,
                None => {
                    self.failed.store(true, Ordering::Relaxed);
                    return;
                }
            };
            self.flushed.fetch_add(off as u64, Ordering::Relaxed);
        }
        if off < data.len() {
            buf.extend_from_slice(&data[off..]);
            if buf.len() > self.max_buf {
                // Slow consumer: shed the connection, not server memory.
                self.failed.store(true, Ordering::Relaxed);
                buf.clear();
            }
        }
    }

    /// Push buffered bytes to the socket (called on writability).
    fn try_flush(&self) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let mut buf = lock(&self.buf);
        if buf.is_empty() {
            return;
        }
        match write_some(&self.stream, &buf) {
            Some(n) => {
                self.flushed.fetch_add(n as u64, Ordering::Relaxed);
                buf.drain(..n);
            }
            None => {
                self.failed.store(true, Ordering::Relaxed);
                buf.clear();
            }
        }
    }

    fn pending(&self) -> bool {
        !lock(&self.buf).is_empty()
    }
}

/// Write as much of `data` as the non-blocking socket takes right now.
/// `Some(n)` = first n bytes written; `None` = the connection is dead.
fn write_some(mut stream: &TcpStream, data: &[u8]) -> Option<usize> {
    let mut off = 0;
    while off < data.len() {
        match stream.write(&data[off..]) {
            Ok(0) => return None,
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
    Some(off)
}

/// The [`SharedWriter`] face of a [`ConnOut`]: workers "write" responses,
/// the transport delivers them. Infallible by design — delivery problems
/// surface as the connection failing, never as worker errors.
struct ConnWriter(Arc<ConnOut>);

impl Write for ConnWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.enqueue(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.try_flush();
        Ok(())
    }
}

struct Conn {
    stream: TcpStream,
    out: Arc<ConnOut>,
    writer: SharedWriter,
    /// Partial-line reassembly buffer.
    rd: Vec<u8>,
    /// No more reads (client EOF or protocol violation); the connection
    /// drains its remaining responses and closes.
    eof: bool,
    /// Accept time (handshake deadline anchor).
    created: Instant,
    /// Last moment bytes arrived from the client (idle deadline anchor).
    last_activity: Instant,
    /// At least one complete request line was dispatched — the handshake
    /// deadline no longer applies.
    seen_request: bool,
    /// Past the auth gate (vacuously true without `--auth-token`).
    authed: bool,
    /// Consecutive poll ticks with buffered output and zero socket
    /// progress (write-stall detector state).
    stall_ticks: u32,
    /// `out.flushed` as of the last stall check.
    last_flushed: u64,
}

impl Conn {
    fn new(stream: TcpStream, max_write_buf: usize, authed: bool) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        let out = Arc::new(ConnOut {
            stream: stream.try_clone()?,
            buf: Mutex::new(Vec::new()),
            failed: AtomicBool::new(false),
            max_buf: max_write_buf,
            flushed: AtomicU64::new(0),
        });
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(ConnWriter(Arc::clone(&out)))));
        let now = Instant::now();
        Ok(Conn {
            stream,
            out,
            writer,
            rd: Vec::new(),
            eof: false,
            created: now,
            last_activity: now,
            seen_request: false,
            authed,
            stall_ticks: 0,
            last_flushed: 0,
        })
    }

    /// Drain readable bytes; returns `false` when the connection hit EOF
    /// or a fatal read error (reads stop; writes may still drain).
    fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match (&self.stream).read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => {
                    self.rd.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Pop the next complete line out of the reassembly buffer.
    fn next_line(&mut self) -> Option<String> {
        let nl = self.rd.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.rd.drain(..=nl).collect();
        line.pop(); // the \n
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// Whether every response this connection is owed has been written
    /// and delivered. The loop-owned handle plus the `ConnOut`'s own ref
    /// account for... nothing: `writer` clones are held only by in-flight
    /// work, so strong_count == 1 means no response is outstanding.
    fn drained(&self) -> bool {
        Arc::strong_count(&self.writer) == 1 && !self.out.pending()
    }
}

/// Run the event loop until the server terminates (a `shutdown` request on
/// any connection, or [`Server::shutdown_now`] from another thread).
/// Call from a dedicated thread; the loop itself is single-threaded.
pub fn serve(listener: TcpListener, server: &Server, cfg: TransportConfig) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if server.is_terminated() {
            final_flush(&mut conns);
            return Ok(());
        }
        let accept_slot = conns.len() < cfg.max_connections;
        let ready = wait_ready(&listener, &conns, accept_slot, cfg.poll_timeout_ms);
        if ready.accept {
            accept_burst(&listener, &mut conns, server, &cfg);
        }
        let mut shutdown = false;
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.eof || !ready.read.contains(&i) {
                continue;
            }
            if !conn.fill() {
                conn.eof = true;
            }
            while let Some(line) = conn.next_line() {
                conn.seen_request = true;
                if server.dispatch_line_gated(&line, &mut conn.authed, &conn.writer) {
                    shutdown = true;
                    conn.eof = true;
                    break;
                }
            }
            if !conn.eof && conn.rd.len() > MAX_LINE_BYTES {
                // A line longer than the protocol allows, still without a
                // newline: answer structured and stop reading this client
                // rather than buffering without bound.
                let resp = Response::error(
                    "-",
                    "?",
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                conn.out.enqueue(resp.render().as_bytes());
                conn.rd.clear();
                conn.eof = true;
            }
        }
        for conn in &conns {
            if conn.out.pending() {
                conn.out.try_flush();
            }
        }
        reap_deadlined(&mut conns, &cfg);
        conns.retain(|c| !(c.out.failed.load(Ordering::Relaxed) || c.eof && c.drained()));
        if shutdown {
            final_flush(&mut conns);
            return Ok(());
        }
    }
}

fn accept_burst(
    listener: &TcpListener,
    conns: &mut Vec<Conn>,
    server: &Server,
    cfg: &TransportConfig,
) {
    while conns.len() < cfg.max_connections {
        match listener.accept() {
            Ok((stream, _addr)) => {
                if let Ok(conn) = Conn::new(stream, cfg.max_write_buf, !server.requires_auth()) {
                    conns.push(conn);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Enforce the connection lifecycle deadlines once per poll tick: the
/// handshake deadline on connections that never completed a request, the
/// idle deadline on quiescent connections (only when no response is owed
/// — a connection waiting on a long mine is busy, not idle), and the
/// write-stall detector on connections whose buffered bytes make no
/// progress. Deadlined connections are marked failed and dropped by the
/// retain that follows; everyone else is untouched, so active requests on
/// other connections proceed.
fn reap_deadlined(conns: &mut [Conn], cfg: &TransportConfig) {
    for conn in conns.iter_mut() {
        if conn.out.failed.load(Ordering::Relaxed) || conn.eof {
            continue;
        }
        if let Some(ms) = cfg.handshake_timeout_ms {
            if !conn.seen_request && conn.created.elapsed() >= Duration::from_millis(ms) {
                conn.out.failed.store(true, Ordering::Relaxed);
                continue;
            }
        }
        // Delivering response bytes counts as activity: without this, a
        // request whose execution outlives the idle window would expire
        // the idle clock the instant its response drains (the anchor
        // would still be the request line that started it).
        let flushed = conn.out.flushed.load(Ordering::Relaxed);
        let progressed = flushed != conn.last_flushed;
        if progressed {
            conn.last_flushed = flushed;
            conn.stall_ticks = 0;
            conn.last_activity = Instant::now();
        }
        if let Some(ms) = cfg.idle_timeout_ms {
            let quiescent = Arc::strong_count(&conn.writer) == 1 && !conn.out.pending();
            if quiescent && conn.last_activity.elapsed() >= Duration::from_millis(ms) {
                conn.out.failed.store(true, Ordering::Relaxed);
                continue;
            }
        }
        if !conn.out.pending() {
            conn.stall_ticks = 0;
        } else if !progressed {
            conn.stall_ticks += 1;
            if conn.stall_ticks >= cfg.write_stall_ticks {
                conn.out.failed.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Deliver whatever responses are still buffered before closing (bounded:
/// a client that stopped reading cannot wedge shutdown).
fn final_flush(conns: &mut [Conn]) {
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let mut pending = false;
        for conn in conns.iter() {
            if conn.out.failed.load(Ordering::Relaxed) {
                continue;
            }
            conn.out.try_flush();
            pending |= conn.out.pending();
        }
        if !pending || Instant::now() >= deadline {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Which fds came back ready.
struct Ready {
    accept: bool,
    /// Indices into the connection list with readable data (or EOF/error,
    /// which a read will surface).
    read: std::collections::HashSet<usize>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(target_os = "linux")]
mod sys {
    //! Minimal hand-declared `poll(2)` binding — the repo's no-new-deps
    //! rule rules out libc/mio, and the three types involved are ABI-firm.

    #[repr(C)]
    pub struct Pollfd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        pub fn poll(fds: *mut Pollfd, nfds: u64, timeout: i32) -> i32;
    }
}

#[cfg(target_os = "linux")]
fn wait_ready(listener: &TcpListener, conns: &[Conn], accept_slot: bool, timeout_ms: u64) -> Ready {
    use std::os::fd::AsRawFd;

    let mut fds = Vec::with_capacity(conns.len() + 1);
    // Slot 0 is the listener when we have room for another connection.
    if accept_slot {
        fds.push(sys::Pollfd {
            fd: listener.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
    }
    let base = fds.len();
    for conn in conns {
        let mut events = 0i16;
        if !conn.eof {
            events |= sys::POLLIN;
        }
        if conn.out.pending() {
            events |= sys::POLLOUT;
        }
        fds.push(sys::Pollfd {
            fd: conn.stream.as_raw_fd(),
            events,
            revents: 0,
        });
    }
    let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms as i32) };
    let mut ready = Ready {
        accept: false,
        read: std::collections::HashSet::new(),
    };
    if rc <= 0 {
        // Timeout, or EINTR/transient error — either way, just poll again.
        return ready;
    }
    if accept_slot && fds[0].revents & (sys::POLLIN | sys::POLLERR) != 0 {
        ready.accept = true;
    }
    for (i, pfd) in fds[base..].iter().enumerate() {
        // ERR/HUP count as readable: the read path surfaces the close.
        if pfd.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 {
            ready.read.insert(i);
        }
        // POLLOUT needs no flag: the loop flushes every pending conn.
    }
    ready
}

#[cfg(not(target_os = "linux"))]
fn wait_ready(
    _listener: &TcpListener,
    conns: &[Conn],
    accept_slot: bool,
    timeout_ms: u64,
) -> Ready {
    // Portable fallback: no readiness signal, so pace with a sleep and
    // optimistically try every socket — all are non-blocking, so a
    // not-ready socket costs one WouldBlock.
    std::thread::sleep(Duration::from_millis(timeout_ms.max(1)));
    Ready {
        accept: accept_slot,
        read: (0..conns.len()).collect(),
    }
}
