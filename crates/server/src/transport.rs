//! Event-driven TCP transport: one readiness loop for every connection.
//!
//! The first TCP front end spawned a thread per connection, which caps
//! concurrent clients at the thread budget and spends a stack on every
//! idle connection. This module replaces it with the classic single-loop
//! design:
//!
//! * the listener and every connection socket are **non-blocking**;
//! * one loop `poll(2)`s the whole fd set (hand-declared FFI on Linux —
//!   no external crates; elsewhere a sleep-scan fallback polls the same
//!   non-blocking sockets on a timer);
//! * readable sockets are drained into a per-connection buffer and split
//!   into protocol lines, which are dispatched inline — control ops
//!   (`ping`, `cancel`, `shutdown`) answer immediately from this thread,
//!   exactly as they did from per-connection reader threads, so a busy
//!   server stays probeable;
//! * responses go through a per-connection [`ConnOut`]: workers write
//!   directly to the socket when it is writable and spill the remainder
//!   into the connection's own buffer otherwise, which the loop flushes
//!   on `POLLOUT`. Connections never share a write lock, so one slow
//!   client delays nobody else.
//!
//! # Backpressure policy
//!
//! A worker must never block on a client's socket (that would turn a slow
//! reader into a stalled mining pool), and the server must not buffer
//! unboundedly (that would turn a slow reader into an OOM). The policy:
//! writes beyond the socket buffer accumulate in the connection's write
//! buffer up to [`TransportConfig::max_write_buf`]; a connection that
//! exceeds it is marked failed and dropped. Slowness costs the slow
//! client its connection, never the server its memory or its workers.
//!
//! # Connection lifecycle
//!
//! ```text
//! accept -> reading <-> dispatch -> (responses buffered per conn)
//!    reading: EOF or oversized line  -> draining (no more reads)
//!    draining: write buffer empty AND no in-flight response pending -> closed
//!    any state: write failure / overflow -> closed (failed)
//! ```
//!
//! "No in-flight response pending" is tracked by `Arc` strong counts on
//! the connection's [`SharedWriter`]: every queued job, coalesced rider,
//! and sweep flight holds a clone until its response is written, so a
//! count of one means every accepted request has answered and the
//! connection can close without dropping a response.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{Response, MAX_LINE_BYTES};
use crate::server::{Server, SharedWriter};

/// Tunables for the event loop.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Accepted connections beyond this wait in the listen backlog.
    pub max_connections: usize,
    /// Per-connection write buffer cap (bytes); a connection that falls
    /// further behind than this is dropped (see the backpressure policy).
    pub max_write_buf: usize,
    /// Poll timeout (ms): the latency floor for noticing server
    /// termination; also the scan period of the non-Linux fallback.
    pub poll_timeout_ms: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            max_connections: 1024,
            max_write_buf: 8 * 1024 * 1024,
            poll_timeout_ms: 20,
        }
    }
}

/// The write half of one connection, shared between the event loop and
/// every worker holding the connection's [`SharedWriter`]. Never blocks.
struct ConnOut {
    stream: TcpStream,
    buf: Mutex<Vec<u8>>,
    failed: AtomicBool,
    max_buf: usize,
}

impl ConnOut {
    /// Queue `data` for this connection: straight to the socket while it
    /// accepts bytes, the remainder into the buffer. Marks the connection
    /// failed (to be dropped by the loop) on write errors or overflow.
    fn enqueue(&self, data: &[u8]) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let mut buf = lock(&self.buf);
        let mut off = 0;
        if buf.is_empty() {
            // Fast path: the socket usually has room for a whole response.
            off = match write_some(&self.stream, data) {
                Some(n) => n,
                None => {
                    self.failed.store(true, Ordering::Relaxed);
                    return;
                }
            };
        }
        if off < data.len() {
            buf.extend_from_slice(&data[off..]);
            if buf.len() > self.max_buf {
                // Slow consumer: shed the connection, not server memory.
                self.failed.store(true, Ordering::Relaxed);
                buf.clear();
            }
        }
    }

    /// Push buffered bytes to the socket (called on writability).
    fn try_flush(&self) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let mut buf = lock(&self.buf);
        if buf.is_empty() {
            return;
        }
        match write_some(&self.stream, &buf) {
            Some(n) => {
                buf.drain(..n);
            }
            None => {
                self.failed.store(true, Ordering::Relaxed);
                buf.clear();
            }
        }
    }

    fn pending(&self) -> bool {
        !lock(&self.buf).is_empty()
    }
}

/// Write as much of `data` as the non-blocking socket takes right now.
/// `Some(n)` = first n bytes written; `None` = the connection is dead.
fn write_some(mut stream: &TcpStream, data: &[u8]) -> Option<usize> {
    let mut off = 0;
    while off < data.len() {
        match stream.write(&data[off..]) {
            Ok(0) => return None,
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
    Some(off)
}

/// The [`SharedWriter`] face of a [`ConnOut`]: workers "write" responses,
/// the transport delivers them. Infallible by design — delivery problems
/// surface as the connection failing, never as worker errors.
struct ConnWriter(Arc<ConnOut>);

impl Write for ConnWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.enqueue(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.try_flush();
        Ok(())
    }
}

struct Conn {
    stream: TcpStream,
    out: Arc<ConnOut>,
    writer: SharedWriter,
    /// Partial-line reassembly buffer.
    rd: Vec<u8>,
    /// No more reads (client EOF or protocol violation); the connection
    /// drains its remaining responses and closes.
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream, max_write_buf: usize) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        let out = Arc::new(ConnOut {
            stream: stream.try_clone()?,
            buf: Mutex::new(Vec::new()),
            failed: AtomicBool::new(false),
            max_buf: max_write_buf,
        });
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(ConnWriter(Arc::clone(&out)))));
        Ok(Conn {
            stream,
            out,
            writer,
            rd: Vec::new(),
            eof: false,
        })
    }

    /// Drain readable bytes; returns `false` when the connection hit EOF
    /// or a fatal read error (reads stop; writes may still drain).
    fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match (&self.stream).read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => self.rd.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Pop the next complete line out of the reassembly buffer.
    fn next_line(&mut self) -> Option<String> {
        let nl = self.rd.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.rd.drain(..=nl).collect();
        line.pop(); // the \n
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// Whether every response this connection is owed has been written
    /// and delivered. The loop-owned handle plus the `ConnOut`'s own ref
    /// account for... nothing: `writer` clones are held only by in-flight
    /// work, so strong_count == 1 means no response is outstanding.
    fn drained(&self) -> bool {
        Arc::strong_count(&self.writer) == 1 && !self.out.pending()
    }
}

/// Run the event loop until the server terminates (a `shutdown` request on
/// any connection, or [`Server::shutdown_now`] from another thread).
/// Call from a dedicated thread; the loop itself is single-threaded.
pub fn serve(listener: TcpListener, server: &Server, cfg: TransportConfig) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if server.is_terminated() {
            final_flush(&mut conns);
            return Ok(());
        }
        let accept_slot = conns.len() < cfg.max_connections;
        let ready = wait_ready(&listener, &conns, accept_slot, cfg.poll_timeout_ms);
        if ready.accept {
            accept_burst(&listener, &mut conns, &cfg);
        }
        let mut shutdown = false;
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.eof || !ready.read.contains(&i) {
                continue;
            }
            if !conn.fill() {
                conn.eof = true;
            }
            while let Some(line) = conn.next_line() {
                if server.dispatch_line(&line, &conn.writer) {
                    shutdown = true;
                    conn.eof = true;
                    break;
                }
            }
            if !conn.eof && conn.rd.len() > MAX_LINE_BYTES {
                // A line longer than the protocol allows, still without a
                // newline: answer structured and stop reading this client
                // rather than buffering without bound.
                let resp = Response::error(
                    "-",
                    "?",
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                conn.out.enqueue(resp.render().as_bytes());
                conn.rd.clear();
                conn.eof = true;
            }
        }
        for conn in &conns {
            if conn.out.pending() {
                conn.out.try_flush();
            }
        }
        conns.retain(|c| !(c.out.failed.load(Ordering::Relaxed) || c.eof && c.drained()));
        if shutdown {
            final_flush(&mut conns);
            return Ok(());
        }
    }
}

fn accept_burst(listener: &TcpListener, conns: &mut Vec<Conn>, cfg: &TransportConfig) {
    while conns.len() < cfg.max_connections {
        match listener.accept() {
            Ok((stream, _addr)) => {
                if let Ok(conn) = Conn::new(stream, cfg.max_write_buf) {
                    conns.push(conn);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Deliver whatever responses are still buffered before closing (bounded:
/// a client that stopped reading cannot wedge shutdown).
fn final_flush(conns: &mut [Conn]) {
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let mut pending = false;
        for conn in conns.iter() {
            if conn.out.failed.load(Ordering::Relaxed) {
                continue;
            }
            conn.out.try_flush();
            pending |= conn.out.pending();
        }
        if !pending || Instant::now() >= deadline {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Which fds came back ready.
struct Ready {
    accept: bool,
    /// Indices into the connection list with readable data (or EOF/error,
    /// which a read will surface).
    read: std::collections::HashSet<usize>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(target_os = "linux")]
mod sys {
    //! Minimal hand-declared `poll(2)` binding — the repo's no-new-deps
    //! rule rules out libc/mio, and the three types involved are ABI-firm.

    #[repr(C)]
    pub struct Pollfd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        pub fn poll(fds: *mut Pollfd, nfds: u64, timeout: i32) -> i32;
    }
}

#[cfg(target_os = "linux")]
fn wait_ready(listener: &TcpListener, conns: &[Conn], accept_slot: bool, timeout_ms: u64) -> Ready {
    use std::os::fd::AsRawFd;

    let mut fds = Vec::with_capacity(conns.len() + 1);
    // Slot 0 is the listener when we have room for another connection.
    if accept_slot {
        fds.push(sys::Pollfd {
            fd: listener.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
    }
    let base = fds.len();
    for conn in conns {
        let mut events = 0i16;
        if !conn.eof {
            events |= sys::POLLIN;
        }
        if conn.out.pending() {
            events |= sys::POLLOUT;
        }
        fds.push(sys::Pollfd {
            fd: conn.stream.as_raw_fd(),
            events,
            revents: 0,
        });
    }
    let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms as i32) };
    let mut ready = Ready {
        accept: false,
        read: std::collections::HashSet::new(),
    };
    if rc <= 0 {
        // Timeout, or EINTR/transient error — either way, just poll again.
        return ready;
    }
    if accept_slot && fds[0].revents & (sys::POLLIN | sys::POLLERR) != 0 {
        ready.accept = true;
    }
    for (i, pfd) in fds[base..].iter().enumerate() {
        // ERR/HUP count as readable: the read path surfaces the close.
        if pfd.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 {
            ready.read.insert(i);
        }
        // POLLOUT needs no flag: the loop flushes every pending conn.
    }
    ready
}

#[cfg(not(target_os = "linux"))]
fn wait_ready(
    _listener: &TcpListener,
    conns: &[Conn],
    accept_slot: bool,
    timeout_ms: u64,
) -> Ready {
    // Portable fallback: no readiness signal, so pace with a sleep and
    // optimistically try every socket — all are non-blocking, so a
    // not-ready socket costs one WouldBlock.
    std::thread::sleep(Duration::from_millis(timeout_ms.max(1)));
    Ready {
        accept: accept_slot,
        read: (0..conns.len()).collect(),
    }
}
