//! Chaos soak harness (`graphsig serve --chaos`, `bench_chaos`).
//!
//! Runs seeded randomized schedules that interleave every failure path
//! the serving stack defends against, and asserts the invariants that
//! make those defenses real:
//!
//! * **Store fault plane** — packs, verifies, and opens a real on-disk
//!   store through a seeded [`FaultPlan`] injecting transient errors,
//!   short reads, and stalls. Transient-only plans must always recover by
//!   backoff (the operation succeeds; `retries > 0`); permanent faults
//!   must surface as structured [`StoreError`](graphsig_store)s or shard
//!   quarantines, never panics.
//! * **Mid-ingest kills** — an `append` is killed after a seeded number
//!   of I/O events; the store must reopen cleanly afterwards at either
//!   the pre-append or the post-append `store_version` (the commit is
//!   atomic: no third state).
//! * **Server chaos** — an in-process [`Server`] with a faulted I/O seam
//!   and a memory ceiling serves a seeded interleaving of loads, mines,
//!   freqs, sweeps, cancels, and stats. Every accepted request must
//!   resolve to exactly one structured response, mine payloads must be
//!   byte-identical to the unfaulted one-shot pipeline oracle, and a
//!   load past `max_resident_bytes` must be rejected with
//!   `code=resource_exhausted` (after LRU eviction) while the server
//!   keeps serving.
//! * **Connection lifecycle** — a TCP phase with dead clients (never
//!   send), idle clients (send once, go silent), and slow clients (stop
//!   reading mid-stream). Deadlined connections are reaped while active
//!   requests on other connections complete, and a dropped client's
//!   received byte prefix never contains a frame that parses as complete
//!   but carries truncated payload.
//!
//! # Schedule grammar
//!
//! A schedule is a splitmix64 stream seeded with `base_seed + index`.
//! Draws are consumed in a fixed order (fault plan knobs, kill point,
//! then one draw per interleaved op), so a schedule is fully determined
//! by its seed — rerunning a seed replays the identical fault pattern.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use graphsig_core::{render_subgraphs, GraphSig, GraphSigConfig};
use graphsig_store::{FaultPlan, Io};

use crate::protocol::{parse_response_stream, ResponseHeader, Status};
use crate::server::{Server, ServerConfig, SharedWriter};
use crate::transport::TransportConfig;

/// Knobs for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Base seed; schedule `i` uses `seed + i`.
    pub seed: u64,
    /// Number of independent schedules.
    pub schedules: usize,
    /// Random server ops interleaved per schedule (on top of the fixed
    /// load/oracle/spike scaffold).
    pub ops_per_schedule: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xC4405,
            schedules: 8,
            ops_per_schedule: 12,
        }
    }
}

/// What one schedule observed.
#[derive(Debug, Clone, Default)]
pub struct ScheduleReport {
    /// The schedule's seed.
    pub seed: u64,
    /// Requests submitted to the in-process server.
    pub requests: usize,
    /// Faults injected across every I/O seam the schedule touched.
    pub fault_events: u64,
    /// Transient retries spent recovering.
    pub retries: u64,
    /// The killed append left the store at a consistent version.
    pub kill_recovered: bool,
    /// The oversized load was rejected `resource_exhausted` with the
    /// server still serving.
    pub spike_rejected: bool,
    /// Server mine payload matched the unfaulted one-shot oracle.
    pub oracle_identical: bool,
}

/// Aggregate over all schedules plus the TCP lifecycle phase.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Per-schedule observations.
    pub schedules: Vec<ScheduleReport>,
    /// Sum of injected faults.
    pub total_fault_events: u64,
    /// Sum of submitted server requests.
    pub total_requests: usize,
    /// Sum of transient retries.
    pub total_retries: u64,
    /// The TCP phase reaped its dead/idle/slow clients as required.
    pub lifecycle_ok: bool,
    /// Wall time of the whole run.
    pub elapsed_ms: u64,
}

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn injected(io: &Io) -> u64 {
    let s = io.stats();
    s.injected_transient + s.injected_permanent + s.injected_short_reads + s.injected_stalls
}

fn check(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("chaos check failed: {what}"))
    }
}

const WAIT: Duration = Duration::from_secs(120);

/// In-memory response sink shared with the server's workers.
#[derive(Clone, Default)]
struct Sink(Arc<Mutex<Vec<u8>>>);

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Harness {
    server: Server,
    sink: Sink,
    out: SharedWriter,
    submitted: Vec<String>,
}

impl Harness {
    fn new(cfg: ServerConfig) -> Self {
        let sink = Sink::default();
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
        Harness {
            server: Server::new(cfg),
            sink,
            out,
            submitted: Vec::new(),
        }
    }

    fn send(&mut self, line: &str) {
        if let Ok(Some(req)) = crate::protocol::parse_request(line) {
            self.submitted.push(req.id().to_string());
        }
        self.server.dispatch_line(line, &self.out);
    }

    fn responses(&self) -> Result<Vec<(ResponseHeader, Vec<u8>)>, String> {
        let buf = self
            .sink
            .0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        parse_response_stream(&buf).map_err(|e| format!("bad response stream: {e}"))
    }

    fn wait_response(&self, id: &str) -> Result<(ResponseHeader, String), String> {
        let deadline = Instant::now() + WAIT;
        loop {
            for (h, body) in self.responses()? {
                if h.id == id {
                    let body = String::from_utf8(body)
                        .map_err(|_| format!("non-UTF-8 payload for {id}"))?;
                    return Ok((h, body));
                }
            }
            if Instant::now() >= deadline {
                let seen: Vec<String> = self
                    .responses()?
                    .iter()
                    .map(|(h, _)| h.id.clone())
                    .collect();
                let msg = format!(
                    "no response for request '{id}' within {WAIT:?}; responded so far: {seen:?}"
                );
                return Err(msg);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Flat-copy a packed store directory (manifest + shard files).
fn copy_dir(from: &PathBuf, to: &PathBuf) -> Result<(), String> {
    std::fs::create_dir_all(to).map_err(|e| format!("copy mkdir: {e}"))?;
    let entries = std::fs::read_dir(from).map_err(|e| format!("copy readdir: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("copy entry: {e}"))?;
        if entry.path().is_file() {
            std::fs::copy(entry.path(), to.join(entry.file_name()))
                .map_err(|e| format!("copy file: {e}"))?;
        }
    }
    Ok(())
}

fn scratch(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphsig_chaos_{}_{tag:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `cfg.schedules` independent schedules plus one TCP lifecycle
/// phase; `Err` describes the first violated invariant.
pub fn run(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    let started = Instant::now();
    let mut report = ChaosReport::default();
    for i in 0..cfg.schedules {
        let sched = run_schedule(cfg.seed.wrapping_add(i as u64), cfg.ops_per_schedule)?;
        report.total_fault_events += sched.fault_events;
        report.total_requests += sched.requests;
        report.total_retries += sched.retries;
        report.schedules.push(sched);
    }
    run_tcp_lifecycle()?;
    report.lifecycle_ok = true;
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    Ok(report)
}

/// One schedule: store fault plane, mid-ingest kill, then server chaos.
fn run_schedule(seed: u64, ops: usize) -> Result<ScheduleReport, String> {
    let mut rng = seed;
    let mut sched = ScheduleReport {
        seed,
        ..ScheduleReport::default()
    };
    let dir = scratch(seed);

    // -- Store fault plane: transient-only plans always recover ----------
    let base = graphsig_datagen::aids_like(80, seed ^ 0x5eed).db;
    let io = Io::with_plan(
        FaultPlan::new(mix(&mut rng))
            .transient(320)
            .stalls(40, Duration::from_millis(1))
            .transient_burst(2),
    );
    let packed = graphsig_store::pack_with(&dir, &base, 32, &io)
        .map_err(|e| format!("faulted pack must recover by backoff, got: {e}"))?;
    check(packed.total_graphs == 80, "faulted pack wrote every graph")?;
    // Soak the seams until this schedule has injected a healthy number of
    // faults: every verify under a transient-only plan must succeed.
    let mut iters = 0;
    while injected(&io) < 70 && iters < 400 {
        let v = graphsig_store::verify_with(&dir, &io)
            .map_err(|e| format!("faulted verify must recover by backoff, got: {e}"))?;
        check(
            v.store_version == packed.store_version,
            "verify sees the committed version",
        )?;
        iters += 1;
    }
    check(
        injected(&io) >= 70,
        "schedule injected at least 70 store faults",
    )?;

    // -- Short reads: detected, never silently accepted ------------------
    // A short read hands the caller truncated bytes with no error — the
    // store's defense is detection (length/checksum), which either fails
    // the open with a structured truncation error or quarantines the torn
    // shard. Run it against a throwaway copy so quarantines cannot damage
    // the real store, and confirm the original is untouched afterwards.
    let copy = scratch(seed ^ 0xc0b1);
    copy_dir(&dir, &copy)?;
    let io_sr = Io::with_plan(FaultPlan::new(mix(&mut rng)).short_reads(400));
    let mut sr_injected = 0;
    for _ in 0..20 {
        match graphsig_store::open_lenient_with(&copy, &io_sr) {
            Ok(o) => check(
                o.db.len() == 80 || !o.report.quarantined.is_empty(),
                "short-read open is either complete or visibly degraded",
            )?,
            Err(e) => check(
                !e.to_string().is_empty(),
                "short-read open failure is structured",
            )?,
        }
        sr_injected = injected(&io_sr);
        if sr_injected >= 10 {
            break;
        }
        // Quarantine mutates the copy; refresh it between rounds.
        let _ = std::fs::remove_dir_all(&copy);
        copy_dir(&dir, &copy)?;
    }
    check(sr_injected >= 1, "short-read plan injected at least once")?;
    let _ = std::fs::remove_dir_all(&copy);
    let clean = graphsig_store::verify_with(&dir, &Io::real())
        .map_err(|e| format!("short reads must never damage the real store: {e}"))?;
    check(
        clean.store_version == packed.store_version,
        "real store unchanged by the short-read probes",
    )?;

    // -- Mid-ingest kill: consistent manifest either side of the commit --
    let mut extended = base.clone();
    extended.absorb(&graphsig_datagen::aids_like(20, seed ^ 0xadd).db);
    let kill_at = 2 + mix(&mut rng) % 8;
    let io_kill = Io::with_plan(FaultPlan::new(mix(&mut rng)).kill_after(kill_at));
    let killed = graphsig_store::append_with(&dir, &extended, 80, 32, &io_kill);
    check(killed.is_err(), "killed append reports the abort")?;
    let reopened = graphsig_store::open_lenient(&dir)
        .map_err(|e| format!("store must reopen after a mid-ingest kill, got: {e}"))?;
    let v = reopened.manifest.store_version;
    sched.kill_recovered = (v == packed.store_version && reopened.db.len() == 80)
        || (v == packed.store_version + 1 && reopened.db.len() == 100);
    check(
        sched.kill_recovered,
        "post-kill store is at exactly the pre- or post-append version",
    )?;

    // -- Server chaos over the (possibly appended) packed store ----------
    let server_io = Io::with_plan(
        FaultPlan::new(mix(&mut rng))
            .transient(250)
            .transient_burst(2),
    );
    let mut h = Harness::new(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        drain_ms: 10_000,
        allow_inject: true,
        max_resident_bytes: Some(8 * 1024 * 1024),
        io: server_io.clone(),
        ..ServerConfig::default()
    });
    let dir_str = crate::protocol::escape(&dir.display().to_string());
    h.send(&format!(
        "load id=lp dataset=packed path={dir_str} format=packed"
    ));
    let (resp, _) = h.wait_response("lp")?;
    check(
        resp.status == Status::Ok,
        "packed load through the faulted seam succeeds",
    )?;
    check(
        resp.field("retries").is_some(),
        "packed load reports its retry count",
    )?;
    let gen_seed = seed % 1000;
    h.send(&format!(
        "load id=lg dataset=gen gen=aids count=120 seed={gen_seed}"
    ));
    let (resp, _) = h.wait_response("lg")?;
    check(resp.status == Status::Ok, "generator load succeeds")?;

    // Oracle: the unfaulted one-shot pipeline over the same graphs.
    let mine = "dataset=gen min_freq=0.05 max_pvalue=0.05 radius=3";
    let oracle_db = graphsig_datagen::aids_like(120, gen_seed).db;
    let oracle = GraphSig::new(GraphSigConfig {
        min_freq: 0.05,
        max_pvalue: 0.05,
        radius: 3,
        ..GraphSigConfig::default()
    })
    .mine_outcome(&oracle_db);
    let expected = render_subgraphs(&oracle_db, &oracle.result, usize::MAX);
    h.send(&format!("mine id=oracle {mine}"));
    let (resp, body) = h.wait_response("oracle")?;
    check(resp.status == Status::Ok, "oracle mine succeeds")?;
    sched.oracle_identical = body == expected;
    check(
        sched.oracle_identical,
        "server mine payload is byte-identical to the unfaulted oracle",
    )?;

    // Seeded interleaving of ops; every one must resolve structured.
    for op in 0..ops {
        let id = format!("op{op}");
        match mix(&mut rng) % 8 {
            0 => h.send(&format!("mine id={id} {mine}")),
            1 => h.send(&format!(
                "mine id={id} dataset=packed min_freq=0.1 radius=2"
            )),
            2 => h.send(&format!(
                "freq id={id} dataset=gen min_support=40 max_edges=3"
            )),
            3 => h.send(&format!(
                "sweep id={id} dataset=gen supports=60,40 max_edges=3"
            )),
            4 => h.send(&format!("stats id={id}")),
            5 => h.send(&format!("mine id={id} dataset=nosuch")),
            6 => {
                h.send(&format!("mine id={id} sleep_ms=40 {mine}"));
                h.send(&format!("cancel id={id}c target={id}"));
            }
            _ => h.send(&format!("ping id={id}")),
        }
    }

    // Drain the op burst before the memory spike: with more ops than
    // queue slots some may resolve `busy` (legitimate shedding), and the
    // spike must reach the governor, not the full queue.
    for id in h.submitted.clone() {
        h.wait_response(&id)?;
    }

    // Memory-pressure spike: a load past the ceiling is rejected with a
    // structured resource_exhausted after evicting cold cache entries —
    // the server stays up and keeps its resident accounting.
    h.send("load id=spike dataset=huge gen=aids count=9000 seed=1");
    let (resp, _) = h.wait_response("spike")?;
    sched.spike_rejected =
        resp.status == Status::Error && resp.field("code") == Some("resource_exhausted");
    check(
        sched.spike_rejected,
        "oversized load rejected with code=resource_exhausted",
    )?;
    check(
        resp.field("max_resident_bytes").is_some() && resp.field("resident_bytes").is_some(),
        "rejection discloses the governor's accounting",
    )?;
    h.send("stats id=after_spike");
    let (resp, _) = h.wait_response("after_spike")?;
    check(
        resp.status == Status::Ok,
        "server keeps serving after the spike",
    )?;
    check(
        resp.field("evictions")
            .and_then(|v| v.parse::<u64>().ok())
            .is_some_and(|n| n >= 1),
        "governor evicted at least one cold cache entry under pressure",
    )?;
    check(
        resp.field("resident_bytes")
            .and_then(|v| v.parse::<u64>().ok())
            .is_some_and(|n| n > 0),
        "stats reports resident bytes",
    )?;
    h.send(&format!("mine id=after_mine {mine}"));
    let (resp, body) = h.wait_response("after_mine")?;
    check(
        resp.status == Status::Ok && body == expected,
        "mining is unaffected by the rejected spike",
    )?;

    // Every accepted request resolves — wait for each id before shutdown
    // so a silently dropped request names itself instead of wedging the
    // drain.
    for id in h.submitted.clone() {
        h.wait_response(&id)?;
    }
    h.send("shutdown id=bye drain_ms=5000");
    let (resp, _) = h.wait_response("bye")?;
    check(resp.status == Status::Ok, "shutdown confirms")?;

    // Exactly one response per submitted request, across every path the
    // schedule exercised (coalesced, cancelled, rejected, errored).
    let responses = h.responses()?;
    for id in &h.submitted {
        let n = responses.iter().filter(|(r, _)| &r.id == id).count();
        check(n == 1, &format!("request '{id}' got {n} responses, want 1"))?;
    }
    sched.requests = h.submitted.len();
    let Harness { server, .. } = h;
    server.join();

    // -- Permanent fault: bounded attempts, structured outcome -----------
    // Last because a quarantining open mutates the directory.
    let io_perm = Io::with_plan(FaultPlan::new(mix(&mut rng)).permanent_at(3));
    match graphsig_store::open_lenient_with(&dir, &io_perm) {
        Ok(o) => check(
            !o.report.quarantined.is_empty(),
            "permanent shard fault must quarantine",
        )?,
        Err(e) => check(
            !e.to_string().is_empty(),
            "permanent fault surfaces a structured error",
        )?,
    }

    sched.fault_events = injected(&io)
        + injected(&io_sr)
        + injected(&io_kill)
        + injected(&server_io)
        + injected(&io_perm);
    sched.retries = io.retries() + server_io.retries();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(sched)
}

/// Split a received byte prefix into complete frames plus a truncated
/// tail, returning `(complete_frames, truncated_tail_bytes)`. Any frame
/// that parses as complete must carry its full payload — the framing
/// invariant a client dropped mid-response relies on. Public so
/// transport-level integration tests can assert it on real TCP prefixes.
pub fn parse_prefix(buf: &[u8]) -> Result<(usize, usize), String> {
    let mut complete = 0;
    let mut rest = buf;
    loop {
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            return Ok((complete, rest.len()));
        };
        let Ok(line) = std::str::from_utf8(&rest[..nl]) else {
            return Err("response header is not UTF-8".into());
        };
        let header = crate::protocol::parse_response_header(line)
            .map_err(|e| format!("complete header line failed to parse: {e}"))?;
        let body_start = nl + 1;
        match body_start.checked_add(header.bytes) {
            Some(end) if end <= rest.len() => {
                complete += 1;
                rest = &rest[end..];
            }
            // Truncated payload: the frame is visibly incomplete (the
            // header promises more bytes than arrived) — it can never be
            // mistaken for a complete response.
            _ => return Ok((complete, rest.len())),
        }
    }
}

/// Read until EOF or deadline; returns received bytes and whether EOF hit.
fn drain_to_eof(stream: &mut TcpStream, deadline: Instant) -> (Vec<u8>, bool) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return (buf, true),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return (buf, false);
                }
            }
            Err(_) => return (buf, true),
        }
    }
}

/// Connection-lifecycle phase: dead, idle, and slow clients against a
/// deadline-enforcing transport, with an active client proceeding
/// throughout.
fn run_tcp_lifecycle() -> Result<(), String> {
    let server = Server::new(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        drain_ms: 5_000,
        ..ServerConfig::default()
    });
    let listener = std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| format!("addr: {e}"))?;
    let tcfg = TransportConfig {
        max_write_buf: 4 * 1024,
        poll_timeout_ms: 10,
        idle_timeout_ms: Some(300),
        handshake_timeout_ms: Some(300),
        write_stall_ticks: 5,
        ..TransportConfig::default()
    };
    let server = Arc::new(server);
    let transport = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || crate::transport::serve(listener, &server, tcfg))
    };

    let connect = || TcpStream::connect(addr).map_err(|e| format!("connect: {e}"));

    // Dead client: never sends a byte; the handshake deadline reaps it.
    let mut dead = connect()?;
    // Idle client: completes one request, then goes silent; the idle
    // deadline reaps it.
    let mut idle = connect()?;
    idle.write_all(b"ping id=i1\n")
        .map_err(|e| format!("idle write: {e}"))?;
    let (buf, _) = drain_to_eof(&mut idle, Instant::now() + Duration::from_millis(500));
    check(
        std::str::from_utf8(&buf)
            .unwrap_or("")
            .contains("id=i1 op=ping status=ok"),
        "idle client's one request answered before it went silent",
    )?;

    // Active client: keeps working past both deadlines — activity and
    // in-flight work defer the reaper.
    let mut active = connect()?;
    active
        .write_all(b"load id=a1 dataset=d gen=aids count=150 seed=3\n")
        .map_err(|e| format!("active write: {e}"))?;
    let deadline = Instant::now() + WAIT;
    let mut got = Vec::new();
    while !String::from_utf8_lossy(&got).contains("id=a1") {
        let (more, eof) = drain_to_eof(&mut active, Instant::now() + Duration::from_millis(200));
        got.extend_from_slice(&more);
        if eof {
            return Err("active client dropped while its request was in flight".into());
        }
        if Instant::now() >= deadline {
            return Err("no load response on the active connection".into());
        }
    }
    // Work spanning the idle window on one connection must not be
    // disturbed by reaps of the dead and idle connections happening now.
    active
        .write_all(b"mine id=a2 dataset=d min_freq=0.04 max_pvalue=0.05 radius=3\n")
        .map_err(|e| format!("active write: {e}"))?;
    let mut got = Vec::new();
    while !String::from_utf8_lossy(&got).contains("id=a2") {
        let (more, eof) = drain_to_eof(&mut active, Instant::now() + Duration::from_millis(200));
        got.extend_from_slice(&more);
        if eof {
            return Err("active client dropped while mining".into());
        }
        if Instant::now() >= deadline {
            return Err("no mine response on the active connection".into());
        }
    }

    // Both silent connections must observe EOF: reaped by their deadlines.
    let (_, eof) = drain_to_eof(&mut dead, Instant::now() + Duration::from_secs(20));
    check(eof, "dead client reaped by the handshake deadline")?;
    let (_, eof) = drain_to_eof(&mut idle, Instant::now() + Duration::from_secs(20));
    check(eof, "idle client reaped by the idle deadline")?;

    // Slow client: floods itself with coalesced mine responses and stops
    // reading; backpressure (write-buffer cap or stall detection) drops
    // the connection. Whatever byte prefix it did receive must split into
    // complete frames plus a visibly truncated tail — never a frame that
    // parses as complete with missing payload.
    let mut slow = connect()?;
    let mut req = String::new();
    for i in 0..160 {
        req.push_str(&format!(
            "mine id=s{i} dataset=d min_freq=0.04 max_pvalue=0.05 radius=3\n"
        ));
    }
    let _ = slow.write_all(req.as_bytes());
    // Do not read; wait for the server to shed the connection, then
    // collect whatever was delivered.
    let (buf, eof) = drain_to_eof_after_silence(&mut slow, Duration::from_secs(60));
    check(eof, "slow client eventually dropped by backpressure")?;
    parse_prefix(&buf)
        .map(|_| ())
        .map_err(|e| format!("slow client observed a malformed frame in its prefix: {e}"))?;

    server.shutdown_now();
    let _ = transport
        .join()
        .map_err(|_| "transport thread panicked".to_string())?;
    Ok(())
}

/// Let the server buffer responses for a while without reading, then
/// drain until EOF (the drop) or timeout.
fn drain_to_eof_after_silence(stream: &mut TcpStream, timeout: Duration) -> (Vec<u8>, bool) {
    std::thread::sleep(Duration::from_millis(400));
    drain_to_eof(stream, Instant::now() + timeout)
}

/// Render a [`ChaosReport`] as the `BENCH_chaos.json` document.
pub fn render_json(report: &ChaosReport, seed: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"chaos\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"schedules\": {},", report.schedules.len());
    let _ = writeln!(
        out,
        "  \"total_fault_events\": {},",
        report.total_fault_events
    );
    let _ = writeln!(out, "  \"total_requests\": {},", report.total_requests);
    let _ = writeln!(out, "  \"total_retries\": {},", report.total_retries);
    let _ = writeln!(out, "  \"lifecycle_ok\": {},", report.lifecycle_ok);
    let _ = writeln!(out, "  \"elapsed_ms\": {},", report.elapsed_ms);
    let _ = writeln!(out, "  \"per_schedule\": [");
    for (i, s) in report.schedules.iter().enumerate() {
        let comma = if i + 1 < report.schedules.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"seed\": {}, \"requests\": {}, \"fault_events\": {}, \"retries\": {}, \
             \"kill_recovered\": {}, \"spike_rejected\": {}, \"oracle_identical\": {}}}{comma}",
            s.seed,
            s.requests,
            s.fault_events,
            s.retries,
            s.kill_recovered,
            s.spike_rejected,
            s.oracle_identical,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_parser_accepts_complete_and_flags_truncation() {
        let full = b"resp id=1 op=ping status=ok bytes=0\n";
        assert_eq!(parse_prefix(full), Ok((1, 0)));
        let payload = b"resp id=2 op=mine status=ok bytes=10\n12345";
        // Header promises 10 bytes, only 5 arrived: visibly truncated.
        let mut buf = full.to_vec();
        buf.extend_from_slice(payload);
        let (complete, tail) = parse_prefix(&buf).unwrap();
        assert_eq!(complete, 1);
        assert!(tail > 0);
        // A torn header line is just tail, not a frame.
        assert_eq!(parse_prefix(b"resp id=3 op=pi"), Ok((0, 15)));
    }

    #[test]
    fn schedules_are_deterministic_in_their_seed() {
        let mut a = 7u64;
        let mut b = 7u64;
        let da: Vec<u64> = (0..16).map(|_| mix(&mut a)).collect();
        let db: Vec<u64> = (0..16).map(|_| mix(&mut b)).collect();
        assert_eq!(da, db);
    }

    /// One miniature schedule end to end — the full soak runs in
    /// `bench_chaos`; this keeps the harness itself under test.
    #[test]
    fn single_schedule_holds_every_invariant() {
        let report = run(&ChaosConfig {
            seed: 11,
            schedules: 1,
            ops_per_schedule: 4,
        })
        .expect("chaos schedule");
        assert_eq!(report.schedules.len(), 1);
        assert!(report.total_fault_events >= 70);
        assert!(report.schedules[0].kill_recovered);
        assert!(report.schedules[0].oracle_identical);
        assert!(report.lifecycle_ok);
    }
}
