//! The resident mining service: bounded queue, worker pool, shared
//! dataset cache, request coalescing, and graceful degradation.
//!
//! # Robustness policy
//!
//! * **Backpressure, not unbounded queueing.** Work requests (`load`,
//!   `mine`, `freq`, `stats`) go through a bounded queue; when it is full
//!   the request is rejected *immediately* with `status=busy` and the
//!   current depth, so a client can back off. Control messages (`ping`,
//!   `cancel`, `shutdown`) never queue — they are handled on the reader
//!   thread, so a saturated server can still be probed, cancelled into
//!   headroom, or shut down. A busy-rejected request is never visible to
//!   `cancel`: its token is registered only after the capacity check
//!   admits it, so `found=true` always means "the server accepted this id".
//! * **Per-request governance.** Every queued request carries its own
//!   [`CancelToken`] and a [`Budget`] assembled from the request's
//!   `timeout_ms`/`max_steps`, clamped by the server's ceilings. Deadlines
//!   run from *submission*, so time spent queued counts — a request that
//!   waited out its deadline returns `truncated (deadline exceeded)`
//!   instead of silently mining stale work.
//! * **Request coalescing.** Concurrent `mine` requests over the same
//!   dataset version with the same resolved config share one governed run
//!   (single-flight, keyed on the [`WindowKey`](graphsig_core::WindowKey)
//!   the `PreparedCache` memoizes on plus the threshold/backend knobs —
//!   see [`crate::batch`]). The first request to reach a worker leads;
//!   later identical requests attach as riders and *do not occupy a
//!   worker*. Responses are byte-identical to solo runs (the pipeline is
//!   deterministic for a fixed config; only the per-rider `top=` render
//!   cap differs). Cancelling a rider detaches it immediately; the run is
//!   cancelled only when its last rider cancels. Explicitly budgeted
//!   requests (`timeout_ms`/`max_steps`) never coalesce — a step budget
//!   is a determinism contract and a deadline anchors to its own
//!   submission. `freq`/`sweep` requests over one dataset already
//!   coalesce their index and compiled-database builds structurally: both
//!   hang off `OnceLock`s in the shared [`Dataset`], so concurrent first
//!   uses perform exactly one build.
//! * **Sweep-aware scheduling.** A `sweep` fans out into one queued
//!   segment per threshold instead of looping inside a single worker.
//!   Segments run at *lower* priority than whole requests, so a long
//!   sweep cannot pin the pool: a `mine` submitted mid-sweep runs as soon
//!   as the current segments finish, not after the whole sweep. The last
//!   segment to finish assembles the response in threshold order —
//!   byte-identical to the old inline loop.
//! * **Panic isolation.** Request handlers and sweep segments run under
//!   [`try_par_map`](graphsig_core::try_par_map): a poisoned request
//!   (malformed data tripping a bug, injected faults in tests) produces a
//!   `status=error` response carrying the panic message; the worker and
//!   the server keep serving. A panicking coalesced leader fails every
//!   rider with that error — riders are never left waiting on a run that
//!   no longer exists.
//! * **Graceful shutdown.** `shutdown` stops intake, waits for queued and
//!   in-flight work under a drain deadline, cancels whatever outlives the
//!   deadline — individual tokens *and* coalesced group tokens (those
//!   requests respond `truncated (cancelled)` — still a structured
//!   response, never a silent drop) — and only then confirms.
//! * **Shared state with versioned invalidation.** Each resident dataset
//!   owns a [`PreparedCache`] (window passes) and a lazily built
//!   [`LabelPairIndex`] shared by `freq` requests. `load` replaces the
//!   whole entry under a bumped version: in-flight requests keep mining
//!   their pinned `Arc` snapshot, new requests see the new version, and
//!   the old caches die with their last reference.
//! * **Observability.** `stats` (no dataset) reports per-op acceptance
//!   counters, cumulative queue-wait and execute times, coalesce
//!   lead/rider counts, and queued segment depth alongside the original
//!   counters, so a load test can attribute latency to queueing vs work
//!   and prove coalescing happened.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use graphsig_core::{
    render_subgraphs, Budget, CacheDisposition, CancelToken, FsmBackend, GraphSigConfig,
    GraphSigResult, Outcome, PreparedCache,
};
use graphsig_fsg::{Fsg, FsgConfig};
use graphsig_graph::{parse_transactions_into, GraphDb, LabelPairIndex, MatcherKind};
use graphsig_gspan::{GSpan, MinerConfig, Pattern};

use crate::batch::{
    cancelled_mine_response, Coalescer, FlightCtx, Joined, MineKey, Rider, SweepFlight,
};
use crate::protocol::{
    parse_request, BackendKind, BudgetParams, FreqRequest, LoadFormat, LoadRequest, LoadSource,
    MineRequest, ProtocolError, Request, Response, Status, SweepRequest,
};

/// Tunables for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads processing queued requests (0 = one per core).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected `busy`.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not ask for one (ms).
    pub default_timeout_ms: Option<u64>,
    /// Ceiling clamping every request deadline (ms). With
    /// `default_timeout_ms` unset this also applies to requests that did
    /// not ask for a deadline.
    pub max_timeout_ms: Option<u64>,
    /// Ceiling clamping *explicit* `max_steps` requests. Never imposed on
    /// requests without one: a blanket step budget would forfeit both
    /// byte-identity with the one-shot CLI and window-pass cache reuse
    /// (step-budgeted runs bypass the cache — see
    /// [`graphsig_core::cache`]).
    pub max_steps_ceiling: Option<u64>,
    /// Default drain deadline for shutdown (ms).
    pub drain_ms: u64,
    /// Honor the fault-injection request keys (`sleep_ms`, `inject=panic`).
    /// Off by default; smoke tests and CI turn it on.
    pub allow_inject: bool,
    /// Memory admission ceiling: `load`s that would push the approximate
    /// resident footprint (databases + prepared-window caches + built
    /// indexes) past this many bytes are rejected with a structured
    /// `code=resource_exhausted` error after LRU-evicting cold cache
    /// entries — the server never OOM-aborts on admission. `None`
    /// disables the governor.
    pub max_resident_bytes: Option<u64>,
    /// Connection auth token. When set, TCP connections must present it
    /// via `auth token=...` before any other op; stdio connections are
    /// exempt (local trust).
    pub auth_token: Option<String>,
    /// Emit one structured log line per completed request on stderr.
    pub log: bool,
    /// The store I/O seam every packed load goes through. Defaults to
    /// real I/O; the chaos harness swaps in a seeded fault plan.
    pub io: graphsig_store::Io,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 16,
            default_timeout_ms: None,
            max_timeout_ms: None,
            max_steps_ceiling: None,
            drain_ms: 5_000,
            allow_inject: false,
            max_resident_bytes: None,
            auth_token: None,
            log: false,
            io: graphsig_store::Io::real(),
        }
    }
}

/// Where responses go. Whole responses are written under the lock, so
/// concurrent workers interleave *responses*, never bytes.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Wrap a sink as a [`SharedWriter`].
pub fn shared_writer(w: impl Write + Send + 'static) -> SharedWriter {
    Arc::new(Mutex::new(Box::new(w)))
}

/// One contiguous ingest segment of a dataset (a store shard, or one
/// text/generator load batch) with its lazily built slice of the
/// label-pair index. Slots are `Arc`-shared across `load append=`
/// versions: appending keeps every already-built segment index and only
/// the new graphs are ever indexed — per-shard, not wholesale,
/// invalidation.
struct IndexSlot {
    /// Graph index range within the dataset's db.
    range: std::ops::Range<usize>,
    index: OnceLock<Arc<LabelPairIndex>>,
}

impl IndexSlot {
    fn get(&self, db: &GraphDb) -> Arc<LabelPairIndex> {
        self.index
            .get_or_init(|| Arc::new(LabelPairIndex::build_range(db, self.range.clone())))
            .clone()
    }
}

/// Provenance of a dataset loaded from a packed store (`format=packed`).
/// Appends *merge* rather than replace this (see `exec_load`), so a
/// degraded store's quarantine disclosure survives later ingests.
#[derive(Clone)]
struct StoreInfo {
    /// Shards listed by the manifest(s) this dataset was assembled from.
    manifest_shards: usize,
    /// Shards quarantined by the lenient open (degraded when > 0).
    quarantined: usize,
    /// Bytes on disk across manifest and surviving shards.
    disk_bytes: u64,
    /// The (latest) store's ingest counter.
    store_version: u64,
}

/// One resident dataset version: the graphs plus every cache keyed to
/// exactly this data. Replaced on `load`; `append=true` carries the old
/// segment index slots into the new version.
pub(crate) struct Dataset {
    pub(crate) name: String,
    pub(crate) version: u64,
    pub(crate) db: Arc<GraphDb>,
    /// `db.approx_resident_bytes()`, computed once at load so admission
    /// checks never re-walk the graphs.
    db_bytes: u64,
    prepared: PreparedCache,
    /// Merged whole-dataset index, assembled from the slots on first use.
    index: OnceLock<Arc<LabelPairIndex>>,
    /// Per-segment lazy indexes, in deterministic segment (gid) order.
    slots: Vec<Arc<IndexSlot>>,
    /// Set when the dataset came (in part) from a packed store.
    store: Option<StoreInfo>,
}

impl Dataset {
    /// The shared label-pair index, built on first use by merging the
    /// per-segment indexes in segment order. Because segment ranges tile
    /// the db contiguously, the merge is exactly equal to a full build
    /// (unit-tested in `graphsig_graph::index`). The `OnceLock` is also
    /// the coalescing point for concurrent `freq`/`sweep` requests: the
    /// first builder runs alone, everyone else blocks briefly and shares
    /// the one build.
    fn index(&self) -> Arc<LabelPairIndex> {
        self.index
            .get_or_init(|| match self.slots.as_slice() {
                [] => Arc::new(LabelPairIndex::build(&self.db)),
                [only] => only.get(&self.db),
                slots => {
                    let parts: Vec<Arc<LabelPairIndex>> =
                        slots.iter().map(|s| s.get(&self.db)).collect();
                    let refs: Vec<&LabelPairIndex> = parts.iter().map(Arc::as_ref).collect();
                    Arc::new(LabelPairIndex::merge(&refs))
                }
            })
            .clone()
    }

    /// Approximate resident bytes this dataset version pins: the graphs,
    /// every initialized prepared-window cache entry, each built segment
    /// index, and the merged index (with its lazily compiled bitset
    /// database). Estimates, not an allocator audit — the governor's
    /// admission decisions only need relative magnitudes.
    fn resident_bytes(&self) -> u64 {
        let slots: u64 = self
            .slots
            .iter()
            .filter_map(|s| s.index.get())
            .map(|i| i.approx_resident_bytes())
            .sum();
        let merged = self.index.get().map_or(0, |i| i.approx_resident_bytes());
        self.db_bytes + self.prepared.approx_bytes() + slots + merged
    }

    /// `quarantined/total` when the backing store lost shards, else None.
    pub(crate) fn degraded(&self) -> Option<String> {
        match &self.store {
            Some(info) if info.quarantined > 0 => {
                Some(format!("{}/{}", info.quarantined, info.manifest_shards))
            }
            _ => None,
        }
    }
}

/// A queued unit of work.
struct Job {
    request: Request,
    out: SharedWriter,
    token: CancelToken,
    submitted: Instant,
}

/// One queued sweep threshold: everything needed to run `supports[idx]`
/// and, if last to finish, assemble the sweep response.
struct SegmentJob {
    flight: Arc<SweepFlight>,
    dataset: Arc<Dataset>,
    index: Arc<LabelPairIndex>,
    params: Arc<FreqParams>,
    budget: Budget,
    idx: usize,
}

/// What a worker can pick up. Whole requests outrank sweep segments so a
/// fanned-out sweep never starves fresh work (scheduling fairness).
enum Work {
    Request(Job),
    Segment(SegmentJob),
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    /// Sweep segments, drained only when `jobs` is empty. Bounded by the
    /// threshold counts of accepted sweeps, not by `queue_capacity` — the
    /// capacity check already admitted the sweep as one request.
    segments: VecDeque<SegmentJob>,
    active: usize,
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    served: AtomicU64,
    busy_rejected: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    cancel_requests: AtomicU64,
    /// Prepared-cache entries evicted by the memory governor.
    evictions: AtomicU64,
    // Accepted (queued) submissions by op.
    op_load: AtomicU64,
    op_mine: AtomicU64,
    op_freq: AtomicU64,
    op_sweep: AtomicU64,
    op_stats: AtomicU64,
    /// Total microseconds requests spent queued before a worker picked
    /// them up (latency attribution: waiting vs working).
    queue_wait_us: AtomicU64,
    /// Total microseconds workers spent executing handlers and segments.
    exec_us: AtomicU64,
}

/// A point-in-time view of the server counters (smoke assertions, stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Request lines received (including rejected and malformed ones).
    pub received: u64,
    /// Responses written for queued work (ok or error).
    pub served: u64,
    /// Submissions rejected with `status=busy`.
    pub busy_rejected: u64,
    /// Error responses (including panics and parse errors).
    pub errors: u64,
    /// Request handlers that panicked (isolated; server kept serving).
    pub panics: u64,
    /// Jobs currently queued.
    pub queued: usize,
    /// Jobs currently executing.
    pub active: usize,
    /// Sweep segments currently queued.
    pub segments: usize,
    /// Coalesced mine flights created (each ran the pipeline once).
    pub coalesce_leads: u64,
    /// Mine requests that attached to an in-flight run instead of
    /// executing (each is one whole pipeline run saved).
    pub coalesce_riders: u64,
    /// Cumulative queue wait across picked-up requests (µs).
    pub queue_wait_us: u64,
    /// Cumulative handler execution time (µs).
    pub exec_us: u64,
}

struct ServerInner {
    cfg: ServerConfig,
    datasets: Mutex<HashMap<String, Arc<Dataset>>>,
    queue: Mutex<QueueState>,
    /// Wakes workers when work is queued (or termination is flagged).
    work_cv: Condvar,
    /// Wakes the drain loop when the queue goes empty-and-idle.
    idle_cv: Condvar,
    /// Cancel tokens of every queued or executing request, by id.
    /// Lock order: `queue` before `inflight` when both are held.
    inflight: Mutex<HashMap<String, CancelToken>>,
    /// Single-flight registry for coalesced mine runs.
    coalescer: Coalescer,
    /// Intake closed (shutdown requested).
    shutting_down: AtomicBool,
    /// Workers may exit once the queue is empty.
    terminated: AtomicBool,
    counters: Counters,
}

/// A running mining service. Workers start on construction; requests are
/// fed in as protocol lines via [`Server::dispatch_line`] or one of the
/// transport loops ([`Server::serve_connection`], the event-driven
/// [`crate::transport::serve`] behind `serve --tcp`).
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A worker panicking while holding a lock is already isolated by
    // try_par_map; a poisoned mutex here would only ever hold consistent
    // data, so recover rather than propagate.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Server {
    /// Start a server: spawns the worker pool immediately.
    pub fn new(cfg: ServerConfig) -> Self {
        let worker_count = graphsig_core::resolve_threads(cfg.workers);
        let inner = Arc::new(ServerInner {
            cfg,
            datasets: Mutex::new(HashMap::new()),
            queue: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            coalescer: Coalescer::default(),
            shutting_down: AtomicBool::new(false),
            terminated: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();
        Server { inner, workers }
    }

    /// Feed one request line; any response is written to `out`. Returns
    /// `true` when the line was a completed `shutdown` — the caller should
    /// stop reading.
    pub fn dispatch_line(&self, line: &str, out: &SharedWriter) -> bool {
        self.inner.dispatch_line(line, out)
    }

    /// Whether connections must authenticate (`--auth-token` configured).
    pub fn requires_auth(&self) -> bool {
        self.inner.cfg.auth_token.is_some()
    }

    /// Feed one request line from a connection that may not have
    /// authenticated yet. Until `*authed` is true every op except a
    /// correct `auth` is rejected with `status=error code=unauthorized`
    /// (the connection stays open so the client can retry). A correct
    /// `auth` flips `*authed` for the rest of the connection. Used by the
    /// TCP transport; stdio uses [`Server::dispatch_line`] directly.
    pub fn dispatch_line_gated(&self, line: &str, authed: &mut bool, out: &SharedWriter) -> bool {
        if *authed {
            return self.inner.dispatch_line(line, out);
        }
        *authed = self.inner.gate_unauthenticated(line, out);
        false
    }

    /// Serve one connection: read request lines until EOF or shutdown.
    /// On EOF without a `shutdown` request the connection just closes;
    /// the server (and other connections) keep running.
    pub fn serve_connection(&self, reader: impl std::io::BufRead, out: SharedWriter) {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if self.inner.dispatch_line(&line, &out) {
                break;
            }
            if self.inner.terminated.load(Ordering::Relaxed) {
                break;
            }
        }
    }

    /// Whether a completed `shutdown` has terminated the worker pool.
    pub fn is_terminated(&self) -> bool {
        self.inner.terminated.load(Ordering::Relaxed)
    }

    /// Drain and stop without a client `shutdown` request (EOF on stdio,
    /// Ctrl-C handling, tests). Uses the configured drain deadline.
    pub fn shutdown_now(&self) {
        let drain = self.inner.cfg.drain_ms;
        self.inner.shutdown(drain);
    }

    /// Current counters.
    pub fn snapshot(&self) -> ServerSnapshot {
        self.inner.snapshot()
    }

    /// Wait for all workers to exit. Call after shutdown (a completed
    /// `shutdown` request or [`Server::shutdown_now`]).
    pub fn join(mut self) {
        // If nobody shut us down, do it now so join cannot hang.
        if !self.inner.terminated.load(Ordering::Relaxed) {
            self.shutdown_now();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.inner.terminated.load(Ordering::Relaxed) {
            self.inner.shutdown(self.inner.cfg.drain_ms);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl ServerInner {
    fn snapshot(&self) -> ServerSnapshot {
        let q = lock(&self.queue);
        let (leads, riders) = self.coalescer.counters();
        ServerSnapshot {
            received: self.counters.received.load(Ordering::Relaxed),
            served: self.counters.served.load(Ordering::Relaxed),
            busy_rejected: self.counters.busy_rejected.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
            queued: q.jobs.len(),
            active: q.active,
            segments: q.segments.len(),
            coalesce_leads: leads,
            coalesce_riders: riders,
            queue_wait_us: self.counters.queue_wait_us.load(Ordering::Relaxed),
            exec_us: self.counters.exec_us.load(Ordering::Relaxed),
        }
    }

    fn write_response(&self, out: &SharedWriter, resp: &Response) {
        if resp.status == Status::Error {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        let mut w = lock(out);
        let _ = w.write_all(resp.render().as_bytes());
        let _ = w.flush();
    }

    /// Complete one accepted request: release its id, count it, respond.
    /// The single completion path for solo requests, coalesced riders, and
    /// assembled sweeps. Removing the inflight entry is the claim — if the
    /// id is already gone (a cancel-detached rider whose leader then
    /// panicked, say), the exactly-one-response invariant holds by
    /// no-opping here rather than by every caller reasoning about races.
    fn finish(&self, id: &str, out: &SharedWriter, resp: &Response) {
        self.finish_as(id, out, resp, "solo", 0, 0);
    }

    /// [`ServerInner::finish`] with request-log attribution: how this
    /// request completed (`solo`, `lead`, `rider`, `sweep`) and its
    /// queue-wait / execution times where the completion path knows them
    /// (deferred completions — riders, sweep assembly — report zeros; the
    /// role field says why).
    fn finish_as(
        &self,
        id: &str,
        out: &SharedWriter,
        resp: &Response,
        role: &str,
        queue_wait_us: u64,
        exec_us: u64,
    ) {
        if lock(&self.inflight).remove(id).is_none() {
            return;
        }
        self.counters.served.fetch_add(1, Ordering::Relaxed);
        self.log_request(resp, role, queue_wait_us, exec_us);
        self.write_response(out, resp);
    }

    /// One structured stderr line per completed request (`--log`).
    fn log_request(&self, resp: &Response, role: &str, queue_wait_us: u64, exec_us: u64) {
        if !self.cfg.log {
            return;
        }
        let f = |key: &str| resp.field(key).unwrap_or("-").to_string();
        eprintln!(
            "[graphsig] op={} id={} status={} dataset={} version={} degraded={} \
             completion={} role={role} queue_wait_us={queue_wait_us} exec_us={exec_us}",
            crate::protocol::escape(&resp.op),
            crate::protocol::escape(&resp.id),
            match resp.status {
                Status::Ok => "ok",
                Status::Error => "error",
                Status::Busy => "busy",
            },
            f("dataset"),
            f("version"),
            f("degraded"),
            f("completion"),
        );
    }

    /// Handle one line from a connection that has not authenticated.
    /// Returns the connection's new authed state. Everything except a
    /// correct `auth` gets `status=error code=unauthorized`; op and id are
    /// echoed where the line parses so the client can correlate.
    fn gate_unauthenticated(&self, line: &str, out: &SharedWriter) -> bool {
        let parsed = match parse_request(line) {
            Ok(None) => return false, // blank / comment
            Ok(Some(req)) => req,
            Err(ProtocolError { id, .. }) => {
                self.counters.received.fetch_add(1, Ordering::Relaxed);
                let id = id.as_deref().unwrap_or("-");
                self.write_response(
                    out,
                    &Response::error(id, "?", "authenticate first (auth token=...)")
                        .with_field("code", "unauthorized"),
                );
                return false;
            }
        };
        self.counters.received.fetch_add(1, Ordering::Relaxed);
        match &parsed {
            Request::Auth { id, token } => {
                let ok = self.cfg.auth_token.as_deref() == Some(token.as_str());
                if ok {
                    self.write_response(
                        out,
                        &Response::new(id, "auth", Status::Ok).with_field("authorized", true),
                    );
                } else {
                    self.write_response(
                        out,
                        &Response::error(id, "auth", "bad token")
                            .with_field("code", "unauthorized"),
                    );
                }
                ok
            }
            other => {
                self.write_response(
                    out,
                    &Response::error(
                        other.id(),
                        other.op(),
                        "authenticate first (auth token=...)",
                    )
                    .with_field("code", "unauthorized"),
                );
                false
            }
        }
    }

    fn dispatch_line(&self, line: &str, out: &SharedWriter) -> bool {
        let request = match parse_request(line) {
            Ok(None) => return false, // blank / comment
            Ok(Some(req)) => req,
            Err(ProtocolError { message, id }) => {
                self.counters.received.fetch_add(1, Ordering::Relaxed);
                let id = id.as_deref().unwrap_or("-");
                self.write_response(out, &Response::error(id, "?", message));
                return false;
            }
        };
        self.counters.received.fetch_add(1, Ordering::Relaxed);
        match &request {
            Request::Ping { id } => {
                self.write_response(out, &Response::new(id, "ping", Status::Ok));
                false
            }
            Request::Auth { id, token } => {
                // Reaching here means the connection is already trusted
                // (stdio, or a TCP connection past its gate). Re-auth is
                // validated anyway so a client can probe its token.
                match &self.cfg.auth_token {
                    Some(expected) if expected != token => self.write_response(
                        out,
                        &Response::error(id, "auth", "bad token")
                            .with_field("code", "unauthorized"),
                    ),
                    _ => self.write_response(
                        out,
                        &Response::new(id, "auth", Status::Ok).with_field("authorized", true),
                    ),
                }
                false
            }
            Request::Cancel { id, target } => {
                self.counters
                    .cancel_requests
                    .fetch_add(1, Ordering::Relaxed);
                let found = match lock(&self.inflight).get(target) {
                    Some(token) => {
                        token.cancel();
                        true
                    }
                    None => false,
                };
                if found {
                    // If the target rides a coalesced flight, detach it so
                    // it responds `truncated (cancelled)` right now; the
                    // shared run keeps going for the remaining riders (and
                    // is cancelled outright when none remain).
                    if let Some((rider, ctx)) = self.coalescer.on_cancel(target) {
                        let resp = cancelled_mine_response(
                            &rider.id,
                            &ctx.dataset,
                            ctx.version,
                            ctx.degraded.as_deref(),
                        );
                        self.finish_as(&rider.id, &rider.out, &resp, "rider", 0, 0);
                    }
                }
                self.write_response(
                    out,
                    &Response::new(id, "cancel", Status::Ok)
                        .with_field("target", target)
                        .with_field("found", found),
                );
                false
            }
            Request::Shutdown { id, drain_ms } => {
                let drain = drain_ms.unwrap_or(self.cfg.drain_ms);
                let forced = self.shutdown(drain);
                self.write_response(
                    out,
                    &Response::new(id, "shutdown", Status::Ok)
                        .with_field("served", self.counters.served.load(Ordering::Relaxed))
                        .with_field("forced", forced),
                );
                true
            }
            Request::Load(_)
            | Request::Mine(_)
            | Request::Freq(_)
            | Request::Sweep(_)
            | Request::Stats { .. } => {
                self.submit(request, out);
                false
            }
        }
    }

    /// Queue a work request, or reject it (`busy` / shutdown / duplicate).
    fn submit(&self, request: Request, out: &SharedWriter) {
        let (id, op) = (request.id().to_string(), request.op());
        if self.shutting_down.load(Ordering::Relaxed) {
            self.write_response(out, &Response::error(&id, op, "server is shutting down"));
            return;
        }
        let mut q = lock(&self.queue);
        if q.jobs.len() >= self.cfg.queue_capacity {
            // Rejected before the id is ever registered: a racing `cancel`
            // for a busy-rejected request always reports found=false.
            let depth = q.jobs.len();
            drop(q);
            self.counters.busy_rejected.fetch_add(1, Ordering::Relaxed);
            self.write_response(
                out,
                &Response::new(&id, op, Status::Busy)
                    .with_field("queue", depth)
                    .with_field("capacity", self.cfg.queue_capacity),
            );
            return;
        }
        let token = CancelToken::new();
        {
            // Nested under `queue` (the one place both are held — same
            // order as `shutdown`) so the admitted id is registered before
            // any worker could possibly complete it.
            let mut inflight = lock(&self.inflight);
            if inflight.contains_key(&id) {
                drop(inflight);
                drop(q);
                self.write_response(
                    out,
                    &Response::error(&id, op, format!("request id '{id}' already in flight")),
                );
                return;
            }
            inflight.insert(id.clone(), token.clone());
        }
        self.count_op(op);
        q.jobs.push_back(Job {
            request,
            out: Arc::clone(out),
            token,
            submitted: Instant::now(),
        });
        drop(q);
        self.work_cv.notify_one();
    }

    fn count_op(&self, op: &str) {
        let counter = match op {
            "load" => &self.counters.op_load,
            "mine" => &self.counters.op_mine,
            "freq" => &self.counters.op_freq,
            "sweep" => &self.counters.op_sweep,
            "stats" => &self.counters.op_stats,
            _ => return,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn worker_loop(&self) {
        loop {
            let work = {
                let mut q = lock(&self.queue);
                loop {
                    // Whole requests first: sweep segments are the one kind
                    // of work that arrives in bulk, so they yield to fresh
                    // requests (fairness under fan-out).
                    if let Some(job) = q.jobs.pop_front() {
                        q.active += 1;
                        break Work::Request(job);
                    }
                    if let Some(seg) = q.segments.pop_front() {
                        q.active += 1;
                        break Work::Segment(seg);
                    }
                    if self.terminated.load(Ordering::Relaxed) {
                        return;
                    }
                    q = self.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            match work {
                Work::Request(job) => self.process(job),
                Work::Segment(seg) => self.process_segment(seg),
            }
            let mut q = lock(&self.queue);
            q.active -= 1;
            if q.active == 0 && q.jobs.is_empty() && q.segments.is_empty() {
                self.idle_cv.notify_all();
            }
        }
    }

    /// Execute one job with panic isolation and always respond — directly,
    /// or through whichever deferred path (`finish` by a coalescing leader
    /// or a last sweep segment) the handler armed.
    fn process(&self, job: Job) {
        let Job {
            request,
            out,
            token,
            submitted,
        } = job;
        let (id, op) = (request.id().to_string(), request.op());
        let waited_us = submitted.elapsed().as_micros() as u64;
        self.counters
            .queue_wait_us
            .fetch_add(waited_us, Ordering::Relaxed);
        let exec_started = Instant::now();
        // try_par_map with a single item runs inline under catch_unwind:
        // a panicking handler yields a structured error, not a dead worker.
        let result = graphsig_core::try_par_map(1, std::slice::from_ref(&request), |req| {
            self.execute(req, &token, submitted, &out)
        });
        let exec_us = exec_started.elapsed().as_micros() as u64;
        self.counters.exec_us.fetch_add(exec_us, Ordering::Relaxed);
        match result {
            // `None` means deferred: this request attached to a coalesced
            // run, led one (and already finished every rider), or fanned
            // out into sweep segments. Someone else owns the response.
            Ok(mut v) => {
                if let Some(resp) = v.pop().flatten() {
                    self.finish_as(&id, &out, &resp, "solo", waited_us, exec_us);
                }
            }
            Err(panicked) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                let msg = format!("request handler panicked: {}", panicked.message);
                // A panicking leader takes its whole flight down: every
                // rider gets the error, none is left waiting forever.
                match self.coalescer.fail_leader(&id) {
                    Some(riders) => {
                        for rider in riders {
                            let resp = Response::error(&rider.id, op, msg.clone());
                            let role = if rider.id == id { "lead" } else { "rider" };
                            self.finish_as(&rider.id, &rider.out, &resp, role, 0, 0);
                        }
                    }
                    None => self.finish(&id, &out, &Response::error(&id, op, msg)),
                }
            }
        }
    }

    /// Run one sweep segment; the last segment to finish assembles and
    /// writes the sweep response.
    fn process_segment(&self, seg: SegmentJob) {
        let exec_started = Instant::now();
        let result = graphsig_core::try_par_map(1, std::slice::from_ref(&seg), |s| {
            run_freq(
                &s.dataset.db,
                &s.index,
                s.flight.supports[s.idx],
                &s.params,
                s.budget.clone(),
            )
        });
        self.counters
            .exec_us
            .fetch_add(exec_started.elapsed().as_micros() as u64, Ordering::Relaxed);
        let last = match result {
            Ok(mut v) => {
                let outcome = v.pop().expect("one segment in, one outcome out");
                seg.flight.record(seg.idx, outcome)
            }
            Err(panicked) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                seg.flight.record_panic(panicked.message)
            }
        };
        if !last {
            return;
        }
        let flight = &seg.flight;
        let resp = match flight.panicked() {
            Some(msg) => Response::error(
                &flight.id,
                "sweep",
                format!("request handler panicked: {msg}"),
            ),
            None => {
                let (completion, total, payload) =
                    flight.assemble(|patterns| render_patterns(&seg.dataset.db, patterns));
                with_degraded(
                    Response::new(&flight.id, "sweep", Status::Ok)
                        .with_field("dataset", &seg.dataset.name)
                        .with_field("version", seg.dataset.version),
                    &seg.dataset,
                )
                .with_field("completion", completion)
                .with_field("supports", flight.supports.len())
                .with_field("patterns", total)
                .with_field("index_types", seg.index.len())
                .with_payload(payload)
            }
        };
        self.finish_as(&flight.id, &flight.out, &resp, "sweep", 0, 0);
    }

    /// Stop intake and drain. Returns whether the drain deadline forced
    /// cancellation of remaining work.
    fn shutdown(&self, drain_ms: u64) -> bool {
        self.shutting_down.store(true, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_millis(drain_ms);
        let mut forced = false;
        let mut q = lock(&self.queue);
        while q.active > 0 || !q.jobs.is_empty() || !q.segments.is_empty() {
            if !forced && Instant::now() >= deadline {
                // Drain deadline passed: cancel everything still in
                // flight. Each cancelled request still gets a structured
                // `truncated (cancelled)` response — then we keep waiting
                // (cooperative cancellation is fast but not instant).
                for token in lock(&self.inflight).values() {
                    token.cancel();
                }
                // Coalesced runs listen to their *group* token, which only
                // falls when every rider cancels through `cancel`; a
                // forced drain fells them all directly.
                self.coalescer.cancel_all();
                forced = true;
            }
            let wait = if forced {
                Duration::from_millis(50)
            } else {
                deadline
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(50))
                    .max(Duration::from_millis(1))
            };
            let (guard, _) = self
                .idle_cv
                .wait_timeout(q, wait)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        drop(q);
        self.terminated.store(true, Ordering::Relaxed);
        self.work_cv.notify_all();
        forced
    }

    /// Build the effective budget for a request: request limits clamped by
    /// server ceilings, deadline measured from submission, and always the
    /// given cancel token (a request's own, or a coalesced group's).
    fn budget_for(&self, params: &BudgetParams, token: &CancelToken, submitted: Instant) -> Budget {
        let mut budget = Budget::unlimited().with_cancel(token.clone());
        let timeout_ms = params.timeout_ms.or(self.cfg.default_timeout_ms);
        let timeout_ms = match (timeout_ms, self.cfg.max_timeout_ms) {
            (Some(t), Some(ceiling)) => Some(t.min(ceiling)),
            (None, ceiling) => ceiling,
            (t, None) => t,
        };
        if let Some(ms) = timeout_ms {
            budget = budget.with_deadline_at(submitted + Duration::from_millis(ms));
        }
        let max_steps = match (params.max_steps, self.cfg.max_steps_ceiling) {
            (Some(s), Some(ceiling)) => Some(s.min(ceiling)),
            (s, _) => s,
        };
        if let Some(steps) = max_steps {
            budget = budget.with_max_steps(steps);
        }
        budget
    }

    fn dataset(&self, name: &str) -> Result<Arc<Dataset>, String> {
        lock(&self.datasets)
            .get(name)
            .cloned()
            .ok_or_else(|| format!("unknown dataset '{name}' (load it first)"))
    }

    /// Approximate resident bytes across every dataset except `except`
    /// (the name a `load` is about to replace — its memory is freed by the
    /// replacement, so it does not count against the new version).
    fn resident_bytes_excluding(&self, except: &str) -> u64 {
        lock(&self.datasets)
            .values()
            .filter(|d| d.name != except)
            .map(|d| d.resident_bytes())
            .sum()
    }

    /// Total approximate resident bytes (stats reporting).
    fn resident_bytes_total(&self) -> u64 {
        lock(&self.datasets)
            .values()
            .map(|d| d.resident_bytes())
            .sum()
    }

    /// Evict one cold prepared-cache entry under memory pressure: the
    /// least-recently-used initialized entry of whichever dataset frees
    /// the most bytes (deterministic name tiebreak). Returns the bytes
    /// freed, or `None` when no dataset has an evictable entry left.
    fn evict_coldest_prepared(&self, except: &str) -> Option<u64> {
        let candidates: Vec<Arc<Dataset>> = {
            let mut v: Vec<Arc<Dataset>> = lock(&self.datasets)
                .values()
                .filter(|d| d.name != except)
                .cloned()
                .collect();
            v.sort_by(|a, b| {
                b.prepared
                    .approx_bytes()
                    .cmp(&a.prepared.approx_bytes())
                    .then_with(|| a.name.cmp(&b.name))
            });
            v
        };
        for d in candidates {
            if let Some(freed) = d.prepared.evict_lru() {
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                return Some(freed);
            }
        }
        None
    }

    /// Run one request. `Some` is the response for *this* request id;
    /// `None` means the handler deferred — it attached to a coalesced run,
    /// led one and already responded to every rider via `finish`, or
    /// queued sweep segments that will.
    fn execute(
        &self,
        request: &Request,
        token: &CancelToken,
        submitted: Instant,
        out: &SharedWriter,
    ) -> Option<Response> {
        match request {
            Request::Load(r) => Some(self.exec_load(r)),
            Request::Mine(r) => self.exec_mine(r, token, submitted, out),
            Request::Freq(r) => Some(self.exec_freq(r, token, submitted)),
            Request::Sweep(r) => self.exec_sweep(r, token, submitted, out),
            Request::Stats { id, dataset } => Some(self.exec_stats(id, dataset.as_deref())),
            // Control ops never reach the queue.
            other => Some(Response::error(
                other.id(),
                other.op(),
                "internal: control op queued",
            )),
        }
    }

    fn exec_load(&self, r: &LoadRequest) -> Response {
        let started = Instant::now();
        // Appends extend the prior version's graphs and keep its built
        // segment indexes; a plain load starts from nothing.
        let prior = if r.append {
            match self.dataset(&r.dataset) {
                Ok(d) => Some(d),
                Err(e) => return Response::error(&r.id, "load", format!("append failed: {e}")),
            }
        } else {
            None
        };
        let mut db = match &prior {
            Some(d) => (*d.db).clone(),
            None => GraphDb::new(),
        };
        let base_len = db.len();
        let mut store = None;
        // Transient-fault retries spent on this load's store I/O.
        let mut retries: Option<u64> = None;
        // Shard boundaries of this load's packed ingest (absolute gids),
        // so appended shards get per-shard slots exactly like fresh ones.
        let mut shard_ranges: Option<Vec<std::ops::Range<usize>>> = None;
        match (&r.source, r.format) {
            (LoadSource::Path(path), LoadFormat::Text) => {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        return Response::error(&r.id, "load", format!("cannot read {path}: {e}"))
                    }
                };
                if let Err(e) = parse_transactions_into(&mut db, &text) {
                    return Response::error(&r.id, "load", format!("{path}: {e}"));
                }
            }
            (LoadSource::Path(path), LoadFormat::Packed) => {
                // Lenient open through the server's I/O seam: damaged
                // shards are quarantined (moved aside, reported) and the
                // dataset serves the survivors in an explicitly degraded
                // state; transient faults are retried with backoff and
                // surface only as a `retries=` count on the response.
                let retries_before = self.cfg.io.retries();
                let opened = match graphsig_store::open_lenient_with(
                    std::path::Path::new(path),
                    &self.cfg.io,
                ) {
                    Ok(o) => o,
                    Err(e) => return Response::error(&r.id, "load", e.to_string()),
                };
                retries = Some(self.cfg.io.retries() - retries_before);
                store = Some(StoreInfo {
                    manifest_shards: opened.manifest.shards.len(),
                    quarantined: opened.report.quarantined.len(),
                    disk_bytes: opened.disk_bytes(),
                    store_version: opened.manifest.store_version,
                });
                // Surviving shards tile the opened db contiguously; offset
                // by base_len they tile the tail of the combined db.
                shard_ranges = Some(
                    opened
                        .shards
                        .iter()
                        .map(|s| base_len + s.db_start..base_len + s.db_start + s.graph_count)
                        .collect(),
                );
                if prior.is_some() {
                    db.absorb(&opened.db);
                } else {
                    db = opened.db;
                }
            }
            (LoadSource::AidsLike { count, seed }, _) => {
                let gen = graphsig_datagen::aids_like(*count, *seed).db;
                if prior.is_some() {
                    db.absorb(&gen);
                } else {
                    db = gen;
                }
            }
        }
        let graphs = db.len();
        let loaded = graphs - base_len;
        // Store provenance survives appends: a text/generator append onto
        // a packed dataset keeps the prior quarantine disclosure, and a
        // packed append merges shard/quarantine counts — `degraded=` never
        // silently disappears while quarantined data is still being served.
        let store = match (prior.as_ref().and_then(|d| d.store.as_ref()), store) {
            (None, current) => current,
            (Some(prior_info), None) => Some(prior_info.clone()),
            (Some(prior_info), Some(current)) => Some(StoreInfo {
                manifest_shards: prior_info.manifest_shards + current.manifest_shards,
                quarantined: prior_info.quarantined + current.quarantined,
                disk_bytes: prior_info.disk_bytes + current.disk_bytes,
                store_version: current.store_version,
            }),
        };
        // Segment slots: appended datasets keep the prior version's slots
        // (their built indexes stay valid — old graphs and label ids are
        // untouched) and gain one slot per new shard (packed) or one slot
        // for the new batch (text/generator), so later invalidation stays
        // shard-grained no matter how the dataset was assembled.
        let mut slots: Vec<Arc<IndexSlot>> =
            prior.as_ref().map_or_else(Vec::new, |d| d.slots.clone());
        if let Some(ranges) = shard_ranges {
            slots.extend(ranges.into_iter().map(|range| {
                Arc::new(IndexSlot {
                    range,
                    index: OnceLock::new(),
                })
            }));
        } else if loaded > 0 || slots.is_empty() {
            slots.push(Arc::new(IndexSlot {
                range: base_len..graphs,
                index: OnceLock::new(),
            }));
        }
        let store_fields = store.as_ref().map(|s| {
            (
                s.manifest_shards - s.quarantined,
                s.quarantined,
                s.disk_bytes,
                s.store_version,
            )
        });
        let degraded = store
            .as_ref()
            .filter(|s| s.quarantined > 0)
            .map(|s| format!("{}/{}", s.quarantined, s.manifest_shards));
        let db_bytes = db.approx_resident_bytes();
        // Memory admission: would making this version resident push the
        // server past its ceiling? Cold prepared-cache entries are LRU
        // evicted first; if the graphs alone still do not fit, the load is
        // rejected with a structured error — the server never OOM-aborts
        // and the previous dataset version (if any) keeps serving.
        if let Some(max) = self.cfg.max_resident_bytes {
            let mut resident = self.resident_bytes_excluding(&r.dataset);
            while resident + db_bytes > max {
                match self.evict_coldest_prepared(&r.dataset) {
                    Some(freed) => resident = resident.saturating_sub(freed),
                    None => break,
                }
            }
            if resident + db_bytes > max {
                return Response::error(
                    &r.id,
                    "load",
                    format!(
                        "resident ceiling exceeded: loading {db_bytes} bytes over \
                         {resident} resident would pass max_resident_bytes={max}"
                    ),
                )
                .with_field("code", "resource_exhausted")
                .with_field("requested_bytes", db_bytes)
                .with_field("resident_bytes", resident)
                .with_field("max_resident_bytes", max);
            }
        }
        let version = {
            let mut datasets = lock(&self.datasets);
            let version = datasets.get(&r.dataset).map_or(1, |d| d.version + 1);
            // Versioned invalidation: the new Arc replaces the old entry;
            // requests already holding the old version finish against it,
            // and its caches are freed with the last reference.
            datasets.insert(
                r.dataset.clone(),
                Arc::new(Dataset {
                    name: r.dataset.clone(),
                    version,
                    db: Arc::new(db),
                    db_bytes,
                    prepared: PreparedCache::new(),
                    index: OnceLock::new(),
                    slots,
                    store,
                }),
            );
            version
        };
        let mut resp = Response::new(&r.id, "load", Status::Ok)
            .with_field("dataset", &r.dataset)
            .with_field("version", version)
            .with_field("graphs", graphs)
            .with_field("loaded", loaded)
            .with_field("resident_bytes", db_bytes)
            .with_field("parse_ms", started.elapsed().as_millis());
        if let Some(n) = retries {
            resp = resp.with_field("retries", n);
        }
        if let Some((shards, quarantined, disk_bytes, store_version)) = store_fields {
            resp = resp
                .with_field("shards", shards)
                .with_field("quarantined", quarantined)
                .with_field("disk_bytes", disk_bytes)
                .with_field("store_version", store_version);
        }
        if let Some(d) = degraded {
            resp = resp.with_field("degraded", d);
        }
        resp
    }

    /// `mine`: coalescing entry point. Unbudgeted requests single-flight
    /// on [`MineKey`]; the leader runs once and responds to every rider.
    fn exec_mine(
        &self,
        r: &MineRequest,
        token: &CancelToken,
        submitted: Instant,
        out: &SharedWriter,
    ) -> Option<Response> {
        if (r.inject_panic || r.sleep_ms.is_some()) && !self.cfg.allow_inject {
            return Some(Response::error(
                &r.id,
                "mine",
                "fault-injection keys are disabled",
            ));
        }
        let dataset = match self.dataset(&r.dataset) {
            Ok(d) => d,
            Err(e) => return Some(Response::error(&r.id, "mine", e)),
        };
        let defaults = GraphSigConfig::default();
        let cfg = GraphSigConfig {
            max_pvalue: r.max_pvalue.unwrap_or(defaults.max_pvalue),
            min_freq: r.min_freq.unwrap_or(defaults.min_freq),
            radius: r.radius.unwrap_or(defaults.radius),
            fsm_freq: r.fsm_freq.unwrap_or(defaults.fsm_freq),
            threads: r.threads.unwrap_or(defaults.threads),
            fsm_backend: match r.backend {
                None | Some(BackendKind::Fsg) => FsmBackend::Fsg,
                Some(BackendKind::GSpan) => FsmBackend::GSpan,
            },
            matcher: r.matcher.unwrap_or_default(),
            ..defaults
        };
        let in_range = (0.0..=1.0).contains(&cfg.max_pvalue)
            && cfg.min_freq > 0.0
            && cfg.min_freq <= 1.0
            && cfg.fsm_freq > 0.0
            && cfg.fsm_freq <= 1.0;
        if !in_range {
            // GraphSig::new asserts on these; reject structured instead.
            return Some(Response::error(
                &r.id,
                "mine",
                "thresholds out of range: need max_pvalue in [0,1], min_freq and fsm_freq in (0,1]",
            ));
        }
        let top = r.top.unwrap_or(usize::MAX);
        let degraded = dataset.degraded();
        // Cancelled while queued: respond now. Without this, a cancelled
        // request could still lead a flight under a fresh group token and
        // mine to completion as if the cancel never happened.
        if token.is_cancelled() {
            return Some(cancelled_mine_response(
                &r.id,
                &dataset.name,
                dataset.version,
                degraded.as_deref(),
            ));
        }
        if r.budget.timeout_ms.is_some() || r.budget.max_steps.is_some() {
            // Explicit budgets run solo: a step budget is a determinism
            // contract with this request, and a deadline anchors to this
            // request's own submission instant.
            let budget = self.budget_for(&r.budget, token, submitted);
            return Some(match self.run_mine(r, &cfg, budget, token, &dataset) {
                MineRun::Cancelled => cancelled_mine_response(
                    &r.id,
                    &dataset.name,
                    dataset.version,
                    degraded.as_deref(),
                ),
                MineRun::Done(outcome, disposition) => {
                    mine_response(&r.id, &dataset, &outcome, disposition, top)
                }
            });
        }
        let key = MineKey::of(&dataset.name, dataset.version, &cfg, r);
        let rider = Rider {
            id: r.id.clone(),
            out: Arc::clone(out),
            top,
        };
        let ctx = FlightCtx {
            dataset: dataset.name.clone(),
            version: dataset.version,
            degraded: degraded.clone(),
        };
        match self.coalescer.join(&key, rider, ctx) {
            // An identical run is in flight; its leader answers for us.
            // This worker is free immediately — riders cost no execution.
            Joined::Attached => None,
            Joined::Lead { group } => {
                // Run under the *group* token (falls only when every rider
                // cancels, or on forced drain). Server default ceilings
                // still apply, anchored to the leader's submission.
                let budget = self.budget_for(&r.budget, &group, submitted);
                let waited_us = submitted.elapsed().as_micros() as u64;
                let run_started = Instant::now();
                let run = self.run_mine(r, &cfg, budget, &group, &dataset);
                let exec_us = run_started.elapsed().as_micros() as u64;
                // Closing the flight is the linearization point: riders
                // collected here get their response below; a cancel racing
                // past it finds no flight and the rider responds normally.
                let riders = self.coalescer.finish(&key);
                let role_of = |rider: &Rider| if rider.id == r.id { "lead" } else { "rider" };
                let times_of = |rider: &Rider| {
                    if rider.id == r.id {
                        (waited_us, exec_us)
                    } else {
                        (0, 0)
                    }
                };
                match run {
                    MineRun::Cancelled => {
                        for rider in riders {
                            let resp = cancelled_mine_response(
                                &rider.id,
                                &dataset.name,
                                dataset.version,
                                degraded.as_deref(),
                            );
                            let (w, e) = times_of(&rider);
                            self.finish_as(&rider.id, &rider.out, &resp, role_of(&rider), w, e);
                        }
                    }
                    MineRun::Done(outcome, disposition) => {
                        for rider in riders {
                            let resp = mine_response(
                                &rider.id,
                                &dataset,
                                &outcome,
                                disposition,
                                rider.top,
                            );
                            let (w, e) = times_of(&rider);
                            self.finish_as(&rider.id, &rider.out, &resp, role_of(&rider), w, e);
                        }
                    }
                }
                None
            }
        }
    }

    /// The governed pipeline run shared by solo and coalesced mines.
    /// Fault injection happens here, under the run's own token, so an
    /// injected sleep is cancellable exactly like real work — and its
    /// cancelled response carries the same dataset fields as any other.
    fn run_mine(
        &self,
        r: &MineRequest,
        cfg: &GraphSigConfig,
        budget: Budget,
        token: &CancelToken,
        dataset: &Dataset,
    ) -> MineRun {
        if let Some(ms) = r.sleep_ms {
            if !sleep_cancellable(ms, token) {
                return MineRun::Cancelled;
            }
        }
        if r.inject_panic {
            panic!("injected fault (inject=panic)");
        }
        let cfg = GraphSigConfig {
            budget: Some(budget),
            ..cfg.clone()
        };
        let (outcome, disposition) = dataset.prepared.mine_outcome(&cfg, &dataset.db);
        MineRun::Done(outcome, disposition)
    }

    fn exec_freq(&self, r: &FreqRequest, token: &CancelToken, submitted: Instant) -> Response {
        let dataset = match self.dataset(&r.dataset) {
            Ok(d) => d,
            Err(e) => return Response::error(&r.id, "freq", e),
        };
        if r.min_support == 0 {
            return Response::error(&r.id, "freq", "min_support must be >= 1");
        }
        let budget = self.budget_for(&r.budget, token, submitted);
        let index = dataset.index();
        let params = FreqParams {
            backend: r.backend,
            matcher: r.matcher.unwrap_or_default(),
            max_edges: r.max_edges.unwrap_or(8),
            max_patterns: r.max_patterns.unwrap_or(10_000),
            threads: r.threads.unwrap_or(0),
        };
        let outcome = run_freq(&dataset.db, &index, r.min_support, &params, budget);
        let payload = render_patterns(&dataset.db, &outcome.result);
        with_degraded(
            Response::new(&r.id, "freq", Status::Ok)
                .with_field("dataset", &dataset.name)
                .with_field("version", dataset.version),
            &dataset,
        )
        .with_field("completion", outcome.completion)
        .with_field("patterns", outcome.result.len())
        .with_field("index_types", index.len())
        .with_payload(payload)
    }

    /// `sweep`: validate, then fan the thresholds out as individually
    /// queued segments (lower priority than whole requests) and return.
    /// The last segment to finish assembles and writes the response.
    fn exec_sweep(
        &self,
        r: &SweepRequest,
        token: &CancelToken,
        submitted: Instant,
        out: &SharedWriter,
    ) -> Option<Response> {
        let dataset = match self.dataset(&r.dataset) {
            Ok(d) => d,
            Err(e) => return Some(Response::error(&r.id, "sweep", e)),
        };
        if r.supports.is_empty() {
            return Some(Response::error(
                &r.id,
                "sweep",
                "supports must name at least one threshold",
            ));
        }
        if r.supports.contains(&0) {
            return Some(Response::error(
                &r.id,
                "sweep",
                "every support must be >= 1",
            ));
        }
        // One budget governs the whole sweep: the deadline spans every
        // threshold, cancelling the sweep's token stops every segment, and
        // step allowances stay per-work-unit (each segment clones the
        // budget, so unbudgeted sweeps match individual calls).
        let budget = self.budget_for(&r.budget, token, submitted);
        // One index build (and one lazily compiled bitset database hanging
        // off it) shared by every threshold — the whole point of the op.
        let index = dataset.index();
        let params = Arc::new(FreqParams {
            backend: r.backend,
            matcher: r.matcher.unwrap_or_default(),
            max_edges: r.max_edges.unwrap_or(8),
            max_patterns: r.max_patterns.unwrap_or(10_000),
            threads: r.threads.unwrap_or(0),
        });
        let flight = Arc::new(SweepFlight::new(
            r.id.clone(),
            Arc::clone(out),
            r.supports.clone(),
        ));
        {
            let mut q = lock(&self.queue);
            for idx in 0..flight.supports.len() {
                q.segments.push_back(SegmentJob {
                    flight: Arc::clone(&flight),
                    dataset: Arc::clone(&dataset),
                    index: Arc::clone(&index),
                    params: Arc::clone(&params),
                    budget: budget.clone(),
                    idx,
                });
            }
        }
        self.work_cv.notify_all();
        None
    }

    fn exec_stats(&self, id: &str, dataset: Option<&str>) -> Response {
        match dataset {
            None => {
                let snap = self.snapshot();
                // Taken before the response chain: a `lock(..)` temporary
                // inside the chain would live to the end of the whole
                // expression and deadlock `resident_bytes_total` below.
                let dataset_count = lock(&self.datasets).len();
                let resident = self.resident_bytes_total();
                let mut resp = Response::new(id, "stats", Status::Ok)
                    .with_field("datasets", dataset_count)
                    .with_field("received", snap.received)
                    .with_field("served", snap.served)
                    .with_field("busy_rejected", snap.busy_rejected)
                    .with_field("errors", snap.errors)
                    .with_field("panics", snap.panics)
                    .with_field("queued", snap.queued)
                    .with_field("active", snap.active)
                    .with_field("queue_capacity", self.cfg.queue_capacity)
                    .with_field("workers", graphsig_core::resolve_threads(self.cfg.workers))
                    .with_field("segments_queued", snap.segments)
                    .with_field("coalesce_leads", snap.coalesce_leads)
                    .with_field("coalesce_riders", snap.coalesce_riders)
                    .with_field("queue_wait_us", snap.queue_wait_us)
                    .with_field("exec_us", snap.exec_us)
                    .with_field("op_load", self.counters.op_load.load(Ordering::Relaxed))
                    .with_field("op_mine", self.counters.op_mine.load(Ordering::Relaxed))
                    .with_field("op_freq", self.counters.op_freq.load(Ordering::Relaxed))
                    .with_field("op_sweep", self.counters.op_sweep.load(Ordering::Relaxed))
                    .with_field("op_stats", self.counters.op_stats.load(Ordering::Relaxed))
                    .with_field("resident_bytes", resident)
                    .with_field("evictions", self.counters.evictions.load(Ordering::Relaxed))
                    .with_field("store_retries", self.cfg.io.retries());
                if let Some(max) = self.cfg.max_resident_bytes {
                    resp = resp.with_field("max_resident_bytes", max);
                }
                resp
            }
            Some(name) => match self.dataset(name) {
                Err(e) => Response::error(id, "stats", e),
                Ok(d) => {
                    let s = d.db.stats();
                    let cache = d.prepared.stats();
                    let mut resp = Response::new(id, "stats", Status::Ok)
                        .with_field("dataset", &d.name)
                        .with_field("version", d.version)
                        .with_field("graphs", s.graph_count)
                        .with_field("nodes", s.total_nodes)
                        .with_field("edges", s.total_edges)
                        .with_field("segments", d.slots.len())
                        .with_field(
                            "segments_indexed",
                            d.slots.iter().filter(|s| s.index.get().is_some()).count(),
                        )
                        .with_field("prepared_hits", cache.hits)
                        .with_field("prepared_misses", cache.misses)
                        .with_field("prepared_bypasses", cache.bypasses)
                        .with_field("prepared_entries", cache.entries)
                        .with_field("resident_bytes", d.resident_bytes());
                    if let Some(info) = &d.store {
                        resp = resp
                            .with_field("shards", info.manifest_shards - info.quarantined)
                            .with_field("quarantined", info.quarantined)
                            .with_field("disk_bytes", info.disk_bytes)
                            .with_field("store_version", info.store_version);
                    }
                    if let Some(flag) = d.degraded() {
                        resp = resp.with_field("degraded", flag);
                    }
                    // The shared index is only reported once built — its
                    // presence is itself the observability signal that
                    // `freq` requests are reusing one build.
                    if let Some(index) = d.index.get() {
                        resp = resp
                            .with_field("index_types", index.len())
                            .with_field("index_occurrences", index.total_occurrences());
                    }
                    resp
                }
            },
        }
    }
}

/// How one governed pipeline run ended.
enum MineRun {
    /// The run's token fell before (injected sleep) or during the work.
    Cancelled,
    /// The pipeline produced an outcome (complete or truncated).
    Done(Outcome<GraphSigResult>, CacheDisposition),
}

/// Render one mine response from a (possibly shared) outcome. Rendering is
/// the only per-rider step of a coalesced run — `top` caps the payload —
/// so identical `top`s produce byte-identical responses up to the id.
fn mine_response(
    id: &str,
    dataset: &Dataset,
    outcome: &Outcome<GraphSigResult>,
    disposition: CacheDisposition,
    top: usize,
) -> Response {
    let payload = render_subgraphs(&dataset.db, &outcome.result, top);
    with_degraded(
        Response::new(id, "mine", Status::Ok)
            .with_field("dataset", &dataset.name)
            .with_field("version", dataset.version),
        dataset,
    )
    .with_field("completion", outcome.completion)
    .with_field("cached", disposition)
    .with_field("subgraphs", outcome.result.subgraphs.len())
    .with_payload(payload)
}

/// Tack the `degraded=K/N` flag onto a response when the dataset's backing
/// store lost shards — every answer over partial data says so explicitly.
fn with_degraded(resp: Response, dataset: &Dataset) -> Response {
    match dataset.degraded() {
        Some(flag) => resp.with_field("degraded", flag),
        None => resp,
    }
}

/// The per-threshold knobs shared by `freq` and `sweep`.
struct FreqParams {
    backend: Option<BackendKind>,
    matcher: MatcherKind,
    max_edges: usize,
    max_patterns: usize,
    threads: usize,
}

/// One indexed frequent-mining run — the single implementation behind both
/// `freq` and each `sweep` threshold, so their results (and rendered
/// payloads) agree byte-for-byte.
fn run_freq(
    db: &GraphDb,
    index: &LabelPairIndex,
    min_support: usize,
    params: &FreqParams,
    budget: Budget,
) -> Outcome<Vec<Pattern>> {
    match params.backend {
        None | Some(BackendKind::Fsg) => Fsg::new(
            FsgConfig::new(min_support)
                .with_max_edges(params.max_edges)
                .with_max_patterns(params.max_patterns)
                .with_matcher(params.matcher)
                .with_threads(params.threads)
                .with_budget(budget),
        )
        .mine_indexed_outcome(db, index),
        Some(BackendKind::GSpan) => GSpan::new(
            MinerConfig::new(min_support)
                .with_max_edges(params.max_edges)
                .with_max_patterns(params.max_patterns)
                .with_threads(params.threads)
                .with_budget(budget),
        )
        .mine_indexed_outcome(db, index),
    }
}

/// Render `freq` results: a stats comment plus a transaction block per
/// pattern (same shape as the `mine` payload).
fn render_patterns(db: &GraphDb, patterns: &[Pattern]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, p) in patterns.iter().enumerate() {
        let _ = writeln!(
            out,
            "# pattern {i}: support {} graphs ({:.3}%), {} edges",
            p.support,
            100.0 * p.frequency(db.len()),
            p.graph.edge_count()
        );
        let one = GraphDb::from_parts(vec![p.graph.clone()], db.labels().clone());
        out.push_str(&graphsig_graph::write_transactions(&one));
    }
    out
}

/// Sleep in small cancellable slices. Returns `false` when cancelled.
fn sleep_cancellable(ms: u64, token: &CancelToken) -> bool {
    let deadline = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < deadline {
        if token.is_cancelled() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    !token.is_cancelled()
}
