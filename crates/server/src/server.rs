//! The resident mining service: bounded queue, worker pool, shared
//! dataset cache, and graceful degradation.
//!
//! # Robustness policy
//!
//! * **Backpressure, not unbounded queueing.** Work requests (`load`,
//!   `mine`, `freq`, `stats`) go through a bounded queue; when it is full
//!   the request is rejected *immediately* with `status=busy` and the
//!   current depth, so a client can back off. Control messages (`ping`,
//!   `cancel`, `shutdown`) never queue — they are handled on the reader
//!   thread, so a saturated server can still be probed, cancelled into
//!   headroom, or shut down.
//! * **Per-request governance.** Every queued request carries its own
//!   [`CancelToken`] and a [`Budget`] assembled from the request's
//!   `timeout_ms`/`max_steps`, clamped by the server's ceilings. Deadlines
//!   run from *submission*, so time spent queued counts — a request that
//!   waited out its deadline returns `truncated (deadline exceeded)`
//!   instead of silently mining stale work.
//! * **Panic isolation.** The request handler runs under
//!   [`try_par_map`](graphsig_core::try_par_map): a poisoned request
//!   (malformed data tripping a bug, injected faults in tests) produces a
//!   `status=error` response carrying the panic message; the worker and
//!   the server keep serving.
//! * **Graceful shutdown.** `shutdown` stops intake, waits for queued and
//!   in-flight work under a drain deadline, cancels whatever outlives the
//!   deadline (those requests respond `truncated (cancelled)` — still a
//!   structured response, never a silent drop), and only then confirms.
//! * **Shared state with versioned invalidation.** Each resident dataset
//!   owns a [`PreparedCache`] (window passes) and a lazily built
//!   [`LabelPairIndex`] shared by `freq` requests. `load` replaces the
//!   whole entry under a bumped version: in-flight requests keep mining
//!   their pinned `Arc` snapshot, new requests see the new version, and
//!   the old caches die with their last reference.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use graphsig_core::{
    render_subgraphs, Budget, CancelToken, FsmBackend, GraphSigConfig, PreparedCache,
};
use graphsig_fsg::{Fsg, FsgConfig};
use graphsig_graph::control::Outcome;
use graphsig_graph::{parse_transactions_into, Completion, GraphDb, LabelPairIndex, MatcherKind};
use graphsig_gspan::{GSpan, MinerConfig, Pattern};

use crate::protocol::{
    parse_request, BackendKind, BudgetParams, FreqRequest, LoadFormat, LoadRequest, LoadSource,
    MineRequest, ProtocolError, Request, Response, Status, SweepRequest,
};

/// Tunables for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads processing queued requests (0 = one per core).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected `busy`.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not ask for one (ms).
    pub default_timeout_ms: Option<u64>,
    /// Ceiling clamping every request deadline (ms). With
    /// `default_timeout_ms` unset this also applies to requests that did
    /// not ask for a deadline.
    pub max_timeout_ms: Option<u64>,
    /// Ceiling clamping *explicit* `max_steps` requests. Never imposed on
    /// requests without one: a blanket step budget would forfeit both
    /// byte-identity with the one-shot CLI and window-pass cache reuse
    /// (step-budgeted runs bypass the cache — see
    /// [`graphsig_core::cache`]).
    pub max_steps_ceiling: Option<u64>,
    /// Default drain deadline for shutdown (ms).
    pub drain_ms: u64,
    /// Honor the fault-injection request keys (`sleep_ms`, `inject=panic`).
    /// Off by default; smoke tests and CI turn it on.
    pub allow_inject: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 16,
            default_timeout_ms: None,
            max_timeout_ms: None,
            max_steps_ceiling: None,
            drain_ms: 5_000,
            allow_inject: false,
        }
    }
}

/// Where responses go. Whole responses are written under the lock, so
/// concurrent workers interleave *responses*, never bytes.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Wrap a sink as a [`SharedWriter`].
pub fn shared_writer(w: impl Write + Send + 'static) -> SharedWriter {
    Arc::new(Mutex::new(Box::new(w)))
}

/// One contiguous ingest segment of a dataset (a store shard, or one
/// text/generator load batch) with its lazily built slice of the
/// label-pair index. Slots are `Arc`-shared across `load append=`
/// versions: appending keeps every already-built segment index and only
/// the new graphs are ever indexed — per-shard, not wholesale,
/// invalidation.
struct IndexSlot {
    /// Graph index range within the dataset's db.
    range: std::ops::Range<usize>,
    index: OnceLock<Arc<LabelPairIndex>>,
}

impl IndexSlot {
    fn get(&self, db: &GraphDb) -> Arc<LabelPairIndex> {
        self.index
            .get_or_init(|| Arc::new(LabelPairIndex::build_range(db, self.range.clone())))
            .clone()
    }
}

/// Provenance of a dataset loaded from a packed store (`format=packed`).
struct StoreInfo {
    /// Shards listed by the manifest.
    manifest_shards: usize,
    /// Shards quarantined by the lenient open (degraded when > 0).
    quarantined: usize,
    /// Bytes on disk across manifest and surviving shards.
    disk_bytes: u64,
    /// The store's ingest counter.
    store_version: u64,
}

/// One resident dataset version: the graphs plus every cache keyed to
/// exactly this data. Replaced on `load`; `append=true` carries the old
/// segment index slots into the new version.
struct Dataset {
    name: String,
    version: u64,
    db: Arc<GraphDb>,
    prepared: PreparedCache,
    /// Merged whole-dataset index, assembled from the slots on first use.
    index: OnceLock<Arc<LabelPairIndex>>,
    /// Per-segment lazy indexes, in deterministic segment (gid) order.
    slots: Vec<Arc<IndexSlot>>,
    /// Set when the dataset came from a packed store.
    store: Option<StoreInfo>,
}

impl Dataset {
    /// The shared label-pair index, built on first use by merging the
    /// per-segment indexes in segment order. Because segment ranges tile
    /// the db contiguously, the merge is exactly equal to a full build
    /// (unit-tested in `graphsig_graph::index`).
    fn index(&self) -> Arc<LabelPairIndex> {
        self.index
            .get_or_init(|| match self.slots.as_slice() {
                [] => Arc::new(LabelPairIndex::build(&self.db)),
                [only] => only.get(&self.db),
                slots => {
                    let parts: Vec<Arc<LabelPairIndex>> =
                        slots.iter().map(|s| s.get(&self.db)).collect();
                    let refs: Vec<&LabelPairIndex> = parts.iter().map(Arc::as_ref).collect();
                    Arc::new(LabelPairIndex::merge(&refs))
                }
            })
            .clone()
    }

    /// `quarantined/total` when the backing store lost shards, else None.
    fn degraded(&self) -> Option<String> {
        match &self.store {
            Some(info) if info.quarantined > 0 => {
                Some(format!("{}/{}", info.quarantined, info.manifest_shards))
            }
            _ => None,
        }
    }
}

/// A queued unit of work.
struct Job {
    request: Request,
    out: SharedWriter,
    token: CancelToken,
    submitted: Instant,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    active: usize,
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    served: AtomicU64,
    busy_rejected: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    cancel_requests: AtomicU64,
}

/// A point-in-time view of the server counters (smoke assertions, stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Request lines received (including rejected and malformed ones).
    pub received: u64,
    /// Responses written for queued work (ok or error).
    pub served: u64,
    /// Submissions rejected with `status=busy`.
    pub busy_rejected: u64,
    /// Error responses (including panics and parse errors).
    pub errors: u64,
    /// Request handlers that panicked (isolated; server kept serving).
    pub panics: u64,
    /// Jobs currently queued.
    pub queued: usize,
    /// Jobs currently executing.
    pub active: usize,
}

struct ServerInner {
    cfg: ServerConfig,
    datasets: Mutex<HashMap<String, Arc<Dataset>>>,
    queue: Mutex<QueueState>,
    /// Wakes workers when a job is queued (or termination is flagged).
    work_cv: Condvar,
    /// Wakes the drain loop when the queue goes empty-and-idle.
    idle_cv: Condvar,
    /// Cancel tokens of every queued or executing request, by id.
    inflight: Mutex<HashMap<String, CancelToken>>,
    /// Intake closed (shutdown requested).
    shutting_down: AtomicBool,
    /// Workers may exit once the queue is empty.
    terminated: AtomicBool,
    counters: Counters,
}

/// A running mining service. Workers start on construction; requests are
/// fed in as protocol lines via [`Server::dispatch_line`] or one of the
/// transport loops ([`Server::serve_connection`], `serve_tcp` in the CLI).
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A worker panicking while holding a lock is already isolated by
    // try_par_map; a poisoned mutex here would only ever hold consistent
    // data, so recover rather than propagate.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Server {
    /// Start a server: spawns the worker pool immediately.
    pub fn new(cfg: ServerConfig) -> Self {
        let worker_count = graphsig_core::resolve_threads(cfg.workers);
        let inner = Arc::new(ServerInner {
            cfg,
            datasets: Mutex::new(HashMap::new()),
            queue: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            terminated: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();
        Server { inner, workers }
    }

    /// Feed one request line; any response is written to `out`. Returns
    /// `true` when the line was a completed `shutdown` — the caller should
    /// stop reading.
    pub fn dispatch_line(&self, line: &str, out: &SharedWriter) -> bool {
        self.inner.dispatch_line(line, out)
    }

    /// Serve one connection: read request lines until EOF or shutdown.
    /// On EOF without a `shutdown` request the connection just closes;
    /// the server (and other connections) keep running.
    pub fn serve_connection(&self, reader: impl std::io::BufRead, out: SharedWriter) {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if self.inner.dispatch_line(&line, &out) {
                break;
            }
            if self.inner.terminated.load(Ordering::Relaxed) {
                break;
            }
        }
    }

    /// Whether a completed `shutdown` has terminated the worker pool.
    pub fn is_terminated(&self) -> bool {
        self.inner.terminated.load(Ordering::Relaxed)
    }

    /// Drain and stop without a client `shutdown` request (EOF on stdio,
    /// Ctrl-C handling, tests). Uses the configured drain deadline.
    pub fn shutdown_now(&self) {
        let drain = self.inner.cfg.drain_ms;
        self.inner.shutdown(drain);
    }

    /// Current counters.
    pub fn snapshot(&self) -> ServerSnapshot {
        self.inner.snapshot()
    }

    /// Wait for all workers to exit. Call after shutdown (a completed
    /// `shutdown` request or [`Server::shutdown_now`]).
    pub fn join(mut self) {
        // If nobody shut us down, do it now so join cannot hang.
        if !self.inner.terminated.load(Ordering::Relaxed) {
            self.shutdown_now();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.inner.terminated.load(Ordering::Relaxed) {
            self.inner.shutdown(self.inner.cfg.drain_ms);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl ServerInner {
    fn snapshot(&self) -> ServerSnapshot {
        let q = lock(&self.queue);
        ServerSnapshot {
            received: self.counters.received.load(Ordering::Relaxed),
            served: self.counters.served.load(Ordering::Relaxed),
            busy_rejected: self.counters.busy_rejected.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
            queued: q.jobs.len(),
            active: q.active,
        }
    }

    fn write_response(&self, out: &SharedWriter, resp: &Response) {
        if resp.status == Status::Error {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        let mut w = lock(out);
        let _ = w.write_all(resp.render().as_bytes());
        let _ = w.flush();
    }

    fn dispatch_line(&self, line: &str, out: &SharedWriter) -> bool {
        let request = match parse_request(line) {
            Ok(None) => return false, // blank / comment
            Ok(Some(req)) => req,
            Err(ProtocolError { message, id }) => {
                self.counters.received.fetch_add(1, Ordering::Relaxed);
                let id = id.as_deref().unwrap_or("-");
                self.write_response(out, &Response::error(id, "?", message));
                return false;
            }
        };
        self.counters.received.fetch_add(1, Ordering::Relaxed);
        match &request {
            Request::Ping { id } => {
                self.write_response(out, &Response::new(id, "ping", Status::Ok));
                false
            }
            Request::Cancel { id, target } => {
                self.counters
                    .cancel_requests
                    .fetch_add(1, Ordering::Relaxed);
                let found = match lock(&self.inflight).get(target) {
                    Some(token) => {
                        token.cancel();
                        true
                    }
                    None => false,
                };
                self.write_response(
                    out,
                    &Response::new(id, "cancel", Status::Ok)
                        .with_field("target", target)
                        .with_field("found", found),
                );
                false
            }
            Request::Shutdown { id, drain_ms } => {
                let drain = drain_ms.unwrap_or(self.cfg.drain_ms);
                let forced = self.shutdown(drain);
                self.write_response(
                    out,
                    &Response::new(id, "shutdown", Status::Ok)
                        .with_field("served", self.counters.served.load(Ordering::Relaxed))
                        .with_field("forced", forced),
                );
                true
            }
            Request::Load(_)
            | Request::Mine(_)
            | Request::Freq(_)
            | Request::Sweep(_)
            | Request::Stats { .. } => {
                self.submit(request, out);
                false
            }
        }
    }

    /// Queue a work request, or reject it (`busy` / shutdown / duplicate).
    fn submit(&self, request: Request, out: &SharedWriter) {
        let (id, op) = (request.id().to_string(), request.op());
        if self.shutting_down.load(Ordering::Relaxed) {
            self.write_response(out, &Response::error(&id, op, "server is shutting down"));
            return;
        }
        let token = CancelToken::new();
        {
            let mut inflight = lock(&self.inflight);
            if inflight.contains_key(&id) {
                drop(inflight);
                self.write_response(
                    out,
                    &Response::error(&id, op, format!("request id '{id}' already in flight")),
                );
                return;
            }
            // Reserve the id before queueing so a racing duplicate loses.
            inflight.insert(id.clone(), token.clone());
        }
        {
            let mut q = lock(&self.queue);
            if q.jobs.len() >= self.cfg.queue_capacity {
                let depth = q.jobs.len();
                drop(q);
                lock(&self.inflight).remove(&id);
                self.counters.busy_rejected.fetch_add(1, Ordering::Relaxed);
                self.write_response(
                    out,
                    &Response::new(&id, op, Status::Busy)
                        .with_field("queue", depth)
                        .with_field("capacity", self.cfg.queue_capacity),
                );
                return;
            }
            q.jobs.push_back(Job {
                request,
                out: Arc::clone(out),
                token,
                submitted: Instant::now(),
            });
        }
        self.work_cv.notify_one();
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        q.active += 1;
                        break job;
                    }
                    if self.terminated.load(Ordering::Relaxed) {
                        return;
                    }
                    q = self.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            self.process(job);
            let mut q = lock(&self.queue);
            q.active -= 1;
            if q.active == 0 && q.jobs.is_empty() {
                self.idle_cv.notify_all();
            }
        }
    }

    /// Execute one job with panic isolation and always respond.
    fn process(&self, job: Job) {
        let Job {
            request,
            out,
            token,
            submitted,
        } = job;
        let (id, op) = (request.id().to_string(), request.op());
        // try_par_map with a single item runs inline under catch_unwind:
        // a panicking handler yields a structured error, not a dead worker.
        let response = match graphsig_core::try_par_map(1, std::slice::from_ref(&request), |req| {
            self.execute(req, &token, submitted)
        }) {
            Ok(mut v) => v.pop().unwrap_or_else(|| {
                Response::error(&id, op, "internal: handler produced no response")
            }),
            Err(panicked) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                Response::error(
                    &id,
                    op,
                    format!("request handler panicked: {}", panicked.message),
                )
            }
        };
        lock(&self.inflight).remove(&id);
        self.counters.served.fetch_add(1, Ordering::Relaxed);
        self.write_response(&out, &response);
    }

    /// Stop intake and drain. Returns whether the drain deadline forced
    /// cancellation of remaining work.
    fn shutdown(&self, drain_ms: u64) -> bool {
        self.shutting_down.store(true, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_millis(drain_ms);
        let mut forced = false;
        let mut q = lock(&self.queue);
        while q.active > 0 || !q.jobs.is_empty() {
            if !forced && Instant::now() >= deadline {
                // Drain deadline passed: cancel everything still in
                // flight. Each cancelled request still gets a structured
                // `truncated (cancelled)` response — then we keep waiting
                // (cooperative cancellation is fast but not instant).
                for token in lock(&self.inflight).values() {
                    token.cancel();
                }
                forced = true;
            }
            let wait = if forced {
                Duration::from_millis(50)
            } else {
                deadline
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(50))
                    .max(Duration::from_millis(1))
            };
            let (guard, _) = self
                .idle_cv
                .wait_timeout(q, wait)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        drop(q);
        self.terminated.store(true, Ordering::Relaxed);
        self.work_cv.notify_all();
        forced
    }

    /// Build the effective budget for a request: request limits clamped by
    /// server ceilings, deadline measured from submission, and always the
    /// request's cancel token.
    fn budget_for(&self, params: &BudgetParams, token: &CancelToken, submitted: Instant) -> Budget {
        let mut budget = Budget::unlimited().with_cancel(token.clone());
        let timeout_ms = params.timeout_ms.or(self.cfg.default_timeout_ms);
        let timeout_ms = match (timeout_ms, self.cfg.max_timeout_ms) {
            (Some(t), Some(ceiling)) => Some(t.min(ceiling)),
            (None, ceiling) => ceiling,
            (t, None) => t,
        };
        if let Some(ms) = timeout_ms {
            budget = budget.with_deadline_at(submitted + Duration::from_millis(ms));
        }
        let max_steps = match (params.max_steps, self.cfg.max_steps_ceiling) {
            (Some(s), Some(ceiling)) => Some(s.min(ceiling)),
            (s, _) => s,
        };
        if let Some(steps) = max_steps {
            budget = budget.with_max_steps(steps);
        }
        budget
    }

    fn dataset(&self, name: &str) -> Result<Arc<Dataset>, String> {
        lock(&self.datasets)
            .get(name)
            .cloned()
            .ok_or_else(|| format!("unknown dataset '{name}' (load it first)"))
    }

    fn execute(&self, request: &Request, token: &CancelToken, submitted: Instant) -> Response {
        match request {
            Request::Load(r) => self.exec_load(r),
            Request::Mine(r) => self.exec_mine(r, token, submitted),
            Request::Freq(r) => self.exec_freq(r, token, submitted),
            Request::Sweep(r) => self.exec_sweep(r, token, submitted),
            Request::Stats { id, dataset } => self.exec_stats(id, dataset.as_deref()),
            // Control ops never reach the queue.
            other => Response::error(other.id(), other.op(), "internal: control op queued"),
        }
    }

    fn exec_load(&self, r: &LoadRequest) -> Response {
        let started = Instant::now();
        // Appends extend the prior version's graphs and keep its built
        // segment indexes; a plain load starts from nothing.
        let prior = if r.append {
            match self.dataset(&r.dataset) {
                Ok(d) => Some(d),
                Err(e) => return Response::error(&r.id, "load", format!("append failed: {e}")),
            }
        } else {
            None
        };
        let mut db = match &prior {
            Some(d) => (*d.db).clone(),
            None => GraphDb::new(),
        };
        let base_len = db.len();
        let mut store = None;
        // Shard boundaries of a fresh packed load, for per-shard slots.
        let mut shard_ranges: Option<Vec<std::ops::Range<usize>>> = None;
        match (&r.source, r.format) {
            (LoadSource::Path(path), LoadFormat::Text) => {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        return Response::error(&r.id, "load", format!("cannot read {path}: {e}"))
                    }
                };
                if let Err(e) = parse_transactions_into(&mut db, &text) {
                    return Response::error(&r.id, "load", format!("{path}: {e}"));
                }
            }
            (LoadSource::Path(path), LoadFormat::Packed) => {
                // Lenient open: damaged shards are quarantined (moved
                // aside, reported) and the dataset serves the survivors in
                // an explicitly degraded state.
                let opened = match graphsig_store::open_lenient(std::path::Path::new(path)) {
                    Ok(o) => o,
                    Err(e) => return Response::error(&r.id, "load", e.to_string()),
                };
                store = Some(StoreInfo {
                    manifest_shards: opened.manifest.shards.len(),
                    quarantined: opened.report.quarantined.len(),
                    disk_bytes: opened.disk_bytes(),
                    store_version: opened.manifest.store_version,
                });
                if prior.is_some() {
                    db.absorb(&opened.db);
                } else {
                    shard_ranges = Some(
                        opened
                            .shards
                            .iter()
                            .map(|s| s.db_start..s.db_start + s.graph_count)
                            .collect(),
                    );
                    db = opened.db;
                }
            }
            (LoadSource::AidsLike { count, seed }, _) => {
                let gen = graphsig_datagen::aids_like(*count, *seed).db;
                if prior.is_some() {
                    db.absorb(&gen);
                } else {
                    db = gen;
                }
            }
        }
        let graphs = db.len();
        let loaded = graphs - base_len;
        // Segment slots: appended datasets keep the prior version's slots
        // (their built indexes stay valid — old graphs and label ids are
        // untouched) and gain one slot for the new graphs. A fresh packed
        // load gets one slot per surviving shard so a later append
        // invalidates nothing shard-grained.
        let mut slots: Vec<Arc<IndexSlot>> =
            prior.as_ref().map_or_else(Vec::new, |d| d.slots.clone());
        if let Some(ranges) = shard_ranges {
            slots = ranges
                .into_iter()
                .map(|range| {
                    Arc::new(IndexSlot {
                        range,
                        index: OnceLock::new(),
                    })
                })
                .collect();
        } else if loaded > 0 || slots.is_empty() {
            slots.push(Arc::new(IndexSlot {
                range: base_len..graphs,
                index: OnceLock::new(),
            }));
        }
        let store_fields = store.as_ref().map(|s| {
            (
                s.manifest_shards - s.quarantined,
                s.quarantined,
                s.disk_bytes,
                s.store_version,
            )
        });
        let degraded = store
            .as_ref()
            .filter(|s| s.quarantined > 0)
            .map(|s| format!("{}/{}", s.quarantined, s.manifest_shards));
        let version = {
            let mut datasets = lock(&self.datasets);
            let version = datasets.get(&r.dataset).map_or(1, |d| d.version + 1);
            // Versioned invalidation: the new Arc replaces the old entry;
            // requests already holding the old version finish against it,
            // and its caches are freed with the last reference.
            datasets.insert(
                r.dataset.clone(),
                Arc::new(Dataset {
                    name: r.dataset.clone(),
                    version,
                    db: Arc::new(db),
                    prepared: PreparedCache::new(),
                    index: OnceLock::new(),
                    slots,
                    store,
                }),
            );
            version
        };
        let mut resp = Response::new(&r.id, "load", Status::Ok)
            .with_field("dataset", &r.dataset)
            .with_field("version", version)
            .with_field("graphs", graphs)
            .with_field("loaded", loaded)
            .with_field("parse_ms", started.elapsed().as_millis());
        if let Some((shards, quarantined, disk_bytes, store_version)) = store_fields {
            resp = resp
                .with_field("shards", shards)
                .with_field("quarantined", quarantined)
                .with_field("disk_bytes", disk_bytes)
                .with_field("store_version", store_version);
        }
        if let Some(d) = degraded {
            resp = resp.with_field("degraded", d);
        }
        resp
    }

    fn exec_mine(&self, r: &MineRequest, token: &CancelToken, submitted: Instant) -> Response {
        if r.inject_panic || r.sleep_ms.is_some() {
            if !self.cfg.allow_inject {
                return Response::error(&r.id, "mine", "fault-injection keys are disabled");
            }
            if let Some(ms) = r.sleep_ms {
                if !sleep_cancellable(ms, token) {
                    return Response::new(&r.id, "mine", Status::Ok)
                        .with_field("completion", "truncated (cancelled)")
                        .with_field("cached", "none")
                        .with_field("subgraphs", 0);
                }
            }
            if r.inject_panic {
                panic!("injected fault (inject=panic)");
            }
        }
        let dataset = match self.dataset(&r.dataset) {
            Ok(d) => d,
            Err(e) => return Response::error(&r.id, "mine", e),
        };
        let defaults = GraphSigConfig::default();
        let cfg = GraphSigConfig {
            max_pvalue: r.max_pvalue.unwrap_or(defaults.max_pvalue),
            min_freq: r.min_freq.unwrap_or(defaults.min_freq),
            radius: r.radius.unwrap_or(defaults.radius),
            fsm_freq: r.fsm_freq.unwrap_or(defaults.fsm_freq),
            threads: r.threads.unwrap_or(defaults.threads),
            fsm_backend: match r.backend {
                None | Some(BackendKind::Fsg) => FsmBackend::Fsg,
                Some(BackendKind::GSpan) => FsmBackend::GSpan,
            },
            matcher: r.matcher.unwrap_or_default(),
            budget: Some(self.budget_for(&r.budget, token, submitted)),
            ..defaults
        };
        let in_range = (0.0..=1.0).contains(&cfg.max_pvalue)
            && cfg.min_freq > 0.0
            && cfg.min_freq <= 1.0
            && cfg.fsm_freq > 0.0
            && cfg.fsm_freq <= 1.0;
        if !in_range {
            // GraphSig::new asserts on these; reject structured instead.
            return Response::error(
                &r.id,
                "mine",
                "thresholds out of range: need max_pvalue in [0,1], min_freq and fsm_freq in (0,1]",
            );
        }
        let (outcome, disposition) = dataset.prepared.mine_outcome(&cfg, &dataset.db);
        let top = r.top.unwrap_or(usize::MAX);
        let payload = render_subgraphs(&dataset.db, &outcome.result, top);
        with_degraded(
            Response::new(&r.id, "mine", Status::Ok)
                .with_field("dataset", &dataset.name)
                .with_field("version", dataset.version),
            &dataset,
        )
        .with_field("completion", outcome.completion)
        .with_field("cached", disposition)
        .with_field("subgraphs", outcome.result.subgraphs.len())
        .with_payload(payload)
    }

    fn exec_freq(&self, r: &FreqRequest, token: &CancelToken, submitted: Instant) -> Response {
        let dataset = match self.dataset(&r.dataset) {
            Ok(d) => d,
            Err(e) => return Response::error(&r.id, "freq", e),
        };
        if r.min_support == 0 {
            return Response::error(&r.id, "freq", "min_support must be >= 1");
        }
        let budget = self.budget_for(&r.budget, token, submitted);
        let index = dataset.index();
        let params = FreqParams {
            backend: r.backend,
            matcher: r.matcher.unwrap_or_default(),
            max_edges: r.max_edges.unwrap_or(8),
            max_patterns: r.max_patterns.unwrap_or(10_000),
            threads: r.threads.unwrap_or(0),
        };
        let outcome = run_freq(&dataset.db, &index, r.min_support, &params, budget);
        let payload = render_patterns(&dataset.db, &outcome.result);
        with_degraded(
            Response::new(&r.id, "freq", Status::Ok)
                .with_field("dataset", &dataset.name)
                .with_field("version", dataset.version),
            &dataset,
        )
        .with_field("completion", outcome.completion)
        .with_field("patterns", outcome.result.len())
        .with_field("index_types", index.len())
        .with_payload(payload)
    }

    fn exec_sweep(&self, r: &SweepRequest, token: &CancelToken, submitted: Instant) -> Response {
        let dataset = match self.dataset(&r.dataset) {
            Ok(d) => d,
            Err(e) => return Response::error(&r.id, "sweep", e),
        };
        if r.supports.is_empty() {
            return Response::error(&r.id, "sweep", "supports must name at least one threshold");
        }
        if r.supports.contains(&0) {
            return Response::error(&r.id, "sweep", "every support must be >= 1");
        }
        // One budget governs the whole sweep: the deadline spans every
        // threshold, cancellation stops mid-sweep, and step allowances stay
        // per-work-unit (so unbudgeted sweeps match individual calls).
        let budget = self.budget_for(&r.budget, token, submitted);
        // One index build (and one lazily compiled bitset database hanging
        // off it) shared by every threshold — the whole point of the op.
        let index = dataset.index();
        let params = FreqParams {
            backend: r.backend,
            matcher: r.matcher.unwrap_or_default(),
            max_edges: r.max_edges.unwrap_or(8),
            max_patterns: r.max_patterns.unwrap_or(10_000),
            threads: r.threads.unwrap_or(0),
        };
        let mut payload = String::new();
        let mut completion = Completion::Complete;
        let mut total = 0usize;
        for &support in &r.supports {
            let outcome = run_freq(&dataset.db, &index, support, &params, budget.clone());
            completion = completion.merge(outcome.completion);
            total += outcome.result.len();
            // Marker line, then the exact bytes an individual `freq` call
            // at this threshold would have produced as its payload.
            use std::fmt::Write as _;
            let _ = writeln!(
                payload,
                "# sweep support {support}: {} patterns ({})",
                outcome.result.len(),
                outcome.completion
            );
            payload.push_str(&render_patterns(&dataset.db, &outcome.result));
        }
        with_degraded(
            Response::new(&r.id, "sweep", Status::Ok)
                .with_field("dataset", &dataset.name)
                .with_field("version", dataset.version),
            &dataset,
        )
        .with_field("completion", completion)
        .with_field("supports", r.supports.len())
        .with_field("patterns", total)
        .with_field("index_types", index.len())
        .with_payload(payload)
    }

    fn exec_stats(&self, id: &str, dataset: Option<&str>) -> Response {
        match dataset {
            None => {
                let snap = self.snapshot();
                Response::new(id, "stats", Status::Ok)
                    .with_field("datasets", lock(&self.datasets).len())
                    .with_field("received", snap.received)
                    .with_field("served", snap.served)
                    .with_field("busy_rejected", snap.busy_rejected)
                    .with_field("errors", snap.errors)
                    .with_field("panics", snap.panics)
                    .with_field("queued", snap.queued)
                    .with_field("active", snap.active)
                    .with_field("queue_capacity", self.cfg.queue_capacity)
                    .with_field("workers", graphsig_core::resolve_threads(self.cfg.workers))
            }
            Some(name) => match self.dataset(name) {
                Err(e) => Response::error(id, "stats", e),
                Ok(d) => {
                    let s = d.db.stats();
                    let cache = d.prepared.stats();
                    let mut resp = Response::new(id, "stats", Status::Ok)
                        .with_field("dataset", &d.name)
                        .with_field("version", d.version)
                        .with_field("graphs", s.graph_count)
                        .with_field("nodes", s.total_nodes)
                        .with_field("edges", s.total_edges)
                        .with_field("segments", d.slots.len())
                        .with_field(
                            "segments_indexed",
                            d.slots.iter().filter(|s| s.index.get().is_some()).count(),
                        )
                        .with_field("prepared_hits", cache.hits)
                        .with_field("prepared_misses", cache.misses)
                        .with_field("prepared_bypasses", cache.bypasses)
                        .with_field("prepared_entries", cache.entries);
                    if let Some(info) = &d.store {
                        resp = resp
                            .with_field("shards", info.manifest_shards - info.quarantined)
                            .with_field("quarantined", info.quarantined)
                            .with_field("disk_bytes", info.disk_bytes)
                            .with_field("store_version", info.store_version);
                    }
                    if let Some(flag) = d.degraded() {
                        resp = resp.with_field("degraded", flag);
                    }
                    // The shared index is only reported once built — its
                    // presence is itself the observability signal that
                    // `freq` requests are reusing one build.
                    if let Some(index) = d.index.get() {
                        resp = resp
                            .with_field("index_types", index.len())
                            .with_field("index_occurrences", index.total_occurrences());
                    }
                    resp
                }
            },
        }
    }
}

/// Tack the `degraded=K/N` flag onto a response when the dataset's backing
/// store lost shards — every answer over partial data says so explicitly.
fn with_degraded(resp: Response, dataset: &Dataset) -> Response {
    match dataset.degraded() {
        Some(flag) => resp.with_field("degraded", flag),
        None => resp,
    }
}

/// The per-threshold knobs shared by `freq` and `sweep`.
struct FreqParams {
    backend: Option<BackendKind>,
    matcher: MatcherKind,
    max_edges: usize,
    max_patterns: usize,
    threads: usize,
}

/// One indexed frequent-mining run — the single implementation behind both
/// `freq` and each `sweep` threshold, so their results (and rendered
/// payloads) agree byte-for-byte.
fn run_freq(
    db: &GraphDb,
    index: &LabelPairIndex,
    min_support: usize,
    params: &FreqParams,
    budget: Budget,
) -> Outcome<Vec<Pattern>> {
    match params.backend {
        None | Some(BackendKind::Fsg) => Fsg::new(
            FsgConfig::new(min_support)
                .with_max_edges(params.max_edges)
                .with_max_patterns(params.max_patterns)
                .with_matcher(params.matcher)
                .with_threads(params.threads)
                .with_budget(budget),
        )
        .mine_indexed_outcome(db, index),
        Some(BackendKind::GSpan) => GSpan::new(
            MinerConfig::new(min_support)
                .with_max_edges(params.max_edges)
                .with_max_patterns(params.max_patterns)
                .with_threads(params.threads)
                .with_budget(budget),
        )
        .mine_indexed_outcome(db, index),
    }
}

/// Render `freq` results: a stats comment plus a transaction block per
/// pattern (same shape as the `mine` payload).
fn render_patterns(db: &GraphDb, patterns: &[Pattern]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, p) in patterns.iter().enumerate() {
        let _ = writeln!(
            out,
            "# pattern {i}: support {} graphs ({:.3}%), {} edges",
            p.support,
            100.0 * p.frequency(db.len()),
            p.graph.edge_count()
        );
        let one = GraphDb::from_parts(vec![p.graph.clone()], db.labels().clone());
        out.push_str(&graphsig_graph::write_transactions(&one));
    }
    out
}

/// Sleep in small cancellable slices. Returns `false` when cancelled.
fn sleep_cancellable(ms: u64, token: &CancelToken) -> bool {
    let deadline = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < deadline {
        if token.is_cancelled() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    !token.is_cancelled()
}
