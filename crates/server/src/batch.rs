//! Request coalescing: concurrent identical work shares one governed run.
//!
//! Two mechanisms live here, both keyed to the insight that a read-heavy
//! serving workload repeats itself — many clients ask the same question of
//! the same dataset version at the same time:
//!
//! * [`Coalescer`] — single-flight for `mine`. While a mine runs, every
//!   concurrent request with the same [`MineKey`] (dataset name plus
//!   version plus the full resolved mining config, *including* the
//!   [`WindowKey`](graphsig_core::WindowKey) the `PreparedCache` memoizes
//!   on) attaches to the in-flight run as a *rider* instead of executing.
//!   One worker (the *leader*) runs the pipeline once; on completion every
//!   rider's response is rendered from the shared outcome — byte-identical
//!   to what a solo run would have produced, because the pipeline output
//!   for a fixed config is deterministic and only the rendering cap
//!   (`top=`) differs per rider.
//! * [`SweepFlight`] — a `sweep` split into per-threshold segments that
//!   queue individually (see `server.rs`), accumulating results here until
//!   the last segment assembles the response in submission order.
//!
//! # Rider cancellation semantics
//!
//! Each rider keeps its own [`CancelToken`] (the one registered in the
//! server's inflight table). Cancelling a rider detaches it immediately —
//! it responds `truncated (cancelled)` right away — but the *run* keeps
//! going for the remaining riders. Only when the last live rider cancels
//! is the flight's group token cancelled, which truncates the run itself.
//! This is exactly the refcounted-cancellation contract the tentpole
//! requires: a shared run dies only when nobody is left waiting for it.
//!
//! # What does NOT coalesce
//!
//! Requests carrying an explicit `timeout_ms` or `max_steps` run solo.
//! Step budgets are deterministic by contract (they bypass the
//! `PreparedCache` for the same reason), and explicit deadlines are
//! anchored to each request's own submission instant — sharing a run would
//! silently substitute the leader's deadline. Requests without explicit
//! budgets adopt the leader's effective budget (server default ceilings),
//! which is within the documented best-effort deadline contract.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use graphsig_core::{CancelToken, WindowKey};
use graphsig_graph::control::Outcome;
use graphsig_graph::Completion;
use graphsig_gspan::Pattern;

use crate::protocol::{MineRequest, Response, Status};
use crate::server::SharedWriter;

/// Everything a coalesced `mine` run depends on. Two requests with equal
/// keys would run the exact same pipeline over the exact same data, so
/// they may share one execution. `top=` is absent (rendering-only, applied
/// per rider); budgets are absent because budgeted requests never coalesce
/// (see the module docs). The fault-injection keys are *included*: two
/// identical injected requests may share a (deterministically faulty) run,
/// but an injected request never shares with a clean one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MineKey {
    dataset: String,
    version: u64,
    /// The `PreparedCache` fingerprint — proves key-compatibility with the
    /// window-pass cache the run will consult.
    window: WindowKey,
    max_pvalue_bits: u64,
    min_freq_bits: u64,
    fsm_freq_bits: u64,
    radius: usize,
    backend: graphsig_core::FsmBackend,
    matcher: graphsig_graph::MatcherKind,
    threads: usize,
    sleep_ms: Option<u64>,
    inject_panic: bool,
}

impl MineKey {
    /// Key for `r` resolved against `cfg` (the fully defaulted config the
    /// run will use) over dataset `name`/`version`.
    pub(crate) fn of(
        name: &str,
        version: u64,
        cfg: &graphsig_core::GraphSigConfig,
        r: &MineRequest,
    ) -> Self {
        MineKey {
            dataset: name.to_string(),
            version,
            window: WindowKey::of(cfg),
            max_pvalue_bits: cfg.max_pvalue.to_bits(),
            min_freq_bits: cfg.min_freq.to_bits(),
            fsm_freq_bits: cfg.fsm_freq.to_bits(),
            radius: cfg.radius,
            backend: cfg.fsm_backend,
            matcher: cfg.matcher,
            threads: cfg.threads,
            sleep_ms: r.sleep_ms,
            inject_panic: r.inject_panic,
        }
    }
}

/// One request attached to a flight: where its response goes and the one
/// parameter that may differ between coalesced requests (the render cap).
pub(crate) struct Rider {
    /// Request id (still registered in the server's inflight table).
    pub id: String,
    /// The rider's connection writer.
    pub out: SharedWriter,
    /// Per-rider `top=` render cap.
    pub top: usize,
}

/// The dataset identity a flight runs over — everything a cancelled
/// rider's response needs besides its own id (see
/// [`cancelled_mine_response`]).
#[derive(Clone)]
pub(crate) struct FlightCtx {
    pub dataset: String,
    pub version: u64,
    pub degraded: Option<String>,
}

struct FlightEntry {
    leader_id: String,
    group: CancelToken,
    ctx: FlightCtx,
    riders: Vec<Rider>,
}

#[derive(Default)]
struct CoalescerState {
    flights: HashMap<MineKey, FlightEntry>,
    /// Rider id -> the flight it is attached to (for cancel routing).
    by_rider: HashMap<String, MineKey>,
}

/// Outcome of [`Coalescer::join`].
pub(crate) enum Joined {
    /// This request leads a new flight: run the pipeline under `group`,
    /// then call [`Coalescer::finish`] to collect everyone's responses.
    Lead {
        /// The flight's shared cancel token; cancelled only when every
        /// rider has individually cancelled (or on forced drain).
        group: CancelToken,
    },
    /// Attached to an in-flight run; the leader owns the response.
    Attached,
}

/// Single-flight registry for `mine` requests. One mutex guards the whole
/// state — flights are touched a handful of times per request, never in a
/// hot loop, so contention is irrelevant and lock-ordering bugs are
/// structurally impossible.
#[derive(Default)]
pub(crate) struct Coalescer {
    state: Mutex<CoalescerState>,
    /// Flights created (a coalesce "miss": someone had to run it).
    leads: AtomicU64,
    /// Requests attached to an existing flight (a coalesce "hit").
    riders_attached: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Coalescer {
    /// Join the flight for `key`, creating it (with `rider` as leader) if
    /// none is in flight.
    pub(crate) fn join(&self, key: &MineKey, rider: Rider, ctx: FlightCtx) -> Joined {
        let mut st = lock(&self.state);
        if st.flights.contains_key(key) {
            st.by_rider.insert(rider.id.clone(), key.clone());
            st.flights
                .get_mut(key)
                .expect("flight just found")
                .riders
                .push(rider);
            self.riders_attached.fetch_add(1, Ordering::Relaxed);
            return Joined::Attached;
        }
        let group = CancelToken::new();
        st.by_rider.insert(rider.id.clone(), key.clone());
        st.flights.insert(
            key.clone(),
            FlightEntry {
                leader_id: rider.id.clone(),
                group: group.clone(),
                ctx,
                riders: vec![rider],
            },
        );
        self.leads.fetch_add(1, Ordering::Relaxed);
        Joined::Lead { group }
    }

    /// Close the flight for `key` and hand back every rider still attached
    /// (riders that cancelled individually already responded and are gone).
    /// After this returns, new identical requests start a fresh flight.
    pub(crate) fn finish(&self, key: &MineKey) -> Vec<Rider> {
        let mut st = lock(&self.state);
        let Some(entry) = st.flights.remove(key) else {
            return Vec::new();
        };
        for r in &entry.riders {
            st.by_rider.remove(&r.id);
        }
        entry.riders
    }

    /// The flight led by `leader_id`, torn down because its leader
    /// panicked: every remaining rider must receive an error response.
    /// `None` when `leader_id` does not lead a flight (solo request).
    pub(crate) fn fail_leader(&self, leader_id: &str) -> Option<Vec<Rider>> {
        let key = {
            let st = lock(&self.state);
            let key = st.by_rider.get(leader_id)?.clone();
            if st.flights.get(&key)?.leader_id != leader_id {
                return None;
            }
            key
        };
        Some(self.finish(&key))
    }

    /// A `cancel` hit rider `target`: detach it so it can respond
    /// `truncated (cancelled)` immediately, and cancel the whole run if it
    /// was the last rider standing. Returns the detached rider plus the
    /// flight's dataset context, or `None` when `target` is not attached
    /// to any flight.
    pub(crate) fn on_cancel(&self, target: &str) -> Option<(Rider, FlightCtx)> {
        let mut st = lock(&self.state);
        let key = st.by_rider.remove(target)?;
        let entry = st.flights.get_mut(&key)?;
        let pos = entry.riders.iter().position(|r| r.id == target)?;
        let rider = entry.riders.remove(pos);
        let ctx = entry.ctx.clone();
        if entry.riders.is_empty() {
            // Last rider gone: nobody is waiting — truncate the run, and
            // drop the flight so a *new* identical request leads a fresh
            // run instead of attaching to a doomed one. The leader's
            // `finish` then finds nothing and writes nothing.
            entry.group.cancel();
            st.flights.remove(&key);
        }
        Some((rider, ctx))
    }

    /// Forced drain: cancel every flight's group token so hung shared runs
    /// terminate. Riders stay attached — they get their structured
    /// `truncated (cancelled)` responses from the leader's `finish`.
    pub(crate) fn cancel_all(&self) {
        for entry in lock(&self.state).flights.values() {
            entry.group.cancel();
        }
    }

    /// (flights created, riders attached) counters.
    pub(crate) fn counters(&self) -> (u64, u64) {
        (
            self.leads.load(Ordering::Relaxed),
            self.riders_attached.load(Ordering::Relaxed),
        )
    }
}

/// A sweep split into per-threshold segments that queue as individual work
/// units. Segments record their outcomes here (in threshold order, however
/// they interleave with other work); the last one to finish assembles the
/// response — byte-identical to the old inline loop, because assembly
/// iterates `supports` order and each segment runs the same `run_freq`.
pub(crate) struct SweepFlight {
    /// The sweep request id (registered inflight until the response).
    pub id: String,
    /// Where the assembled response goes.
    pub out: SharedWriter,
    /// Thresholds in request order; segment `i` runs `supports[i]`.
    pub supports: Vec<usize>,
    results: Mutex<Vec<Option<Outcome<Vec<Pattern>>>>>,
    panic_msg: Mutex<Option<String>>,
    remaining: Mutex<usize>,
}

impl SweepFlight {
    pub(crate) fn new(id: String, out: SharedWriter, supports: Vec<usize>) -> Self {
        let n = supports.len();
        SweepFlight {
            id,
            out,
            supports,
            results: Mutex::new((0..n).map(|_| None).collect()),
            panic_msg: Mutex::new(None),
            remaining: Mutex::new(n),
        }
    }

    /// Record segment `idx`'s outcome. Returns `true` when this was the
    /// last outstanding segment — the caller then assembles the response.
    pub(crate) fn record(&self, idx: usize, outcome: Outcome<Vec<Pattern>>) -> bool {
        lock(&self.results)[idx] = Some(outcome);
        let mut remaining = lock(&self.remaining);
        *remaining -= 1;
        *remaining == 0
    }

    /// Record a panicked segment. Same last-finisher contract as `record`;
    /// the first panic message wins (deterministic enough for an error
    /// response — any panic fails the whole sweep).
    pub(crate) fn record_panic(&self, msg: String) -> bool {
        lock(&self.panic_msg).get_or_insert(msg);
        let mut remaining = lock(&self.remaining);
        *remaining -= 1;
        *remaining == 0
    }

    /// First panic message, if any segment panicked.
    pub(crate) fn panicked(&self) -> Option<String> {
        lock(&self.panic_msg).clone()
    }

    /// Assemble `(completion, total patterns, payload)` in `supports`
    /// order, using `render` to produce each segment's payload bytes.
    /// Call only after the last `record` (checked by the `remaining`
    /// counter); panicked segments must be handled by the caller instead.
    pub(crate) fn assemble(
        &self,
        mut render: impl FnMut(&[Pattern]) -> String,
    ) -> (Completion, usize, String) {
        use std::fmt::Write as _;
        let results = lock(&self.results);
        let mut payload = String::new();
        let mut completion = Completion::Complete;
        let mut total = 0usize;
        for (i, &support) in self.supports.iter().enumerate() {
            let Some(outcome) = results[i].as_ref() else {
                continue; // panicked segment; caller reports the error
            };
            completion = completion.merge(outcome.completion);
            total += outcome.result.len();
            // Marker line, then the exact bytes an individual `freq` call
            // at this threshold would have produced as its payload.
            let _ = writeln!(
                payload,
                "# sweep support {support}: {} patterns ({})",
                outcome.result.len(),
                outcome.completion
            );
            payload.push_str(&render(&outcome.result));
        }
        (completion, total, payload)
    }
}

/// Build the cancelled-mine response shape shared by detached riders and
/// riders of a cancelled run: the same header fields every other `mine`
/// response carries (dataset identity and degradation state included —
/// response shape is uniform across outcomes).
pub(crate) fn cancelled_mine_response(
    id: &str,
    dataset: &str,
    version: u64,
    degraded: Option<&str>,
) -> Response {
    let mut resp = Response::new(id, "mine", Status::Ok)
        .with_field("dataset", dataset)
        .with_field("version", version);
    if let Some(flag) = degraded {
        resp = resp.with_field("degraded", flag);
    }
    resp.with_field("completion", "truncated (cancelled)")
        .with_field("cached", "none")
        .with_field("subgraphs", 0)
}
